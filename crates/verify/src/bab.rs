//! The branch-and-bound decision procedure over noise boxes — the
//! input-noise instantiation of the generic `fannet-search` core
//! (DESIGN.md §5/§12).
//!
//! This is the reproduction's substitute for nuXmv's symbolic search (see
//! DESIGN.md §5). The property checked is the paper's **P2**
//! (`OCn = Sx`, the noisy output class equals the true label) for every
//! noise vector in a [`NoiseRegion`], with optional exclusion of
//! already-extracted vectors (**P3**).
//!
//! The domain plugged into [`fannet_search`] is:
//!
//! * **regions** — integer-percent noise boxes ([`NoiseRegion`]), split
//!   on the widest dimension, terminating at grid points;
//! * **cascade** — the float-interval screen
//!   ([`crate::propagate::FloatShadow`], DESIGN.md §6) and the
//!   correlation-tracking zonotope screen
//!   ([`crate::zonotope::ZonotopeShadow`], DESIGN.md §10), with exact
//!   rational propagation ([`crate::propagate::output_intervals`]) as
//!   the complete fallback below them;
//! * **witnesses** — exact [`exact::Counterexample`] records; singleton
//!   boxes are decided by ground-truth rational evaluation.
//!
//! Every verdict is exact: the screening tiers are sound
//! over-approximations and the singleton fallback is ground truth, so
//! the procedure is **sound and complete over the integer noise grid** —
//! the same finite state space the paper's model checker explores.
//! Completeness holds because splitting strictly shrinks boxes,
//! terminating at singletons; the search therefore never returns
//! `Undecided` here.
//!
//! ## Parallel search
//!
//! [`CheckerConfig::threads`] > 1 runs the same search through
//! [`fannet_search::search_parallel`] (DESIGN.md §7): path-keyed
//! work-stealing reproduces the serial first-counterexample order
//! exactly, so serial, screened and parallel modes return the identical
//! counterexample.
//!
//! ## Batched screening
//!
//! When the interval tier is enabled, frontier boxes are screened in
//! groups of up to [`BATCH_WIDTH`] through the lane-major
//! [`BatchFloatShadow`] (DESIGN.md §16). Each lane replays the scalar
//! [`FloatShadow`] rounding sequence bit for bit, so batching changes
//! cache behaviour only — never a verdict, witness or counter.
//! [`RegionChecker::with_batching`] restores the scalar screen for A/B
//! comparison.

use std::borrow::Cow;

use fannet_nn::Network;
use fannet_numeric::{FloatInterval, Rational};
use fannet_search::{
    BoxDecision, Cascade, Classifier, SearchDomain, SearchOutcome, TierKind, TierTimer,
};
use fannet_tensor::ShapeError;
use serde::{Deserialize, Serialize};

use crate::batch::{BatchFloatShadow, BatchWorkspace, BATCH_WIDTH};
use crate::exact;
use crate::noise::{ExclusionSet, NoiseVector};
use crate::propagate::{
    classify_box, classify_box_float, output_intervals_with, BoxVerdict, FloatShadow,
    PropagationWorkspace,
};
use crate::region::NoiseRegion;
use crate::zonotope::{classify_box_zonotope, ZonotopeShadow};

pub use fannet_search::ScreeningTier;
/// Search statistics of the input-noise checker — since the
/// `fannet-search` extraction this *is* the unified
/// [`fannet_search::SearchStats`] block (the budget/exact-tier counters
/// stay zero here; the grid search is complete and unbudgeted).
pub use fannet_search::SearchStats as BabStats;

/// Environment variable overriding the default worker count.
pub const THREADS_ENV: &str = "FANNET_THREADS";

/// How a region check runs: which screening tiers are active and how many
/// workers explore the box tree.
///
/// All configurations decide the *same* property with the *same* outcome
/// and counterexample (enforced by `tests/checker_cross_validation.rs`);
/// they differ only in wall-clock cost.
///
/// # Examples
///
/// ```
/// use fannet_verify::bab::{CheckerConfig, ScreeningTier};
///
/// assert_eq!(CheckerConfig::serial_exact().threads, 1);
/// assert_eq!(CheckerConfig::fast().screening, ScreeningTier::Cascade);
/// assert!(CheckerConfig::fast().threads >= 1);
/// assert_eq!(CheckerConfig::screened().with_threads(4).threads, 4);
/// assert!(CheckerConfig::zonotope().screening.uses_zonotope());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CheckerConfig {
    /// Screening tiers each box routes through before exact rational
    /// propagation runs (only on boxes no active screen can decide).
    pub screening: ScreeningTier,
    /// Worker threads exploring the box tree (`1` = serial).
    pub threads: usize,
}

impl CheckerConfig {
    /// The seed baseline: single-threaded, exact propagation only.
    #[must_use]
    pub fn serial_exact() -> Self {
        CheckerConfig {
            screening: ScreeningTier::None,
            threads: 1,
        }
    }

    /// Single-threaded with float-interval screening.
    #[must_use]
    pub fn screened() -> Self {
        CheckerConfig {
            screening: ScreeningTier::Interval,
            threads: 1,
        }
    }

    /// Single-threaded with zonotope screening only.
    #[must_use]
    pub fn zonotope() -> Self {
        CheckerConfig {
            screening: ScreeningTier::Zonotope,
            threads: 1,
        }
    }

    /// Single-threaded cascade: interval → zonotope → exact.
    #[must_use]
    pub fn cascade() -> Self {
        CheckerConfig {
            screening: ScreeningTier::Cascade,
            threads: 1,
        }
    }

    /// Parallel exact propagation (no screening).
    #[must_use]
    pub fn parallel() -> Self {
        CheckerConfig {
            screening: ScreeningTier::None,
            threads: default_threads(),
        }
    }

    /// Cascade screening + parallel search: the production configuration.
    #[must_use]
    pub fn fast() -> Self {
        CheckerConfig {
            screening: ScreeningTier::Cascade,
            threads: default_threads(),
        }
    }

    /// Overrides the worker count (`0` is clamped to 1).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Overrides the screening tier.
    #[must_use]
    pub fn with_screening(mut self, tier: ScreeningTier) -> Self {
        self.screening = tier;
        self
    }
}

impl Default for CheckerConfig {
    /// [`CheckerConfig::fast`]: screening on, all cores.
    fn default() -> Self {
        CheckerConfig::fast()
    }
}

/// Worker count used by the parallel presets: the `FANNET_THREADS`
/// environment variable when set, otherwise the machine's available
/// parallelism.
///
/// A value of `0` — or one that does not parse as an unsigned integer —
/// falls back to all cores; an unparsable value additionally emits a
/// one-time warning on stderr (a silently ignored override is worse than
/// a noisy one).
#[must_use]
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var(THREADS_ENV) {
        match v.trim().parse::<usize>() {
            Ok(0) => {} // documented "use all cores" spelling
            Ok(n) => return n,
            Err(_) => {
                static WARN_ONCE: std::sync::Once = std::sync::Once::new();
                WARN_ONCE.call_once(|| {
                    fannet_obs::log::warn(
                        "fannet_verify::bab",
                        "ignoring unparsable thread override; falling back to all cores",
                        &[("var", THREADS_ENV.into()), ("value", v.as_str().into())],
                    );
                });
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Outcome of a region check.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RegionOutcome {
    /// P2 holds: no noise vector in the region (outside the exclusion set)
    /// misclassifies the input. This is a *proof*.
    Robust,
    /// A fresh counterexample violating P2.
    Counterexample(exact::Counterexample),
}

impl RegionOutcome {
    /// `true` for [`RegionOutcome::Robust`].
    #[must_use]
    pub fn is_robust(&self) -> bool {
        matches!(self, RegionOutcome::Robust)
    }

    /// The counterexample, if any.
    #[must_use]
    pub fn counterexample(&self) -> Option<&exact::Counterexample> {
        match self {
            RegionOutcome::Robust => None,
            RegionOutcome::Counterexample(ce) => Some(ce),
        }
    }
}

/// Checks property P2 on `region` with the seed's serial-exact
/// configuration: does any noise vector (not in `excluded`) flip the
/// classification of `x` away from `label`?
///
/// Returns the outcome together with search statistics. This is the
/// baseline the faster configurations are cross-validated against; use
/// [`check_region_with`] + [`CheckerConfig::fast`] for the screened
/// parallel checker.
///
/// # Errors
///
/// Returns [`ShapeError`] if input/region/network widths disagree.
///
/// # Panics
///
/// Panics if the network is not piecewise-linear or `label` is out of
/// range.
///
/// # Examples
///
/// ```
/// use fannet_numeric::Rational;
/// use fannet_nn::{Activation, DenseLayer, Network, Readout};
/// use fannet_tensor::Matrix;
/// use fannet_verify::{bab, noise::ExclusionSet, region::NoiseRegion};
///
/// // Identity comparator: label 0 iff x0 ≥ x1.
/// let r = |n: i128| Rational::from_integer(n);
/// let net = Network::new(vec![DenseLayer::new(
///     Matrix::from_rows(vec![vec![r(1), r(0)], vec![r(0), r(1)]])?,
///     vec![r(0), r(0)],
///     Activation::Identity,
/// )?], Readout::MaxPool)?;
///
/// let x = [r(100), r(82)];
/// // Flipping needs 100·(100−Δ) < 82·(100+Δ), i.e. Δ ≥ 10.
/// let (safe, _) = bab::check_region(&net, &x, 0, &NoiseRegion::symmetric(9, 2), &ExclusionSet::new())?;
/// assert!(safe.is_robust());
/// let (flipped, _) = bab::check_region(&net, &x, 0, &NoiseRegion::symmetric(10, 2), &ExclusionSet::new())?;
/// assert!(!flipped.is_robust());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn check_region(
    net: &Network<Rational>,
    x: &[Rational],
    label: usize,
    region: &NoiseRegion,
    excluded: &ExclusionSet,
) -> Result<(RegionOutcome, BabStats), ShapeError> {
    check_region_with(
        net,
        x,
        label,
        region,
        excluded,
        &CheckerConfig::serial_exact(),
    )
}

/// [`check_region`] under an explicit [`CheckerConfig`] — the entry point
/// of the tiered, optionally parallel checker.
///
/// # Errors
///
/// Returns [`ShapeError`] if input/region/network widths disagree.
///
/// # Panics
///
/// Panics if the network is not piecewise-linear or `label` is out of
/// range.
pub fn check_region_with(
    net: &Network<Rational>,
    x: &[Rational],
    label: usize,
    region: &NoiseRegion,
    excluded: &ExclusionSet,
    config: &CheckerConfig,
) -> Result<(RegionOutcome, BabStats), ShapeError> {
    RegionChecker::new(net, config.clone()).check_region(x, label, region, excluded)
}

/// A reusable query handle: the network plus its screening shadows, built
/// **once** and shared across any number of queries (and across threads —
/// the handle is `Sync`).
///
/// The analyses in `fannet-core` issue thousands of P2/P3 queries against
/// the same network; constructing one `RegionChecker` up front amortizes
/// the shadow construction over all of them. The free functions
/// ([`check_region_with`] etc.) remain as one-shot conveniences.
#[derive(Debug, Clone)]
pub struct RegionChecker<'n> {
    net: &'n Network<Rational>,
    config: CheckerConfig,
    /// Owned when this handle built the shadow itself, borrowed when a
    /// resident owner (`fannet-engine`) lends its per-network copy — the
    /// serving hot path must not deep-clone every enclosed weight per
    /// query.
    shadow: Option<Cow<'n, FloatShadow>>,
    zonotope: Option<Cow<'n, ZonotopeShadow>>,
    /// Batched re-layout of the float shadow (DESIGN.md §16); present
    /// iff the interval tier is active and batching was not disabled
    /// via [`RegionChecker::with_batching`].
    batch: Option<BatchFloatShadow>,
}

impl<'n> RegionChecker<'n> {
    /// Builds the handle; each screening shadow is constructed here iff
    /// its tier is active in `config.screening`.
    ///
    /// # Panics
    ///
    /// Panics if screening is requested and the network is not
    /// piecewise-linear.
    #[must_use]
    pub fn new(net: &'n Network<Rational>, config: CheckerConfig) -> Self {
        Self::with_shadows(net, config, None, None)
    }

    /// Builds the handle around borrowed shadows constructed elsewhere —
    /// the cache hook used by `fannet-engine`, whose resident `Engine`
    /// owns the network, one [`FloatShadow`] and one [`ZonotopeShadow`],
    /// and stamps out per-query handles without re-enclosing (or
    /// cloning) a single weight.
    ///
    /// Both shadows must have been built from `net`; each is consulted
    /// iff its tier is active in `config.screening` (a `None` shadow with
    /// its tier enabled is built and owned here, an unused one is
    /// ignored).
    #[must_use]
    pub fn with_shadows(
        net: &'n Network<Rational>,
        config: CheckerConfig,
        shadow: Option<&'n FloatShadow>,
        zonotope: Option<&'n ZonotopeShadow>,
    ) -> Self {
        let shadow = if config.screening.uses_interval() {
            Some(
                shadow
                    .map(Cow::Borrowed)
                    .unwrap_or_else(|| Cow::Owned(FloatShadow::new(net))),
            )
        } else {
            None
        };
        let zonotope = if config.screening.uses_zonotope() {
            Some(
                zonotope
                    .map(Cow::Borrowed)
                    .unwrap_or_else(|| Cow::Owned(ZonotopeShadow::new(net))),
            )
        } else {
            None
        };
        let batch = shadow.as_deref().map(BatchFloatShadow::from_shadow);
        RegionChecker {
            net,
            config,
            shadow,
            zonotope,
            batch,
        }
    }

    /// Enables or disables batched frontier screening (on by default
    /// whenever the interval tier is active). Verdicts, witnesses and
    /// every stat counter are bit-identical either way — the lanes
    /// replay the scalar operation sequence exactly (DESIGN.md §16) —
    /// so the toggle exists only for the scalar-vs-batched bench arm
    /// and for debugging.
    #[must_use]
    pub fn with_batching(mut self, enabled: bool) -> Self {
        self.batch = if enabled {
            self.shadow.as_deref().map(BatchFloatShadow::from_shadow)
        } else {
            None
        };
        self
    }

    /// The configuration this handle runs under.
    #[must_use]
    pub fn config(&self) -> &CheckerConfig {
        &self.config
    }

    /// The network this handle queries.
    #[must_use]
    pub fn network(&self) -> &'n Network<Rational> {
        self.net
    }

    /// [`check_region`] through this handle (see the free function for
    /// semantics).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if input/region/network widths disagree.
    ///
    /// # Panics
    ///
    /// Panics if `label` is out of range.
    pub fn check_region(
        &self,
        x: &[Rational],
        label: usize,
        region: &NoiseRegion,
        excluded: &ExclusionSet,
    ) -> Result<(RegionOutcome, BabStats), ShapeError> {
        self.check_region_timed(x, label, region, excluded, TierTimer::disabled())
    }

    /// [`RegionChecker::check_region`] with an explicit [`TierTimer`]:
    /// an enabled timer additionally books per-tier nanoseconds
    /// (`interval_ns`/`zonotope_ns`/`exact_ns`) into the returned stats
    /// for cost attribution (DESIGN.md §14). The verdict, witness and
    /// every counter are bit-identical to the untimed call — only the
    /// never-serialized timing fields differ.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if input/region/network widths disagree.
    ///
    /// # Panics
    ///
    /// Panics if `label` is out of range.
    pub fn check_region_timed(
        &self,
        x: &[Rational],
        label: usize,
        region: &NoiseRegion,
        excluded: &ExclusionSet,
        timer: TierTimer,
    ) -> Result<(RegionOutcome, BabStats), ShapeError> {
        assert!(label < self.net.outputs(), "label {label} out of range");
        validate_widths(self.net, x, region)?;
        let screens = QueryScreens::new(
            x,
            label,
            self.shadow.as_deref(),
            self.zonotope.as_deref(),
            self.batch.as_ref(),
        );
        let ctx = QueryContext {
            net: self.net,
            x,
            label,
            excluded,
            cascade: screens.cascade().with_timer(timer),
            batch: screens.batch.as_ref(),
        };
        let (outcome, stats) =
            fannet_search::search_with_threads(&ctx, region.clone(), self.config.threads, None);
        let outcome = match outcome {
            SearchOutcome::Proven => RegionOutcome::Robust,
            SearchOutcome::Witness(ce) => RegionOutcome::Counterexample(ce),
            // Splitting terminates at grid points and nothing is ever
            // abandoned: the grid search is complete.
            SearchOutcome::Undecided => unreachable!("the noise-grid search is complete"),
        };
        Ok((outcome, stats))
    }

    /// [`collect_region_counterexamples`] through this handle (see the
    /// free function for semantics; only `screening` is honoured here).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if input/region/network widths disagree.
    ///
    /// # Panics
    ///
    /// Panics if `label` is out of range or `cap == 0`.
    pub fn collect_region_counterexamples(
        &self,
        x: &[Rational],
        label: usize,
        region: &NoiseRegion,
        cap: usize,
    ) -> Result<(Vec<exact::Counterexample>, bool, BabStats), ShapeError> {
        assert!(label < self.net.outputs(), "label {label} out of range");
        assert!(cap > 0, "cap must be positive");
        validate_widths(self.net, x, region)?;
        let excluded = ExclusionSet::new();
        // The collector walks boxes one at a time (no frontier to
        // gather), so it never builds a batched screen.
        let screens = QueryScreens::new(
            x,
            label,
            self.shadow.as_deref(),
            self.zonotope.as_deref(),
            None,
        );
        let ctx = QueryContext {
            net: self.net,
            x,
            label,
            excluded: &excluded,
            cascade: screens.cascade(),
            batch: None,
        };
        // With an empty exclusion set the uniform witness is the box's
        // first grid point; the remaining points all misclassify too
        // (interval proof), so the expansion enumerates them directly.
        let expand = |uniform: &NoiseRegion,
                      first: exact::Counterexample,
                      sink: &mut Vec<exact::Counterexample>,
                      _stats: &mut BabStats|
         -> bool {
            sink.push(first);
            if sink.len() == cap {
                return false;
            }
            for nv in uniform.iter_points().skip(1) {
                let ce = exact::witness(self.net, x, label, &nv)
                    .expect("widths validated at query entry")
                    .expect("interval proof of misclassification is sound");
                sink.push(ce);
                if sink.len() == cap {
                    return false;
                }
            }
            true
        };
        let (found, exhausted, stats) =
            fannet_search::collect_witnesses(&ctx, region.clone(), cap, expand);
        Ok((found, exhausted, stats))
    }
}

/// Convenience wrapper: P2 without any exclusions (serial-exact baseline).
///
/// # Errors
///
/// Returns [`ShapeError`] if widths disagree.
pub fn find_counterexample(
    net: &Network<Rational>,
    x: &[Rational],
    label: usize,
    region: &NoiseRegion,
) -> Result<(RegionOutcome, BabStats), ShapeError> {
    check_region(net, x, label, region, &ExclusionSet::new())
}

/// [`find_counterexample`] under an explicit configuration.
///
/// # Errors
///
/// Returns [`ShapeError`] if widths disagree.
pub fn find_counterexample_with(
    net: &Network<Rational>,
    x: &[Rational],
    label: usize,
    region: &NoiseRegion,
    config: &CheckerConfig,
) -> Result<(RegionOutcome, BabStats), ShapeError> {
    check_region_with(net, x, label, region, &ExclusionSet::new(), config)
}

/// Exhaustive grid enumeration of the same property — exponentially slower
/// but trivially correct. Exists as the baseline for the checker-ablation
/// bench (A2) and as a cross-check oracle in tests.
///
/// # Errors
///
/// Returns [`ShapeError`] if widths disagree.
pub fn check_region_exhaustive(
    net: &Network<Rational>,
    x: &[Rational],
    label: usize,
    region: &NoiseRegion,
    excluded: &ExclusionSet,
) -> Result<(RegionOutcome, BabStats), ShapeError> {
    let mut stats = BabStats::default();
    for nv in region.iter_points() {
        stats.exact_evals += 1;
        if excluded.contains(&nv) {
            continue;
        }
        if let Some(ce) = exact::witness(net, x, label, &nv)? {
            return Ok((RegionOutcome::Counterexample(ce), stats));
        }
    }
    Ok((RegionOutcome::Robust, stats))
}

fn first_not_excluded(region: &NoiseRegion, excluded: &ExclusionSet) -> Option<NoiseVector> {
    // The exclusion set is finite, so at most |excluded| + 1 probes.
    region.iter_points().find(|nv| !excluded.contains(nv))
}

/// Collects up to `cap` distinct counterexamples in a **single**
/// branch-and-bound pass (serial-exact baseline).
///
/// Semantically equivalent to running the P3 restart loop
/// ([`crate::enumerate::CounterexampleEnumerator`]) `cap` times, but each
/// proven-safe box is pruned once instead of once per restart — the
/// asymptotic difference between `O(search)` and `O(cap · search)`. The
/// returned flag is `true` when the region was exhausted (every
/// misclassifying vector found before the cap).
///
/// # Errors
///
/// Returns [`ShapeError`] if input/region/network widths disagree.
///
/// # Panics
///
/// Panics if the network is not piecewise-linear, `label` is out of range,
/// or `cap == 0`.
pub fn collect_region_counterexamples(
    net: &Network<Rational>,
    x: &[Rational],
    label: usize,
    region: &NoiseRegion,
    cap: usize,
) -> Result<(Vec<exact::Counterexample>, bool, BabStats), ShapeError> {
    collect_region_counterexamples_with(net, x, label, region, cap, &CheckerConfig::serial_exact())
}

/// [`collect_region_counterexamples`] with optional float screening.
///
/// Collection order is the serial DFS order, so results are identical
/// across configurations. Only `config.screening` is honoured here —
/// collection itself stays single-threaded because analyses parallelize
/// one level up, across inputs (`fannet-core`'s `par_` layer), which keeps
/// every worker saturated without reordering extracted vectors.
///
/// # Errors
///
/// Returns [`ShapeError`] if input/region/network widths disagree.
///
/// # Panics
///
/// Panics if the network is not piecewise-linear, `label` is out of range,
/// or `cap == 0`.
pub fn collect_region_counterexamples_with(
    net: &Network<Rational>,
    x: &[Rational],
    label: usize,
    region: &NoiseRegion,
    cap: usize,
    config: &CheckerConfig,
) -> Result<(Vec<exact::Counterexample>, bool, BabStats), ShapeError> {
    RegionChecker::new(net, config.clone()).collect_region_counterexamples(x, label, region, cap)
}

// ---------------------------------------------------------------------------
// The input-noise search domain
// ---------------------------------------------------------------------------

fn validate_widths(
    net: &Network<Rational>,
    x: &[Rational],
    region: &NoiseRegion,
) -> Result<(), ShapeError> {
    if x.len() != net.inputs() {
        return Err(ShapeError::new(format!(
            "input of width {} against network with {} inputs",
            x.len(),
            net.inputs()
        )));
    }
    if region.nodes() != net.inputs() {
        return Err(ShapeError::new(format!(
            "noise region over {} nodes against network with {} inputs",
            region.nodes(),
            net.inputs()
        )));
    }
    Ok(())
}

/// The float-interval screening tier of one query: the per-network
/// shadow plus the per-query input enclosure.
struct IntervalScreen<'a> {
    shadow: &'a FloatShadow,
    x: Vec<FloatInterval>,
    label: usize,
}

impl Classifier<NoiseRegion> for IntervalScreen<'_> {
    fn tier(&self) -> TierKind {
        TierKind::Interval
    }
    fn classify(&self, region: &NoiseRegion) -> BoxVerdict {
        classify_box_float(&self.shadow.output_intervals(&self.x, region), self.label)
    }
}

/// The zonotope screening tier of one query: the per-network shadow
/// plus the per-query `(center, slack)` enclosure.
struct ZonotopeScreen<'a> {
    shadow: &'a ZonotopeShadow,
    x: Vec<(f64, f64)>,
    label: usize,
}

impl Classifier<NoiseRegion> for ZonotopeScreen<'_> {
    fn tier(&self) -> TierKind {
        TierKind::Zonotope
    }
    fn classify(&self, region: &NoiseRegion) -> BoxVerdict {
        classify_box_zonotope(&self.shadow.output_forms(&self.x, region), self.label)
    }
}

/// The batched float screen of one query: the per-network batch shadow
/// plus the same per-query input enclosure the scalar
/// [`IntervalScreen`] uses, so batched verdicts are bit-identical to
/// tier 0's.
struct BatchScreen<'a> {
    shadow: &'a BatchFloatShadow,
    x: Vec<FloatInterval>,
    label: usize,
}

/// The per-query screen owners; [`QueryScreens::cascade`] borrows them
/// into the [`Cascade`] the domain consults per box.
struct QueryScreens<'a> {
    interval: Option<IntervalScreen<'a>>,
    zonotope: Option<ZonotopeScreen<'a>>,
    batch: Option<BatchScreen<'a>>,
}

impl<'a> QueryScreens<'a> {
    fn new(
        x: &[Rational],
        label: usize,
        shadow: Option<&'a FloatShadow>,
        zonotope: Option<&'a ZonotopeShadow>,
        batch: Option<&'a BatchFloatShadow>,
    ) -> Self {
        QueryScreens {
            interval: shadow.map(|shadow| IntervalScreen {
                shadow,
                x: FloatShadow::enclose_input(x),
                label,
            }),
            zonotope: zonotope.map(|shadow| ZonotopeScreen {
                shadow,
                x: ZonotopeShadow::enclose_input(x),
                label,
            }),
            // The batched screen is only sound as a *tier-0 substitute*:
            // it replays the interval tier bit for bit, so it is built
            // only when the interval screen is (tier 0 of the cascade).
            batch: match shadow {
                Some(_) => batch.map(|shadow| BatchScreen {
                    shadow,
                    x: FloatShadow::enclose_input(x),
                    label,
                }),
                None => None,
            },
        }
    }

    fn cascade(&self) -> Cascade<'_, NoiseRegion> {
        let mut tiers: Vec<&dyn Classifier<NoiseRegion>> = Vec::new();
        if let Some(screen) = &self.interval {
            tiers.push(screen);
        }
        if let Some(screen) = &self.zonotope {
            tiers.push(screen);
        }
        Cascade::new(tiers)
    }
}

/// Everything immutable the search needs to decide boxes for one query.
struct QueryContext<'a> {
    net: &'a Network<Rational>,
    x: &'a [Rational],
    label: usize,
    excluded: &'a ExclusionSet,
    cascade: Cascade<'a, NoiseRegion>,
    /// Batched tier-0 substitute ([`BatchScreen`]); `None` when the
    /// interval tier is inactive, batching is disabled, or the caller
    /// (the witness collector) does not batch.
    batch: Option<&'a BatchScreen<'a>>,
}

/// Per-worker reusable buffers of the input-noise domain: the exact
/// tier's activation workspace plus the batched screen's lane buffers.
#[derive(Default)]
struct QueryScratch {
    exact: PropagationWorkspace,
    batch: BatchWorkspace,
}

impl SearchDomain for QueryContext<'_> {
    type Region = NoiseRegion;
    type Witness = exact::Counterexample;
    type Prepared = BoxVerdict;
    type Scratch = QueryScratch;

    fn batch_width(&self) -> usize {
        if self.batch.is_some() {
            BATCH_WIDTH
        } else {
            1
        }
    }

    /// Screens a whole frontier batch through the lane-parallel float
    /// tier. Only `interval_ns` accumulates here; every counter is
    /// booked when each box is actually visited
    /// ([`Cascade::classify_with_first`]), keeping stats bit-identical
    /// to the scalar path.
    fn prepare_batch(
        &self,
        regions: &[&NoiseRegion],
        scratch: &mut QueryScratch,
        stats: &mut BabStats,
    ) -> Vec<BoxVerdict> {
        let Some(batch) = self.batch else {
            return Vec::new();
        };
        let (verdicts, ns) = self.cascade.timer().time(|| {
            batch
                .shadow
                .classify_batch(&batch.x, batch.label, regions, &mut scratch.batch)
        });
        stats.interval_ns = stats.interval_ns.saturating_add(ns);
        verdicts
    }

    fn decide(
        &self,
        current: &NoiseRegion,
        depth: u32,
        scratch: &mut QueryScratch,
        stats: &mut BabStats,
    ) -> BoxDecision<NoiseRegion, exact::Counterexample> {
        self.decide_inner(current, depth, scratch, stats, None)
    }

    fn decide_prepared(
        &self,
        current: &NoiseRegion,
        prepared: Option<BoxVerdict>,
        depth: u32,
        scratch: &mut QueryScratch,
        stats: &mut BabStats,
    ) -> BoxDecision<NoiseRegion, exact::Counterexample> {
        self.decide_inner(current, depth, scratch, stats, prepared)
    }
}

impl QueryContext<'_> {
    /// Classifies one box through the active tiers, updating `stats`.
    ///
    /// A box counts as a `screen_hit` when some screening tier made the
    /// exact tier unnecessary, and as a `screen_fallback` when exact work
    /// still had to run; `interval_*`/`zonotope_*` additionally record
    /// which tier classified each screened box. Widths were validated at
    /// query entry, so propagation cannot fail.
    ///
    /// `first` carries a batched tier-0 verdict when this box's float
    /// screening already ran in a [`QueryContext::prepare_batch`] pass;
    /// the lanes replay the scalar tier bit for bit, so consuming it via
    /// [`Cascade::classify_with_first`] books identical counters and
    /// reaches identical decisions.
    fn decide_inner(
        &self,
        current: &NoiseRegion,
        _depth: u32,
        scratch: &mut QueryScratch,
        stats: &mut BabStats,
        first: Option<BoxVerdict>,
    ) -> BoxDecision<NoiseRegion, exact::Counterexample> {
        // Screening tiers, cheapest first (sound by over-approximation).
        let mut verdict = match first {
            Some(first) => self.cascade.classify_with_first(current, first, stats),
            None => self.cascade.classify(current, stats),
        };
        let screened = !self.cascade.is_empty();
        // Exact rational work below shares the cascade's timer so traced
        // queries attribute every tier's cost, untraced ones pay nothing.
        let timer = self.cascade.timer();

        if current.is_point() {
            // A screening tier can prove a point correct and skip the
            // exact forward pass; everything else needs the exact
            // evaluation anyway (a counterexample record carries exact
            // outputs).
            if verdict == BoxVerdict::AlwaysCorrect {
                stats.screen_hits += 1;
                stats.pruned_correct += 1;
                return BoxDecision::Pruned;
            }
            if screened {
                stats.screen_fallbacks += 1;
            }
            stats.exact_evals += 1;
            let nv = current.to_vector();
            if self.excluded.contains(&nv) {
                return BoxDecision::Pruned;
            }
            let (witness, ns) = timer.time(|| exact::witness(self.net, self.x, self.label, &nv));
            stats.exact_ns = stats.exact_ns.saturating_add(ns);
            return match witness.expect("widths validated at query entry") {
                Some(ce) => BoxDecision::Witness(ce),
                None => BoxDecision::Pruned,
            };
        }

        // Last tier: exact propagation when no screen could decide.
        if screened {
            if verdict == BoxVerdict::Unknown {
                stats.screen_fallbacks += 1;
            } else {
                stats.screen_hits += 1;
            }
        }
        if verdict == BoxVerdict::Unknown {
            let (exact_verdict, ns) = timer.time(|| {
                let enclosure =
                    output_intervals_with(self.net, self.x, current, &mut scratch.exact)
                        .expect("widths validated at query entry");
                classify_box(enclosure, self.label)
            });
            stats.exact_ns = stats.exact_ns.saturating_add(ns);
            verdict = exact_verdict;
        }

        match verdict {
            BoxVerdict::AlwaysCorrect => {
                stats.pruned_correct += 1;
                BoxDecision::Pruned
            }
            BoxVerdict::AlwaysWrong => {
                stats.proved_wrong += 1;
                // Every grid point misclassifies; emit the first fresh one.
                match first_not_excluded(current, self.excluded) {
                    Some(nv) => {
                        let ce = exact::witness(self.net, self.x, self.label, &nv)
                            .expect("widths validated at query entry")
                            .expect("interval proof of misclassification is sound");
                        BoxDecision::UniformWitness(ce)
                    }
                    // Entire box already extracted — nothing fresh here.
                    None => BoxDecision::Pruned,
                }
            }
            BoxVerdict::Unknown => {
                stats.splits += 1;
                let (a, b) = current.split().expect("non-point boxes split");
                BoxDecision::Split(a, b)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fannet_nn::{Activation, DenseLayer, Readout};
    use fannet_tensor::Matrix;

    fn r(n: i128) -> Rational {
        Rational::from_integer(n)
    }

    fn comparator() -> Network<Rational> {
        Network::new(
            vec![DenseLayer::new(
                Matrix::from_rows(vec![vec![r(1), r(0)], vec![r(0), r(1)]]).unwrap(),
                vec![r(0), r(0)],
                Activation::Identity,
            )
            .unwrap()],
            Readout::MaxPool,
        )
        .unwrap()
    }

    /// 2-3-2 ReLU network with interesting nonlinearity.
    fn relu_net() -> Network<Rational> {
        let hidden = DenseLayer::new(
            Matrix::from_rows(vec![vec![r(2), r(-1)], vec![r(-1), r(2)], vec![r(1), r(1)]])
                .unwrap(),
            vec![r(-10), r(-10), r(0)],
            Activation::ReLU,
        )
        .unwrap();
        let output = DenseLayer::new(
            Matrix::from_rows(vec![vec![r(1), r(0), r(1)], vec![r(0), r(1), r(1)]]).unwrap(),
            vec![r(0), r(0)],
            Activation::Identity,
        )
        .unwrap();
        Network::new(vec![hidden, output], Readout::MaxPool).unwrap()
    }

    /// Every configuration the cross-validation invariants quantify over.
    fn all_configs() -> Vec<CheckerConfig> {
        vec![
            CheckerConfig::serial_exact(),
            CheckerConfig::screened(),
            CheckerConfig::zonotope(),
            CheckerConfig::cascade(),
            CheckerConfig::serial_exact().with_threads(4),
            CheckerConfig::screened().with_threads(4),
            CheckerConfig::cascade().with_threads(4),
        ]
    }

    #[test]
    fn robust_when_gap_exceeds_noise() {
        let net = comparator();
        let x = [r(100), r(80)];
        for config in all_configs() {
            let (out, stats) =
                find_counterexample_with(&net, &x, 0, &NoiseRegion::symmetric(5, 2), &config)
                    .unwrap();
            assert!(out.is_robust(), "{config:?}");
            assert!(stats.boxes_visited >= 1);
        }
    }

    #[test]
    fn finds_counterexample_at_boundary() {
        let net = comparator();
        let x = [r(100), r(80)];
        // x0·(1-11%) = 89 < x1·(1+11%) = 88.8? 89 > 88.8 — still correct.
        // Need -10% & +13%... compute: flipping needs x0(100+p0) < x1(100+p1)
        // ⇔ 100(100+p0) < 80(100+p1). At p0=-11, p1=+11: 8900 vs 8880 → ok.
        // At p0=-12, p1=+12: 8800 vs 8960 → flip. So Δ=12 flips, Δ=11 not.
        for config in all_configs() {
            let (out11, _) =
                find_counterexample_with(&net, &x, 0, &NoiseRegion::symmetric(11, 2), &config)
                    .unwrap();
            assert!(out11.is_robust(), "±11% must be safe for {config:?}");
            let (out12, _) =
                find_counterexample_with(&net, &x, 0, &NoiseRegion::symmetric(12, 2), &config)
                    .unwrap();
            let ce = out12.counterexample().expect("±12% must flip");
            assert_eq!(ce.expected, 0);
            assert_eq!(ce.predicted, 1);
            assert!(ce.noise.max_abs() <= 12);
            // Verify the witness exactly.
            assert_ne!(
                exact::classify_noisy(&net, &x, &ce.noise).unwrap(),
                0,
                "witness must really misclassify"
            );
        }
    }

    #[test]
    fn agrees_with_exhaustive_oracle() {
        let net = relu_net();
        let inputs = [
            [r(12), r(5)],
            [r(5), r(12)],
            [r(9), r(8)],
            [r(-3), r(4)],
            [r(30), r(29)],
        ];
        for x in &inputs {
            let label = net.classify(x).unwrap();
            for delta in [0, 1, 2, 4, 8] {
                let region = NoiseRegion::symmetric(delta, 2);
                let (exh_out, _) =
                    check_region_exhaustive(&net, x, label, &region, &ExclusionSet::new()).unwrap();
                for config in all_configs() {
                    let (bab_out, _) =
                        find_counterexample_with(&net, x, label, &region, &config).unwrap();
                    assert_eq!(
                        bab_out.is_robust(),
                        exh_out.is_robust(),
                        "disagreement at x={x:?} delta={delta} config={config:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn all_configs_return_identical_counterexamples() {
        let net = relu_net();
        // Inputs chosen to have counterexamples at modest deltas.
        for x in [[r(9), r(8)], [r(30), r(29)], [r(12), r(5)]] {
            let label = net.classify(&x).unwrap();
            for delta in [3, 6, 10] {
                let region = NoiseRegion::symmetric(delta, 2);
                let (baseline, _) = find_counterexample(&net, &x, label, &region).unwrap();
                for config in all_configs() {
                    let (out, _) =
                        find_counterexample_with(&net, &x, label, &region, &config).unwrap();
                    assert_eq!(
                        baseline.counterexample().map(|c| &c.noise),
                        out.counterexample().map(|c| &c.noise),
                        "CE identity must not depend on {config:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn batched_screening_is_bit_identical_to_scalar() {
        let net = relu_net();
        for x in [[r(9), r(8)], [r(30), r(29)], [r(12), r(5)], [r(-3), r(4)]] {
            let label = net.classify(&x).unwrap();
            for config in [
                CheckerConfig::screened(),
                CheckerConfig::cascade(),
                CheckerConfig::cascade().with_threads(4),
            ] {
                let batched = RegionChecker::new(&net, config.clone());
                let scalar = RegionChecker::new(&net, config.clone()).with_batching(false);
                for delta in [0, 3, 6, 10] {
                    let region = NoiseRegion::symmetric(delta, 2);
                    let (out_b, stats_b) = batched
                        .check_region(&x, label, &region, &ExclusionSet::new())
                        .unwrap();
                    let (out_s, stats_s) = scalar
                        .check_region(&x, label, &region, &ExclusionSet::new())
                        .unwrap();
                    assert_eq!(
                        out_b.counterexample().map(|c| &c.noise),
                        out_s.counterexample().map(|c| &c.noise),
                        "witness identity at x={x:?} delta={delta} config={config:?}"
                    );
                    assert_eq!(out_b.is_robust(), out_s.is_robust());
                    // Parallel visit counts are scheduling-dependent
                    // (abort races), so the counter identity is only
                    // meaningful for the serial search.
                    if config.threads <= 1 {
                        assert_eq!(
                            stats_b, stats_s,
                            "stats identity at x={x:?} delta={delta} config={config:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn batching_requires_the_interval_tier() {
        let net = relu_net();
        // No float shadow → nothing to batch; the toggle is a no-op.
        let checker = RegionChecker::new(&net, CheckerConfig::serial_exact()).with_batching(true);
        let (out, _) = checker
            .check_region(
                &[r(9), r(8)],
                net.classify(&[r(9), r(8)]).unwrap(),
                &NoiseRegion::symmetric(3, 2),
                &ExclusionSet::new(),
            )
            .unwrap();
        assert!(out.counterexample().is_some() || out.is_robust());
    }

    #[test]
    fn screening_stats_are_recorded() {
        let net = relu_net();
        let x = [r(9), r(8)];
        let label = net.classify(&x).unwrap();
        let region = NoiseRegion::symmetric(6, 2);
        let (_, stats) =
            find_counterexample_with(&net, &x, label, &region, &CheckerConfig::screened()).unwrap();
        assert!(
            stats.screen_hits + stats.screen_fallbacks > 0,
            "screening must have been exercised: {stats:?}"
        );
        assert!(stats.screen_hit_rate().is_some());
        // The serial-exact baseline records no screening activity.
        let (_, base) = find_counterexample(&net, &x, label, &region).unwrap();
        assert_eq!(base.screen_hits, 0);
        assert_eq!(base.screen_fallbacks, 0);
        assert_eq!(base.screen_hit_rate(), None);
    }

    #[test]
    fn exclusion_forces_fresh_counterexamples() {
        let net = comparator();
        let x = [r(100), r(99)];
        let region = NoiseRegion::symmetric(3, 2);
        for config in all_configs() {
            let mut excluded = ExclusionSet::new();
            let mut found = Vec::new();
            loop {
                let (out, _) = check_region_with(&net, &x, 0, &region, &excluded, &config).unwrap();
                match out {
                    RegionOutcome::Counterexample(ce) => {
                        assert!(
                            !found.contains(&ce.noise),
                            "duplicate counterexample {} under {config:?}",
                            ce.noise
                        );
                        excluded.insert(ce.noise.clone());
                        found.push(ce.noise);
                    }
                    RegionOutcome::Robust => break,
                }
            }
            // Cross-check the count against brute force.
            let brute = region
                .iter_points()
                .filter(|nv| exact::classify_noisy(&net, &x, nv).unwrap() != 0)
                .count();
            assert_eq!(found.len(), brute, "P3 loop must enumerate every CE once");
            assert!(brute > 0, "test needs a non-trivial CE population");
        }
    }

    #[test]
    fn zero_noise_region_matches_plain_classification() {
        let net = relu_net();
        let x = [r(9), r(8)];
        let label = net.classify(&x).unwrap();
        let (out, stats) =
            find_counterexample(&net, &x, label, &NoiseRegion::symmetric(0, 2)).unwrap();
        assert!(out.is_robust());
        assert_eq!(stats.exact_evals, 1);
    }

    #[test]
    fn wrong_label_gives_immediate_counterexample() {
        let net = comparator();
        let x = [r(100), r(80)];
        // Asking for label 1 (wrong) — the zero vector itself is a CE.
        for config in all_configs() {
            let (out, _) =
                find_counterexample_with(&net, &x, 1, &NoiseRegion::symmetric(0, 2), &config)
                    .unwrap();
            let ce = out
                .counterexample()
                .expect("zero noise already misclassifies");
            assert_eq!(ce.noise, NoiseVector::zero(2));
        }
    }

    #[test]
    fn stats_reflect_search_structure() {
        let net = relu_net();
        let x = [r(9), r(8)];
        let label = net.classify(&x).unwrap();
        let (_, stats) =
            find_counterexample(&net, &x, label, &NoiseRegion::symmetric(6, 2)).unwrap();
        // Either everything was pruned at the top or splits happened.
        assert!(stats.boxes_visited > 0);
        assert!(
            stats.pruned_correct > 0 || stats.exact_evals > 0,
            "{stats:?} shows no decisive work"
        );
        let full_grid = 13u64 * 13;
        assert!(
            stats.exact_evals < full_grid,
            "branch-and-bound should not degenerate to full enumeration ({stats:?})"
        );
        // The complete grid domain never touches the budgeted counters.
        assert_eq!(stats.exact_decisions + stats.exact_fallbacks, 0);
        assert_eq!(stats.concrete_evals, 0);
        assert!(!stats.budget_exhausted);
    }

    #[test]
    fn deterministic_counterexample_order() {
        let net = comparator();
        let x = [r(100), r(99)];
        let region = NoiseRegion::symmetric(4, 2);
        for config in all_configs() {
            let (a, _) = find_counterexample_with(&net, &x, 0, &region, &config).unwrap();
            let (b, _) = find_counterexample_with(&net, &x, 0, &region, &config).unwrap();
            assert_eq!(
                a.counterexample().map(|c| c.noise.clone()),
                b.counterexample().map(|c| c.noise.clone()),
                "repeat runs must agree under {config:?}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "scoped thread panicked")]
    fn parallel_worker_panic_propagates_instead_of_hanging() {
        // Weights large enough that interval propagation overflows i128:
        // the first worker to touch the root box panics; the abort flag
        // must wake its siblings so the scope joins and re-raises the
        // panic (before the fix this hung with all workers spinning).
        let huge = Rational::from_integer(i128::MAX / 4);
        let net = Network::new(
            vec![DenseLayer::new(
                Matrix::from_rows(vec![vec![huge, huge], vec![huge, -huge]]).unwrap(),
                vec![Rational::ZERO, Rational::ZERO],
                Activation::Identity,
            )
            .unwrap()],
            Readout::MaxPool,
        )
        .unwrap();
        let x = [r(1 << 20), r(1 << 20)];
        let _ = find_counterexample_with(
            &net,
            &x,
            0,
            &NoiseRegion::symmetric(8, 2),
            &CheckerConfig::serial_exact().with_threads(4),
        );
    }

    #[test]
    fn checker_config_presets_and_env() {
        assert_eq!(CheckerConfig::serial_exact().threads, 1);
        assert_eq!(CheckerConfig::serial_exact().screening, ScreeningTier::None);
        assert!(!CheckerConfig::serial_exact().screening.is_active());
        assert_eq!(CheckerConfig::screened().threads, 1);
        assert_eq!(CheckerConfig::screened().screening, ScreeningTier::Interval);
        assert_eq!(CheckerConfig::zonotope().screening, ScreeningTier::Zonotope);
        assert_eq!(CheckerConfig::cascade().screening, ScreeningTier::Cascade);
        assert!(CheckerConfig::parallel().threads >= 1);
        assert_eq!(CheckerConfig::default(), CheckerConfig::fast());
        assert_eq!(CheckerConfig::fast().screening, ScreeningTier::Cascade);
        assert_eq!(CheckerConfig::fast().with_threads(0).threads, 1);
        assert_eq!(
            CheckerConfig::serial_exact()
                .with_screening(ScreeningTier::Zonotope)
                .screening,
            ScreeningTier::Zonotope
        );
        assert!(default_threads() >= 1);
    }

    #[test]
    fn screening_tier_reexport_round_trips() {
        // The tier moved to fannet-search; the re-exported path must
        // keep parsing (case-insensitively) and printing as before.
        for tier in ScreeningTier::ALL {
            assert_eq!(ScreeningTier::parse(tier.name()), Ok(tier));
            assert_eq!(tier.to_string(), tier.name());
        }
        assert_eq!(
            " Cascade ".parse::<ScreeningTier>(),
            Ok(ScreeningTier::Cascade)
        );
        let err = ScreeningTier::parse("frobnicate").unwrap_err();
        assert!(err.contains("none") && err.contains("cascade"), "{err}");
    }

    #[test]
    fn per_tier_counters_record_cascade_structure() {
        let net = relu_net();
        let x = [r(9), r(8)];
        let label = net.classify(&x).unwrap();
        let region = NoiseRegion::symmetric(6, 2);
        let (_, cascade) =
            find_counterexample_with(&net, &x, label, &region, &CheckerConfig::cascade()).unwrap();
        // In a cascade the zonotope tier sees exactly the interval tier's
        // fallbacks, and the aggregate counters cover every screened box.
        assert_eq!(
            cascade.zonotope_hits + cascade.zonotope_fallbacks,
            cascade.interval_fallbacks,
            "{cascade:?}"
        );
        assert_eq!(
            cascade.screen_hits + cascade.screen_fallbacks,
            cascade.interval_hits + cascade.interval_fallbacks,
            "{cascade:?}"
        );
        // Interval-only screening records no zonotope activity…
        let (_, interval) =
            find_counterexample_with(&net, &x, label, &region, &CheckerConfig::screened()).unwrap();
        assert_eq!(interval.zonotope_hits + interval.zonotope_fallbacks, 0);
        assert!(interval.interval_hits + interval.interval_fallbacks > 0);
        // …and zonotope-only screening no interval activity.
        let (_, zono) =
            find_counterexample_with(&net, &x, label, &region, &CheckerConfig::zonotope()).unwrap();
        assert_eq!(zono.interval_hits + zono.interval_fallbacks, 0);
        assert!(zono.zonotope_hits + zono.zonotope_fallbacks > 0);
        // The serial-exact baseline records nothing.
        let (_, base) = find_counterexample(&net, &x, label, &region).unwrap();
        assert_eq!(base.interval_hits + base.zonotope_hits, 0);
        assert_eq!(base.interval_fallbacks + base.zonotope_fallbacks, 0);
    }

    #[test]
    fn timed_check_matches_untimed_verdict_and_counters() {
        let net = relu_net();
        let x = [r(9), r(8)];
        let label = net.classify(&x).unwrap();
        let region = NoiseRegion::symmetric(6, 2);
        for config in [
            CheckerConfig::serial_exact(),
            CheckerConfig::screened(),
            CheckerConfig::zonotope(),
            CheckerConfig::cascade(),
        ] {
            let checker = RegionChecker::new(&net, config.clone());
            let (plain, plain_stats) = checker
                .check_region(&x, label, &region, &ExclusionSet::new())
                .unwrap();
            let (timed, timed_stats) = checker
                .check_region_timed(
                    &x,
                    label,
                    &region,
                    &ExclusionSet::new(),
                    TierTimer::enabled(),
                )
                .unwrap();
            assert_eq!(
                plain, timed,
                "verdict must not depend on timing: {config:?}"
            );
            assert!(
                timed_stats.exact_ns > 0,
                "exact work must be clocked under {config:?}: {timed_stats:?}"
            );
            // Untimed stats never read the clock…
            assert_eq!(
                (
                    plain_stats.interval_ns,
                    plain_stats.zonotope_ns,
                    plain_stats.exact_ns
                ),
                (0, 0, 0),
                "{config:?}"
            );
            // …and every non-timing field is bit-identical across modes.
            let mut scrubbed = timed_stats;
            scrubbed.interval_ns = 0;
            scrubbed.zonotope_ns = 0;
            scrubbed.exact_ns = 0;
            assert_eq!(scrubbed, plain_stats, "{config:?}");
        }
    }

    #[test]
    fn collector_screened_matches_exact() {
        let net = comparator();
        let x = [r(100), r(98)];
        let region = NoiseRegion::symmetric(4, 2);
        let (plain, exhausted_a, _) =
            collect_region_counterexamples(&net, &x, 0, &region, usize::MAX).unwrap();
        let (screened, exhausted_b, stats) = collect_region_counterexamples_with(
            &net,
            &x,
            0,
            &region,
            usize::MAX,
            &CheckerConfig::screened(),
        )
        .unwrap();
        assert_eq!(exhausted_a, exhausted_b);
        let a: Vec<_> = plain.iter().map(|ce| ce.noise.clone()).collect();
        let b: Vec<_> = screened.iter().map(|ce| ce.noise.clone()).collect();
        assert_eq!(a, b, "screened collection must preserve order and content");
        assert!(stats.screen_hits + stats.screen_fallbacks > 0);
    }
}
