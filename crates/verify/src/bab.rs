//! The branch-and-bound decision procedure over noise boxes.
//!
//! This is the reproduction's substitute for nuXmv's symbolic search (see
//! DESIGN.md §5). The property checked is the paper's **P2**
//! (`OCn = Sx`, the noisy output class equals the true label) for every
//! noise vector in a [`NoiseRegion`], with optional exclusion of
//! already-extracted vectors (**P3**).
//!
//! The algorithm is classic interval branch-and-bound:
//!
//! 1. propagate the region through the network — through the active
//!    screening tiers first ([`ScreeningTier`]): the cheap outward-rounded
//!    `f64` interval shadow ([`crate::propagate::FloatShadow`], DESIGN.md §6),
//!    then the correlation-tracking zonotope shadow
//!    ([`crate::zonotope::ZonotopeShadow`], DESIGN.md §10), falling back
//!    to exact [`crate::propagate::output_intervals`] only when every active
//!    screen returns `Unknown`;
//! 2. if the enclosure proves the box *always correct*, prune it (for
//!    counterexample search, a fully-correct box cannot contain any
//!    counterexample, excluded or not);
//! 3. if it proves the box *always wrong*, every grid point is a
//!    counterexample — return the lexicographically first one not in the
//!    exclusion set;
//! 4. otherwise split the widest dimension and recurse; singleton boxes are
//!    decided by exact rational evaluation ([`exact`]).
//!
//! Every verdict is exact: both interval tiers are sound (step 2/3 verdicts
//! are proofs — the float tier *over-approximates* the exact one, see
//! [`crate::propagate::classify_box_float`]) and singleton fallback is ground
//! truth, so the procedure is **sound and complete over the integer noise
//! grid** — the same finite state space the paper's model checker explores.
//! Completeness holds because splitting strictly shrinks boxes, terminating
//! at singletons.
//!
//! ## Parallel search
//!
//! [`CheckerConfig::threads`] > 1 runs the same search as a work-stealing
//! parallel exploration (DESIGN.md §7): workers keep a private LIFO stack
//! and overflow halves into a shared steal pool. Each box carries its DFS
//! *path key* (the left/right split choices from the root), and a found
//! counterexample only wins if no candidate with a lexicographically
//! smaller path exists — which reproduces the serial first-counterexample
//! order exactly, so serial, screened and parallel modes return the
//! identical counterexample.

use std::borrow::Cow;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering as AtomicOrdering};
use std::sync::{Condvar, Mutex};

use fannet_nn::Network;
use fannet_numeric::{FloatInterval, Rational};
use fannet_tensor::ShapeError;
use serde::{Deserialize, Serialize};

use crate::exact;
use crate::noise::{ExclusionSet, NoiseVector};
use crate::propagate::{
    classify_box, classify_box_float, output_intervals, BoxVerdict, FloatShadow,
};
use crate::region::NoiseRegion;
use crate::zonotope::{classify_box_zonotope, ZonotopeShadow};

/// Environment variable overriding the default worker count.
pub const THREADS_ENV: &str = "FANNET_THREADS";

/// Which screening tiers run before exact rational propagation.
///
/// Every tier is a sound over-approximation, so the *verdict and witness*
/// are identical across all four settings (enforced by
/// `tests/checker_cross_validation.rs`); only which tier pays for each
/// box changes. Cheapest-first is the design invariant: an interval pass
/// is one `f64` multiply-add per weight, a zonotope pass is one per
/// weight *per tracked symbol*, exact rational propagation is gcd-heavy
/// `i128` arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ScreeningTier {
    /// Exact propagation only (the seed baseline).
    None,
    /// Outward-rounded `f64` interval screen (DESIGN.md §6).
    Interval,
    /// Affine-form zonotope screen classifying on output differences
    /// (DESIGN.md §10).
    Zonotope,
    /// Interval first, zonotope on interval-`Unknown`, exact last —
    /// cheapest tier that can decide each box pays for it.
    Cascade,
}

impl ScreeningTier {
    /// `true` if the float-interval screen runs.
    #[must_use]
    pub fn uses_interval(self) -> bool {
        matches!(self, ScreeningTier::Interval | ScreeningTier::Cascade)
    }

    /// `true` if the zonotope screen runs.
    #[must_use]
    pub fn uses_zonotope(self) -> bool {
        matches!(self, ScreeningTier::Zonotope | ScreeningTier::Cascade)
    }

    /// `true` unless every box goes straight to exact propagation.
    #[must_use]
    pub fn is_active(self) -> bool {
        self != ScreeningTier::None
    }

    /// The CLI spelling (`--screening=<name>`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ScreeningTier::None => "none",
            ScreeningTier::Interval => "interval",
            ScreeningTier::Zonotope => "zonotope",
            ScreeningTier::Cascade => "cascade",
        }
    }

    /// Parses the CLI spelling.
    ///
    /// # Errors
    ///
    /// Returns a message listing the accepted names.
    pub fn parse(text: &str) -> Result<Self, String> {
        match text.trim().to_ascii_lowercase().as_str() {
            "none" => Ok(ScreeningTier::None),
            "interval" => Ok(ScreeningTier::Interval),
            "zonotope" => Ok(ScreeningTier::Zonotope),
            "cascade" => Ok(ScreeningTier::Cascade),
            other => Err(format!(
                "unknown screening tier `{other}` (expected none/interval/zonotope/cascade)"
            )),
        }
    }
}

impl std::fmt::Display for ScreeningTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// How a region check runs: which screening tiers are active and how many
/// workers explore the box tree.
///
/// All configurations decide the *same* property with the *same* outcome
/// and counterexample (enforced by `tests/checker_cross_validation.rs`);
/// they differ only in wall-clock cost.
///
/// # Examples
///
/// ```
/// use fannet_verify::bab::{CheckerConfig, ScreeningTier};
///
/// assert_eq!(CheckerConfig::serial_exact().threads, 1);
/// assert_eq!(CheckerConfig::fast().screening, ScreeningTier::Cascade);
/// assert!(CheckerConfig::fast().threads >= 1);
/// assert_eq!(CheckerConfig::screened().with_threads(4).threads, 4);
/// assert!(CheckerConfig::zonotope().screening.uses_zonotope());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CheckerConfig {
    /// Screening tiers each box routes through before exact rational
    /// propagation runs (only on boxes no active screen can decide).
    pub screening: ScreeningTier,
    /// Worker threads exploring the box tree (`1` = serial).
    pub threads: usize,
}

impl CheckerConfig {
    /// The seed baseline: single-threaded, exact propagation only.
    #[must_use]
    pub fn serial_exact() -> Self {
        CheckerConfig {
            screening: ScreeningTier::None,
            threads: 1,
        }
    }

    /// Single-threaded with float-interval screening.
    #[must_use]
    pub fn screened() -> Self {
        CheckerConfig {
            screening: ScreeningTier::Interval,
            threads: 1,
        }
    }

    /// Single-threaded with zonotope screening only.
    #[must_use]
    pub fn zonotope() -> Self {
        CheckerConfig {
            screening: ScreeningTier::Zonotope,
            threads: 1,
        }
    }

    /// Single-threaded cascade: interval → zonotope → exact.
    #[must_use]
    pub fn cascade() -> Self {
        CheckerConfig {
            screening: ScreeningTier::Cascade,
            threads: 1,
        }
    }

    /// Parallel exact propagation (no screening).
    #[must_use]
    pub fn parallel() -> Self {
        CheckerConfig {
            screening: ScreeningTier::None,
            threads: default_threads(),
        }
    }

    /// Cascade screening + parallel search: the production configuration.
    #[must_use]
    pub fn fast() -> Self {
        CheckerConfig {
            screening: ScreeningTier::Cascade,
            threads: default_threads(),
        }
    }

    /// Overrides the worker count (`0` is clamped to 1).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Overrides the screening tier.
    #[must_use]
    pub fn with_screening(mut self, tier: ScreeningTier) -> Self {
        self.screening = tier;
        self
    }
}

impl Default for CheckerConfig {
    /// [`CheckerConfig::fast`]: screening on, all cores.
    fn default() -> Self {
        CheckerConfig::fast()
    }
}

/// Worker count used by the parallel presets: the `FANNET_THREADS`
/// environment variable when set, otherwise the machine's available
/// parallelism.
///
/// A value of `0` — or one that does not parse as an unsigned integer —
/// falls back to all cores; an unparsable value additionally emits a
/// one-time warning on stderr (a silently ignored override is worse than
/// a noisy one).
#[must_use]
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var(THREADS_ENV) {
        match v.trim().parse::<usize>() {
            Ok(0) => {} // documented "use all cores" spelling
            Ok(n) => return n,
            Err(_) => {
                static WARN_ONCE: std::sync::Once = std::sync::Once::new();
                WARN_ONCE.call_once(|| {
                    eprintln!(
                        "warning: ignoring unparsable {THREADS_ENV}={v:?}; \
                         falling back to all cores"
                    );
                });
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Search statistics, exposed for the checker-ablation bench (A2) and for
/// state-space-growth reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BabStats {
    /// Boxes taken off the work stack.
    pub boxes_visited: u64,
    /// Boxes proven uniformly correct by interval propagation (either tier).
    pub pruned_correct: u64,
    /// Boxes proven uniformly wrong by interval propagation (either tier).
    pub proved_wrong: u64,
    /// Singleton boxes decided by exact evaluation.
    pub exact_evals: u64,
    /// Splits performed.
    pub splits: u64,
    /// Boxes resolved by some screening tier alone (no exact propagation
    /// needed).
    pub screen_hits: u64,
    /// Boxes where every active screening tier returned `Unknown` (or a
    /// point box still needed its exact witness evaluation) and exact
    /// rational work ran.
    pub screen_fallbacks: u64,
    /// Boxes the float-interval tier classified (`AlwaysCorrect` or
    /// `AlwaysWrong`).
    pub interval_hits: u64,
    /// Boxes the float-interval tier ran on but returned `Unknown`,
    /// handing them to the next tier (zonotope in a cascade, exact
    /// otherwise).
    pub interval_fallbacks: u64,
    /// Boxes the zonotope tier classified (after the interval tier could
    /// not, when both are active).
    pub zonotope_hits: u64,
    /// Boxes the zonotope tier ran on but returned `Unknown`, falling
    /// through to exact propagation.
    pub zonotope_fallbacks: u64,
}

impl BabStats {
    /// Accumulates another run's counters into `self`.
    pub fn merge(&mut self, other: &BabStats) {
        self.boxes_visited += other.boxes_visited;
        self.pruned_correct += other.pruned_correct;
        self.proved_wrong += other.proved_wrong;
        self.exact_evals += other.exact_evals;
        self.splits += other.splits;
        self.screen_hits += other.screen_hits;
        self.screen_fallbacks += other.screen_fallbacks;
        self.interval_hits += other.interval_hits;
        self.interval_fallbacks += other.interval_fallbacks;
        self.zonotope_hits += other.zonotope_hits;
        self.zonotope_fallbacks += other.zonotope_fallbacks;
    }

    /// Fraction of screened boxes some screening tier decided on its own;
    /// `None` when screening never ran.
    #[must_use]
    pub fn screen_hit_rate(&self) -> Option<f64> {
        Self::rate(self.screen_hits, self.screen_fallbacks)
    }

    /// Fraction of interval-tier passes that classified their box; `None`
    /// when the interval tier never ran.
    #[must_use]
    pub fn interval_hit_rate(&self) -> Option<f64> {
        Self::rate(self.interval_hits, self.interval_fallbacks)
    }

    /// Fraction of zonotope-tier passes that classified their box (in a
    /// cascade these are exactly the boxes the interval tier gave up on);
    /// `None` when the zonotope tier never ran.
    #[must_use]
    pub fn zonotope_hit_rate(&self) -> Option<f64> {
        Self::rate(self.zonotope_hits, self.zonotope_fallbacks)
    }

    fn rate(hits: u64, fallbacks: u64) -> Option<f64> {
        let total = hits + fallbacks;
        if total == 0 {
            None
        } else {
            Some(hits as f64 / total as f64)
        }
    }
}

/// Outcome of a region check.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RegionOutcome {
    /// P2 holds: no noise vector in the region (outside the exclusion set)
    /// misclassifies the input. This is a *proof*.
    Robust,
    /// A fresh counterexample violating P2.
    Counterexample(exact::Counterexample),
}

impl RegionOutcome {
    /// `true` for [`RegionOutcome::Robust`].
    #[must_use]
    pub fn is_robust(&self) -> bool {
        matches!(self, RegionOutcome::Robust)
    }

    /// The counterexample, if any.
    #[must_use]
    pub fn counterexample(&self) -> Option<&exact::Counterexample> {
        match self {
            RegionOutcome::Robust => None,
            RegionOutcome::Counterexample(ce) => Some(ce),
        }
    }
}

/// Checks property P2 on `region` with the seed's serial-exact
/// configuration: does any noise vector (not in `excluded`) flip the
/// classification of `x` away from `label`?
///
/// Returns the outcome together with search statistics. This is the
/// baseline the faster configurations are cross-validated against; use
/// [`check_region_with`] + [`CheckerConfig::fast`] for the screened
/// parallel checker.
///
/// # Errors
///
/// Returns [`ShapeError`] if input/region/network widths disagree.
///
/// # Panics
///
/// Panics if the network is not piecewise-linear or `label` is out of
/// range.
///
/// # Examples
///
/// ```
/// use fannet_numeric::Rational;
/// use fannet_nn::{Activation, DenseLayer, Network, Readout};
/// use fannet_tensor::Matrix;
/// use fannet_verify::{bab, noise::ExclusionSet, region::NoiseRegion};
///
/// // Identity comparator: label 0 iff x0 ≥ x1.
/// let r = |n: i128| Rational::from_integer(n);
/// let net = Network::new(vec![DenseLayer::new(
///     Matrix::from_rows(vec![vec![r(1), r(0)], vec![r(0), r(1)]])?,
///     vec![r(0), r(0)],
///     Activation::Identity,
/// )?], Readout::MaxPool)?;
///
/// let x = [r(100), r(82)];
/// // Flipping needs 100·(100−Δ) < 82·(100+Δ), i.e. Δ ≥ 10.
/// let (safe, _) = bab::check_region(&net, &x, 0, &NoiseRegion::symmetric(9, 2), &ExclusionSet::new())?;
/// assert!(safe.is_robust());
/// let (flipped, _) = bab::check_region(&net, &x, 0, &NoiseRegion::symmetric(10, 2), &ExclusionSet::new())?;
/// assert!(!flipped.is_robust());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn check_region(
    net: &Network<Rational>,
    x: &[Rational],
    label: usize,
    region: &NoiseRegion,
    excluded: &ExclusionSet,
) -> Result<(RegionOutcome, BabStats), ShapeError> {
    check_region_with(
        net,
        x,
        label,
        region,
        excluded,
        &CheckerConfig::serial_exact(),
    )
}

/// [`check_region`] under an explicit [`CheckerConfig`] — the entry point
/// of the two-tier, optionally parallel checker.
///
/// # Errors
///
/// Returns [`ShapeError`] if input/region/network widths disagree.
///
/// # Panics
///
/// Panics if the network is not piecewise-linear or `label` is out of
/// range.
pub fn check_region_with(
    net: &Network<Rational>,
    x: &[Rational],
    label: usize,
    region: &NoiseRegion,
    excluded: &ExclusionSet,
    config: &CheckerConfig,
) -> Result<(RegionOutcome, BabStats), ShapeError> {
    RegionChecker::new(net, config.clone()).check_region(x, label, region, excluded)
}

/// A reusable query handle: the network plus its screening shadows, built
/// **once** and shared across any number of queries (and across threads —
/// the handle is `Sync`).
///
/// The analyses in `fannet-core` issue thousands of P2/P3 queries against
/// the same network; constructing one `RegionChecker` up front amortizes
/// the shadow construction over all of them. The free functions
/// ([`check_region_with`] etc.) remain as one-shot conveniences.
#[derive(Debug, Clone)]
pub struct RegionChecker<'n> {
    net: &'n Network<Rational>,
    config: CheckerConfig,
    /// Owned when this handle built the shadow itself, borrowed when a
    /// resident owner (`fannet-engine`) lends its per-network copy — the
    /// serving hot path must not deep-clone every enclosed weight per
    /// query.
    shadow: Option<Cow<'n, FloatShadow>>,
    zonotope: Option<Cow<'n, ZonotopeShadow>>,
}

impl<'n> RegionChecker<'n> {
    /// Builds the handle; each screening shadow is constructed here iff
    /// its tier is active in `config.screening`.
    ///
    /// # Panics
    ///
    /// Panics if screening is requested and the network is not
    /// piecewise-linear.
    #[must_use]
    pub fn new(net: &'n Network<Rational>, config: CheckerConfig) -> Self {
        Self::with_shadows(net, config, None, None)
    }

    /// Builds the handle around borrowed shadows constructed elsewhere —
    /// the cache hook used by `fannet-engine`, whose resident `Engine`
    /// owns the network, one [`FloatShadow`] and one [`ZonotopeShadow`],
    /// and stamps out per-query handles without re-enclosing (or
    /// cloning) a single weight.
    ///
    /// Both shadows must have been built from `net`; each is consulted
    /// iff its tier is active in `config.screening` (a `None` shadow with
    /// its tier enabled is built and owned here, an unused one is
    /// ignored).
    #[must_use]
    pub fn with_shadows(
        net: &'n Network<Rational>,
        config: CheckerConfig,
        shadow: Option<&'n FloatShadow>,
        zonotope: Option<&'n ZonotopeShadow>,
    ) -> Self {
        let shadow = if config.screening.uses_interval() {
            Some(
                shadow
                    .map(Cow::Borrowed)
                    .unwrap_or_else(|| Cow::Owned(FloatShadow::new(net))),
            )
        } else {
            None
        };
        let zonotope = if config.screening.uses_zonotope() {
            Some(
                zonotope
                    .map(Cow::Borrowed)
                    .unwrap_or_else(|| Cow::Owned(ZonotopeShadow::new(net))),
            )
        } else {
            None
        };
        RegionChecker {
            net,
            config,
            shadow,
            zonotope,
        }
    }

    /// The configuration this handle runs under.
    #[must_use]
    pub fn config(&self) -> &CheckerConfig {
        &self.config
    }

    /// The network this handle queries.
    #[must_use]
    pub fn network(&self) -> &'n Network<Rational> {
        self.net
    }

    /// [`check_region`] through this handle (see the free function for
    /// semantics).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if input/region/network widths disagree.
    ///
    /// # Panics
    ///
    /// Panics if `label` is out of range.
    pub fn check_region(
        &self,
        x: &[Rational],
        label: usize,
        region: &NoiseRegion,
        excluded: &ExclusionSet,
    ) -> Result<(RegionOutcome, BabStats), ShapeError> {
        assert!(label < self.net.outputs(), "label {label} out of range");
        validate_widths(self.net, x, region)?;
        let ctx = QueryContext::new(
            self.net,
            x,
            label,
            excluded,
            self.shadow.as_deref(),
            self.zonotope.as_deref(),
        );
        if self.config.threads <= 1 {
            Ok(check_serial(&ctx, region))
        } else {
            Ok(check_parallel(&ctx, region, self.config.threads))
        }
    }

    /// [`collect_region_counterexamples`] through this handle (see the
    /// free function for semantics; only `screening` is honoured here).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if input/region/network widths disagree.
    ///
    /// # Panics
    ///
    /// Panics if `label` is out of range or `cap == 0`.
    pub fn collect_region_counterexamples(
        &self,
        x: &[Rational],
        label: usize,
        region: &NoiseRegion,
        cap: usize,
    ) -> Result<(Vec<exact::Counterexample>, bool, BabStats), ShapeError> {
        assert!(label < self.net.outputs(), "label {label} out of range");
        assert!(cap > 0, "cap must be positive");
        validate_widths(self.net, x, region)?;
        let excluded = ExclusionSet::new();
        let ctx = QueryContext::new(
            self.net,
            x,
            label,
            &excluded,
            self.shadow.as_deref(),
            self.zonotope.as_deref(),
        );
        let mut stats = BabStats::default();
        let mut found = Vec::new();
        let mut stack = vec![region.clone()];

        while let Some(current) = stack.pop() {
            stats.boxes_visited += 1;
            match ctx.decide_box(&current, &mut stats) {
                BoxDecision::Pruned => {}
                BoxDecision::PointCounterexample(ce) => {
                    found.push(ce);
                    if found.len() == cap {
                        return Ok((found, false, stats));
                    }
                }
                BoxDecision::UniformWrong(first) => {
                    // With an empty exclusion set the uniform witness is
                    // the box's first grid point; the remaining points all
                    // misclassify too (interval proof).
                    found.push(first);
                    if found.len() == cap {
                        return Ok((found, false, stats));
                    }
                    for nv in current.iter_points().skip(1) {
                        let ce = exact::witness(self.net, x, label, &nv)?
                            .expect("interval proof of misclassification is sound");
                        found.push(ce);
                        if found.len() == cap {
                            return Ok((found, false, stats));
                        }
                    }
                }
                BoxDecision::Split(a, b) => {
                    stack.push(b);
                    stack.push(a);
                }
            }
        }
        Ok((found, true, stats))
    }
}

/// Convenience wrapper: P2 without any exclusions (serial-exact baseline).
///
/// # Errors
///
/// Returns [`ShapeError`] if widths disagree.
pub fn find_counterexample(
    net: &Network<Rational>,
    x: &[Rational],
    label: usize,
    region: &NoiseRegion,
) -> Result<(RegionOutcome, BabStats), ShapeError> {
    check_region(net, x, label, region, &ExclusionSet::new())
}

/// [`find_counterexample`] under an explicit configuration.
///
/// # Errors
///
/// Returns [`ShapeError`] if widths disagree.
pub fn find_counterexample_with(
    net: &Network<Rational>,
    x: &[Rational],
    label: usize,
    region: &NoiseRegion,
    config: &CheckerConfig,
) -> Result<(RegionOutcome, BabStats), ShapeError> {
    check_region_with(net, x, label, region, &ExclusionSet::new(), config)
}

/// Exhaustive grid enumeration of the same property — exponentially slower
/// but trivially correct. Exists as the baseline for the checker-ablation
/// bench (A2) and as a cross-check oracle in tests.
///
/// # Errors
///
/// Returns [`ShapeError`] if widths disagree.
pub fn check_region_exhaustive(
    net: &Network<Rational>,
    x: &[Rational],
    label: usize,
    region: &NoiseRegion,
    excluded: &ExclusionSet,
) -> Result<(RegionOutcome, BabStats), ShapeError> {
    let mut stats = BabStats::default();
    for nv in region.iter_points() {
        stats.exact_evals += 1;
        if excluded.contains(&nv) {
            continue;
        }
        if let Some(ce) = exact::witness(net, x, label, &nv)? {
            return Ok((RegionOutcome::Counterexample(ce), stats));
        }
    }
    Ok((RegionOutcome::Robust, stats))
}

fn first_not_excluded(region: &NoiseRegion, excluded: &ExclusionSet) -> Option<NoiseVector> {
    // The exclusion set is finite, so at most |excluded| + 1 probes.
    region.iter_points().find(|nv| !excluded.contains(nv))
}

/// Collects up to `cap` distinct counterexamples in a **single**
/// branch-and-bound pass (serial-exact baseline).
///
/// Semantically equivalent to running the P3 restart loop
/// ([`crate::enumerate::CounterexampleEnumerator`]) `cap` times, but each
/// proven-safe box is pruned once instead of once per restart — the
/// asymptotic difference between `O(search)` and `O(cap · search)`. The
/// returned flag is `true` when the region was exhausted (every
/// misclassifying vector found before the cap).
///
/// # Errors
///
/// Returns [`ShapeError`] if input/region/network widths disagree.
///
/// # Panics
///
/// Panics if the network is not piecewise-linear, `label` is out of range,
/// or `cap == 0`.
pub fn collect_region_counterexamples(
    net: &Network<Rational>,
    x: &[Rational],
    label: usize,
    region: &NoiseRegion,
    cap: usize,
) -> Result<(Vec<exact::Counterexample>, bool, BabStats), ShapeError> {
    collect_region_counterexamples_with(net, x, label, region, cap, &CheckerConfig::serial_exact())
}

/// [`collect_region_counterexamples`] with optional float screening.
///
/// Collection order is the serial DFS order, so results are identical
/// across configurations. Only `config.screening` is honoured here —
/// collection itself stays single-threaded because analyses parallelize
/// one level up, across inputs (`fannet-core`'s `par_` layer), which keeps
/// every worker saturated without reordering extracted vectors.
///
/// # Errors
///
/// Returns [`ShapeError`] if input/region/network widths disagree.
///
/// # Panics
///
/// Panics if the network is not piecewise-linear, `label` is out of range,
/// or `cap == 0`.
pub fn collect_region_counterexamples_with(
    net: &Network<Rational>,
    x: &[Rational],
    label: usize,
    region: &NoiseRegion,
    cap: usize,
    config: &CheckerConfig,
) -> Result<(Vec<exact::Counterexample>, bool, BabStats), ShapeError> {
    RegionChecker::new(net, config.clone()).collect_region_counterexamples(x, label, region, cap)
}

// ---------------------------------------------------------------------------
// Shared query machinery
// ---------------------------------------------------------------------------

fn validate_widths(
    net: &Network<Rational>,
    x: &[Rational],
    region: &NoiseRegion,
) -> Result<(), ShapeError> {
    if x.len() != net.inputs() {
        return Err(ShapeError::new(format!(
            "input of width {} against network with {} inputs",
            x.len(),
            net.inputs()
        )));
    }
    if region.nodes() != net.inputs() {
        return Err(ShapeError::new(format!(
            "noise region over {} nodes against network with {} inputs",
            region.nodes(),
            net.inputs()
        )));
    }
    Ok(())
}

/// Everything immutable a worker needs to decide boxes for one query.
struct QueryContext<'a> {
    net: &'a Network<Rational>,
    x: &'a [Rational],
    label: usize,
    excluded: &'a ExclusionSet,
    /// `Some` iff the interval tier is active: the (borrowed, per-network)
    /// float shadow plus the per-query input enclosure.
    shadow: Option<(&'a FloatShadow, Vec<FloatInterval>)>,
    /// `Some` iff the zonotope tier is active: the (borrowed, per-network)
    /// zonotope shadow plus the per-query `(center, slack)` enclosure.
    zonotope: Option<(&'a ZonotopeShadow, Vec<(f64, f64)>)>,
}

/// How one box was resolved.
enum BoxDecision {
    /// Proven free of (fresh) counterexamples — or a point that classifies
    /// correctly / is excluded.
    Pruned,
    /// A singleton grid point that misclassifies.
    PointCounterexample(exact::Counterexample),
    /// Interval proof that every grid point misclassifies; carries the
    /// lexicographically first non-excluded witness. `Pruned` is returned
    /// instead when the whole box is excluded.
    UniformWrong(exact::Counterexample),
    /// Undecided: the two halves to recurse into.
    Split(NoiseRegion, NoiseRegion),
}

impl<'a> QueryContext<'a> {
    fn new(
        net: &'a Network<Rational>,
        x: &'a [Rational],
        label: usize,
        excluded: &'a ExclusionSet,
        shadow: Option<&'a FloatShadow>,
        zonotope: Option<&'a ZonotopeShadow>,
    ) -> Self {
        let shadow = shadow.map(|s| (s, FloatShadow::enclose_input(x)));
        let zonotope = zonotope.map(|z| (z, ZonotopeShadow::enclose_input(x)));
        QueryContext {
            net,
            x,
            label,
            excluded,
            shadow,
            zonotope,
        }
    }

    /// Runs the active screening tiers on one box, cheapest first, and
    /// returns the first decided verdict (`Unknown` if every tier gives
    /// up). Per-tier hit/fallback counters record which tier classified.
    fn screen_box(&self, current: &NoiseRegion, stats: &mut BabStats) -> BoxVerdict {
        let mut verdict = BoxVerdict::Unknown;
        if let Some((shadow, xf)) = &self.shadow {
            verdict = classify_box_float(&shadow.output_intervals(xf, current), self.label);
            if verdict == BoxVerdict::Unknown {
                stats.interval_fallbacks += 1;
            } else {
                stats.interval_hits += 1;
            }
        }
        if verdict == BoxVerdict::Unknown {
            if let Some((zono, xe)) = &self.zonotope {
                verdict = classify_box_zonotope(&zono.output_forms(xe, current), self.label);
                if verdict == BoxVerdict::Unknown {
                    stats.zonotope_fallbacks += 1;
                } else {
                    stats.zonotope_hits += 1;
                }
            }
        }
        verdict
    }

    /// Classifies one box through the active tiers, updating `stats`.
    ///
    /// A box counts as a `screen_hit` when some screening tier made the
    /// exact tier unnecessary, and as a `screen_fallback` when exact work
    /// still had to run; `interval_*`/`zonotope_*` additionally record
    /// which tier classified each screened box. Widths were validated at
    /// query entry, so propagation cannot fail.
    fn decide_box(&self, current: &NoiseRegion, stats: &mut BabStats) -> BoxDecision {
        // Screening tiers, cheapest first (sound by over-approximation).
        let mut verdict = self.screen_box(current, stats);
        let screened = self.shadow.is_some() || self.zonotope.is_some();

        if current.is_point() {
            // A screening tier can prove a point correct and skip the
            // exact forward pass; everything else needs the exact
            // evaluation anyway (a counterexample record carries exact
            // outputs).
            if verdict == BoxVerdict::AlwaysCorrect {
                stats.screen_hits += 1;
                stats.pruned_correct += 1;
                return BoxDecision::Pruned;
            }
            if screened {
                stats.screen_fallbacks += 1;
            }
            stats.exact_evals += 1;
            let nv = current.to_vector();
            if self.excluded.contains(&nv) {
                return BoxDecision::Pruned;
            }
            return match exact::witness(self.net, self.x, self.label, &nv)
                .expect("widths validated at query entry")
            {
                Some(ce) => BoxDecision::PointCounterexample(ce),
                None => BoxDecision::Pruned,
            };
        }

        // Last tier: exact propagation when no screen could decide.
        if screened {
            if verdict == BoxVerdict::Unknown {
                stats.screen_fallbacks += 1;
            } else {
                stats.screen_hits += 1;
            }
        }
        if verdict == BoxVerdict::Unknown {
            let enclosure = output_intervals(self.net, self.x, current)
                .expect("widths validated at query entry");
            verdict = classify_box(&enclosure, self.label);
        }

        match verdict {
            BoxVerdict::AlwaysCorrect => {
                stats.pruned_correct += 1;
                BoxDecision::Pruned
            }
            BoxVerdict::AlwaysWrong => {
                stats.proved_wrong += 1;
                // Every grid point misclassifies; emit the first fresh one.
                match first_not_excluded(current, self.excluded) {
                    Some(nv) => {
                        let ce = exact::witness(self.net, self.x, self.label, &nv)
                            .expect("widths validated at query entry")
                            .expect("interval proof of misclassification is sound");
                        BoxDecision::UniformWrong(ce)
                    }
                    // Entire box already extracted — nothing fresh here.
                    None => BoxDecision::Pruned,
                }
            }
            BoxVerdict::Unknown => {
                stats.splits += 1;
                let (a, b) = current.split().expect("non-point boxes split");
                BoxDecision::Split(a, b)
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Serial engine
// ---------------------------------------------------------------------------

fn check_serial(ctx: &QueryContext<'_>, region: &NoiseRegion) -> (RegionOutcome, BabStats) {
    let mut stats = BabStats::default();
    // DFS over sub-boxes; LIFO keeps memory at O(depth · nodes).
    let mut stack = vec![region.clone()];

    while let Some(current) = stack.pop() {
        stats.boxes_visited += 1;
        match ctx.decide_box(&current, &mut stats) {
            BoxDecision::Pruned => {}
            BoxDecision::PointCounterexample(ce) | BoxDecision::UniformWrong(ce) => {
                return (RegionOutcome::Counterexample(ce), stats);
            }
            BoxDecision::Split(a, b) => {
                // Push the right half first so the left (more-negative)
                // half is explored first — deterministic CE order.
                stack.push(b);
                stack.push(a);
            }
        }
    }
    (RegionOutcome::Robust, stats)
}

// ---------------------------------------------------------------------------
// Parallel engine (DESIGN.md §7)
// ---------------------------------------------------------------------------

/// A box plus its DFS path from the root (`0` = left child, `1` = right).
///
/// Decided boxes are leaves of the explored tree, so their paths are
/// prefix-free and lexicographic path order is exactly serial DFS
/// pre-order — the key to deterministic first-counterexample semantics.
struct Work {
    region: NoiseRegion,
    path: Vec<u8>,
}

/// Shared state of one parallel region check.
struct ParallelSearch {
    /// Steal pool: idle workers pop from here; busy workers donate the
    /// sibling of every split while the pool runs low.
    pool: Mutex<Vec<Work>>,
    /// Parks idle workers; notified when work arrives, when the last box
    /// completes, and when a sibling worker panics.
    available: Condvar,
    /// Boxes queued or in flight; `0` means the whole tree is explored.
    pending: AtomicUsize,
    /// Set when a worker panics so its siblings stop instead of waiting
    /// forever on `pending` (the dying worker can no longer decrement it).
    abort: AtomicBool,
    /// Best (lexicographically-first-path) counterexample found so far.
    best: Mutex<Option<(Vec<u8>, exact::Counterexample)>>,
    /// Per-worker stats, merged once at each worker's exit.
    stats: Mutex<BabStats>,
}

impl ParallelSearch {
    /// Records a candidate CE; keeps the smaller path on conflict.
    fn offer(&self, path: Vec<u8>, ce: exact::Counterexample) {
        let mut best = self.best.lock().expect("search mutex poisoned");
        match &*best {
            Some((existing, _)) if *existing <= path => {}
            _ => *best = Some((path, ce)),
        }
    }

    /// `true` once `path` can no longer influence the outcome: a candidate
    /// with a smaller (or equal-prefix) path already exists.
    ///
    /// A candidate only *loses* to boxes with strictly smaller paths, so
    /// anything ≥ the current best path is dead work.
    fn is_dead(&self, path: &[u8]) -> bool {
        let best = self.best.lock().expect("search mutex poisoned");
        matches!(&*best, Some((winning, _)) if winning.as_slice() <= path)
    }

    /// Marks one box fully processed; wakes every parked worker when it
    /// was the last (taking the pool lock first so no waiter can miss the
    /// notification between its predicate check and its `wait`).
    fn finish_box(&self) {
        if self.pending.fetch_sub(1, AtomicOrdering::AcqRel) == 1 {
            let _pool = self.pool.lock().expect("search mutex poisoned");
            self.available.notify_all();
        }
    }
}

/// Raises the search's abort flag if the owning worker unwinds, so sibling
/// workers exit their idle wait instead of hanging on a `pending` count
/// that can no longer reach zero; `std::thread::scope` then joins everyone
/// and propagates the original panic.
struct AbortOnPanic<'a>(&'a ParallelSearch);

impl Drop for AbortOnPanic<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.abort.store(true, AtomicOrdering::Release);
            self.0.available.notify_all();
        }
    }
}

fn check_parallel(
    ctx: &QueryContext<'_>,
    region: &NoiseRegion,
    threads: usize,
) -> (RegionOutcome, BabStats) {
    let search = ParallelSearch {
        pool: Mutex::new(vec![Work {
            region: region.clone(),
            path: Vec::new(),
        }]),
        available: Condvar::new(),
        pending: AtomicUsize::new(1),
        abort: AtomicBool::new(false),
        best: Mutex::new(None),
        stats: Mutex::new(BabStats::default()),
    };
    // Keep roughly two stealable boxes per worker in the pool; beyond that
    // splits stay in the worker's private stack.
    let pool_target = threads * 2;

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| worker(ctx, &search, pool_target));
        }
    });

    let stats = *search.stats.lock().expect("search mutex poisoned");
    let best = search.best.into_inner().expect("search mutex poisoned");
    match best {
        Some((_, ce)) => (RegionOutcome::Counterexample(ce), stats),
        None => (RegionOutcome::Robust, stats),
    }
}

fn worker(ctx: &QueryContext<'_>, search: &ParallelSearch, pool_target: usize) {
    let _abort_guard = AbortOnPanic(search);
    let mut local: Vec<Work> = Vec::new();
    let mut stats = BabStats::default();
    'work: loop {
        let work = match local.pop() {
            Some(w) => w,
            None => {
                // Park on the pool until work, completion, or abort.
                let mut pool = search.pool.lock().expect("search mutex poisoned");
                loop {
                    if search.abort.load(AtomicOrdering::Acquire) {
                        break 'work;
                    }
                    if let Some(w) = pool.pop() {
                        break w;
                    }
                    if search.pending.load(AtomicOrdering::Acquire) == 0 {
                        break 'work;
                    }
                    pool = search.available.wait(pool).expect("search mutex poisoned");
                }
            }
        };

        if search.abort.load(AtomicOrdering::Acquire) {
            break;
        }
        if search.is_dead(&work.path) {
            // Nothing in this subtree can beat the current best CE.
            search.finish_box();
            continue;
        }

        stats.boxes_visited += 1;
        match ctx.decide_box(&work.region, &mut stats) {
            BoxDecision::Pruned => {}
            BoxDecision::PointCounterexample(ce) | BoxDecision::UniformWrong(ce) => {
                search.offer(work.path.clone(), ce);
            }
            BoxDecision::Split(a, b) => {
                let mut left_path = work.path.clone();
                left_path.push(0);
                let mut right_path = work.path;
                right_path.push(1);
                search.pending.fetch_add(1, AtomicOrdering::AcqRel);
                let right = Work {
                    region: b,
                    path: right_path,
                };
                // Donate the right half when the pool runs low so idle
                // workers always find food; keep it local otherwise.
                {
                    let mut pool = search.pool.lock().expect("search mutex poisoned");
                    if pool.len() < pool_target {
                        pool.push(right);
                        search.available.notify_one();
                    } else {
                        drop(pool);
                        local.push(right);
                    }
                }
                local.push(Work {
                    region: a,
                    path: left_path,
                });
                // The parent box is consumed but two children were added:
                // net pending change is +1, done above.
                continue;
            }
        }
        search.finish_box();
    }
    search
        .stats
        .lock()
        .expect("search mutex poisoned")
        .merge(&stats);
}

#[cfg(test)]
mod tests {
    use super::*;
    use fannet_nn::{Activation, DenseLayer, Readout};
    use fannet_tensor::Matrix;

    fn r(n: i128) -> Rational {
        Rational::from_integer(n)
    }

    fn comparator() -> Network<Rational> {
        Network::new(
            vec![DenseLayer::new(
                Matrix::from_rows(vec![vec![r(1), r(0)], vec![r(0), r(1)]]).unwrap(),
                vec![r(0), r(0)],
                Activation::Identity,
            )
            .unwrap()],
            Readout::MaxPool,
        )
        .unwrap()
    }

    /// 2-3-2 ReLU network with interesting nonlinearity.
    fn relu_net() -> Network<Rational> {
        let hidden = DenseLayer::new(
            Matrix::from_rows(vec![vec![r(2), r(-1)], vec![r(-1), r(2)], vec![r(1), r(1)]])
                .unwrap(),
            vec![r(-10), r(-10), r(0)],
            Activation::ReLU,
        )
        .unwrap();
        let output = DenseLayer::new(
            Matrix::from_rows(vec![vec![r(1), r(0), r(1)], vec![r(0), r(1), r(1)]]).unwrap(),
            vec![r(0), r(0)],
            Activation::Identity,
        )
        .unwrap();
        Network::new(vec![hidden, output], Readout::MaxPool).unwrap()
    }

    /// Every configuration the cross-validation invariants quantify over.
    fn all_configs() -> Vec<CheckerConfig> {
        vec![
            CheckerConfig::serial_exact(),
            CheckerConfig::screened(),
            CheckerConfig::zonotope(),
            CheckerConfig::cascade(),
            CheckerConfig::serial_exact().with_threads(4),
            CheckerConfig::screened().with_threads(4),
            CheckerConfig::cascade().with_threads(4),
        ]
    }

    #[test]
    fn robust_when_gap_exceeds_noise() {
        let net = comparator();
        let x = [r(100), r(80)];
        for config in all_configs() {
            let (out, stats) =
                find_counterexample_with(&net, &x, 0, &NoiseRegion::symmetric(5, 2), &config)
                    .unwrap();
            assert!(out.is_robust(), "{config:?}");
            assert!(stats.boxes_visited >= 1);
        }
    }

    #[test]
    fn finds_counterexample_at_boundary() {
        let net = comparator();
        let x = [r(100), r(80)];
        // x0·(1-11%) = 89 < x1·(1+11%) = 88.8? 89 > 88.8 — still correct.
        // Need -10% & +13%... compute: flipping needs x0(100+p0) < x1(100+p1)
        // ⇔ 100(100+p0) < 80(100+p1). At p0=-11, p1=+11: 8900 vs 8880 → ok.
        // At p0=-12, p1=+12: 8800 vs 8960 → flip. So Δ=12 flips, Δ=11 not.
        for config in all_configs() {
            let (out11, _) =
                find_counterexample_with(&net, &x, 0, &NoiseRegion::symmetric(11, 2), &config)
                    .unwrap();
            assert!(out11.is_robust(), "±11% must be safe for {config:?}");
            let (out12, _) =
                find_counterexample_with(&net, &x, 0, &NoiseRegion::symmetric(12, 2), &config)
                    .unwrap();
            let ce = out12.counterexample().expect("±12% must flip");
            assert_eq!(ce.expected, 0);
            assert_eq!(ce.predicted, 1);
            assert!(ce.noise.max_abs() <= 12);
            // Verify the witness exactly.
            assert_ne!(
                exact::classify_noisy(&net, &x, &ce.noise).unwrap(),
                0,
                "witness must really misclassify"
            );
        }
    }

    #[test]
    fn agrees_with_exhaustive_oracle() {
        let net = relu_net();
        let inputs = [
            [r(12), r(5)],
            [r(5), r(12)],
            [r(9), r(8)],
            [r(-3), r(4)],
            [r(30), r(29)],
        ];
        for x in &inputs {
            let label = net.classify(x).unwrap();
            for delta in [0, 1, 2, 4, 8] {
                let region = NoiseRegion::symmetric(delta, 2);
                let (exh_out, _) =
                    check_region_exhaustive(&net, x, label, &region, &ExclusionSet::new()).unwrap();
                for config in all_configs() {
                    let (bab_out, _) =
                        find_counterexample_with(&net, x, label, &region, &config).unwrap();
                    assert_eq!(
                        bab_out.is_robust(),
                        exh_out.is_robust(),
                        "disagreement at x={x:?} delta={delta} config={config:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn all_configs_return_identical_counterexamples() {
        let net = relu_net();
        // Inputs chosen to have counterexamples at modest deltas.
        for x in [[r(9), r(8)], [r(30), r(29)], [r(12), r(5)]] {
            let label = net.classify(&x).unwrap();
            for delta in [3, 6, 10] {
                let region = NoiseRegion::symmetric(delta, 2);
                let (baseline, _) = find_counterexample(&net, &x, label, &region).unwrap();
                for config in all_configs() {
                    let (out, _) =
                        find_counterexample_with(&net, &x, label, &region, &config).unwrap();
                    assert_eq!(
                        baseline.counterexample().map(|c| &c.noise),
                        out.counterexample().map(|c| &c.noise),
                        "CE identity must not depend on {config:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn screening_stats_are_recorded() {
        let net = relu_net();
        let x = [r(9), r(8)];
        let label = net.classify(&x).unwrap();
        let region = NoiseRegion::symmetric(6, 2);
        let (_, stats) =
            find_counterexample_with(&net, &x, label, &region, &CheckerConfig::screened()).unwrap();
        assert!(
            stats.screen_hits + stats.screen_fallbacks > 0,
            "screening must have been exercised: {stats:?}"
        );
        assert!(stats.screen_hit_rate().is_some());
        // The serial-exact baseline records no screening activity.
        let (_, base) = find_counterexample(&net, &x, label, &region).unwrap();
        assert_eq!(base.screen_hits, 0);
        assert_eq!(base.screen_fallbacks, 0);
        assert_eq!(base.screen_hit_rate(), None);
    }

    #[test]
    fn exclusion_forces_fresh_counterexamples() {
        let net = comparator();
        let x = [r(100), r(99)];
        let region = NoiseRegion::symmetric(3, 2);
        for config in all_configs() {
            let mut excluded = ExclusionSet::new();
            let mut found = Vec::new();
            loop {
                let (out, _) = check_region_with(&net, &x, 0, &region, &excluded, &config).unwrap();
                match out {
                    RegionOutcome::Counterexample(ce) => {
                        assert!(
                            !found.contains(&ce.noise),
                            "duplicate counterexample {} under {config:?}",
                            ce.noise
                        );
                        excluded.insert(ce.noise.clone());
                        found.push(ce.noise);
                    }
                    RegionOutcome::Robust => break,
                }
            }
            // Cross-check the count against brute force.
            let brute = region
                .iter_points()
                .filter(|nv| exact::classify_noisy(&net, &x, nv).unwrap() != 0)
                .count();
            assert_eq!(found.len(), brute, "P3 loop must enumerate every CE once");
            assert!(brute > 0, "test needs a non-trivial CE population");
        }
    }

    #[test]
    fn zero_noise_region_matches_plain_classification() {
        let net = relu_net();
        let x = [r(9), r(8)];
        let label = net.classify(&x).unwrap();
        let (out, stats) =
            find_counterexample(&net, &x, label, &NoiseRegion::symmetric(0, 2)).unwrap();
        assert!(out.is_robust());
        assert_eq!(stats.exact_evals, 1);
    }

    #[test]
    fn wrong_label_gives_immediate_counterexample() {
        let net = comparator();
        let x = [r(100), r(80)];
        // Asking for label 1 (wrong) — the zero vector itself is a CE.
        for config in all_configs() {
            let (out, _) =
                find_counterexample_with(&net, &x, 1, &NoiseRegion::symmetric(0, 2), &config)
                    .unwrap();
            let ce = out
                .counterexample()
                .expect("zero noise already misclassifies");
            assert_eq!(ce.noise, NoiseVector::zero(2));
        }
    }

    #[test]
    fn stats_reflect_search_structure() {
        let net = relu_net();
        let x = [r(9), r(8)];
        let label = net.classify(&x).unwrap();
        let (_, stats) =
            find_counterexample(&net, &x, label, &NoiseRegion::symmetric(6, 2)).unwrap();
        // Either everything was pruned at the top or splits happened.
        assert!(stats.boxes_visited > 0);
        assert!(
            stats.pruned_correct > 0 || stats.exact_evals > 0,
            "{stats:?} shows no decisive work"
        );
        let full_grid = 13u64 * 13;
        assert!(
            stats.exact_evals < full_grid,
            "branch-and-bound should not degenerate to full enumeration ({stats:?})"
        );
    }

    #[test]
    fn deterministic_counterexample_order() {
        let net = comparator();
        let x = [r(100), r(99)];
        let region = NoiseRegion::symmetric(4, 2);
        for config in all_configs() {
            let (a, _) = find_counterexample_with(&net, &x, 0, &region, &config).unwrap();
            let (b, _) = find_counterexample_with(&net, &x, 0, &region, &config).unwrap();
            assert_eq!(
                a.counterexample().map(|c| c.noise.clone()),
                b.counterexample().map(|c| c.noise.clone()),
                "repeat runs must agree under {config:?}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "scoped thread panicked")]
    fn parallel_worker_panic_propagates_instead_of_hanging() {
        // Weights large enough that interval propagation overflows i128:
        // the first worker to touch the root box panics; the abort flag
        // must wake its siblings so the scope joins and re-raises the
        // panic (before the fix this hung with all workers spinning).
        let huge = Rational::from_integer(i128::MAX / 4);
        let net = Network::new(
            vec![DenseLayer::new(
                Matrix::from_rows(vec![vec![huge, huge], vec![huge, -huge]]).unwrap(),
                vec![Rational::ZERO, Rational::ZERO],
                Activation::Identity,
            )
            .unwrap()],
            Readout::MaxPool,
        )
        .unwrap();
        let x = [r(1 << 20), r(1 << 20)];
        let _ = find_counterexample_with(
            &net,
            &x,
            0,
            &NoiseRegion::symmetric(8, 2),
            &CheckerConfig::serial_exact().with_threads(4),
        );
    }

    #[test]
    fn stats_merge_accumulates_everything() {
        let mut a = BabStats {
            boxes_visited: 1,
            pruned_correct: 2,
            proved_wrong: 3,
            exact_evals: 4,
            splits: 5,
            screen_hits: 6,
            screen_fallbacks: 7,
            interval_hits: 8,
            interval_fallbacks: 9,
            zonotope_hits: 10,
            zonotope_fallbacks: 11,
        };
        a.merge(&a.clone());
        assert_eq!(
            a,
            BabStats {
                boxes_visited: 2,
                pruned_correct: 4,
                proved_wrong: 6,
                exact_evals: 8,
                splits: 10,
                screen_hits: 12,
                screen_fallbacks: 14,
                interval_hits: 16,
                interval_fallbacks: 18,
                zonotope_hits: 20,
                zonotope_fallbacks: 22,
            }
        );
        assert_eq!(a.interval_hit_rate(), Some(16.0 / 34.0));
        assert_eq!(a.zonotope_hit_rate(), Some(20.0 / 42.0));
        assert_eq!(BabStats::default().interval_hit_rate(), None);
        assert_eq!(BabStats::default().zonotope_hit_rate(), None);
    }

    #[test]
    fn checker_config_presets_and_env() {
        assert_eq!(CheckerConfig::serial_exact().threads, 1);
        assert_eq!(CheckerConfig::serial_exact().screening, ScreeningTier::None);
        assert!(!CheckerConfig::serial_exact().screening.is_active());
        assert_eq!(CheckerConfig::screened().threads, 1);
        assert_eq!(CheckerConfig::screened().screening, ScreeningTier::Interval);
        assert_eq!(CheckerConfig::zonotope().screening, ScreeningTier::Zonotope);
        assert_eq!(CheckerConfig::cascade().screening, ScreeningTier::Cascade);
        assert!(CheckerConfig::parallel().threads >= 1);
        assert_eq!(CheckerConfig::default(), CheckerConfig::fast());
        assert_eq!(CheckerConfig::fast().screening, ScreeningTier::Cascade);
        assert_eq!(CheckerConfig::fast().with_threads(0).threads, 1);
        assert_eq!(
            CheckerConfig::serial_exact()
                .with_screening(ScreeningTier::Zonotope)
                .screening,
            ScreeningTier::Zonotope
        );
        assert!(default_threads() >= 1);
    }

    #[test]
    fn screening_tier_names_round_trip() {
        for tier in [
            ScreeningTier::None,
            ScreeningTier::Interval,
            ScreeningTier::Zonotope,
            ScreeningTier::Cascade,
        ] {
            assert_eq!(ScreeningTier::parse(tier.name()), Ok(tier));
            assert_eq!(tier.to_string(), tier.name());
        }
        assert_eq!(
            ScreeningTier::parse(" Cascade "),
            Ok(ScreeningTier::Cascade)
        );
        assert!(ScreeningTier::parse("frobnicate")
            .unwrap_err()
            .contains("none/interval/zonotope/cascade"));
        assert!(ScreeningTier::Cascade.uses_interval());
        assert!(ScreeningTier::Cascade.uses_zonotope());
        assert!(!ScreeningTier::Interval.uses_zonotope());
        assert!(!ScreeningTier::Zonotope.uses_interval());
        assert!(!ScreeningTier::None.is_active());
    }

    #[test]
    fn per_tier_counters_record_cascade_structure() {
        let net = relu_net();
        let x = [r(9), r(8)];
        let label = net.classify(&x).unwrap();
        let region = NoiseRegion::symmetric(6, 2);
        let (_, cascade) =
            find_counterexample_with(&net, &x, label, &region, &CheckerConfig::cascade()).unwrap();
        // In a cascade the zonotope tier sees exactly the interval tier's
        // fallbacks, and the aggregate counters cover every screened box.
        assert_eq!(
            cascade.zonotope_hits + cascade.zonotope_fallbacks,
            cascade.interval_fallbacks,
            "{cascade:?}"
        );
        assert_eq!(
            cascade.screen_hits + cascade.screen_fallbacks,
            cascade.interval_hits + cascade.interval_fallbacks,
            "{cascade:?}"
        );
        // Interval-only screening records no zonotope activity…
        let (_, interval) =
            find_counterexample_with(&net, &x, label, &region, &CheckerConfig::screened()).unwrap();
        assert_eq!(interval.zonotope_hits + interval.zonotope_fallbacks, 0);
        assert!(interval.interval_hits + interval.interval_fallbacks > 0);
        // …and zonotope-only screening no interval activity.
        let (_, zono) =
            find_counterexample_with(&net, &x, label, &region, &CheckerConfig::zonotope()).unwrap();
        assert_eq!(zono.interval_hits + zono.interval_fallbacks, 0);
        assert!(zono.zonotope_hits + zono.zonotope_fallbacks > 0);
        // The serial-exact baseline records nothing.
        let (_, base) = find_counterexample(&net, &x, label, &region).unwrap();
        assert_eq!(base.interval_hits + base.zonotope_hits, 0);
        assert_eq!(base.interval_fallbacks + base.zonotope_fallbacks, 0);
    }

    #[test]
    fn collector_screened_matches_exact() {
        let net = comparator();
        let x = [r(100), r(98)];
        let region = NoiseRegion::symmetric(4, 2);
        let (plain, exhausted_a, _) =
            collect_region_counterexamples(&net, &x, 0, &region, usize::MAX).unwrap();
        let (screened, exhausted_b, stats) = collect_region_counterexamples_with(
            &net,
            &x,
            0,
            &region,
            usize::MAX,
            &CheckerConfig::screened(),
        )
        .unwrap();
        assert_eq!(exhausted_a, exhausted_b);
        let a: Vec<_> = plain.iter().map(|ce| ce.noise.clone()).collect();
        let b: Vec<_> = screened.iter().map(|ce| ce.noise.clone()).collect();
        assert_eq!(a, b, "screened collection must preserve order and content");
        assert!(stats.screen_hits + stats.screen_fallbacks > 0);
    }
}
