//! The branch-and-bound decision procedure over noise boxes.
//!
//! This is the reproduction's substitute for nuXmv's symbolic search (see
//! DESIGN.md §5). The property checked is the paper's **P2**
//! (`OCn = Sx`, the noisy output class equals the true label) for every
//! noise vector in a [`NoiseRegion`], with optional exclusion of
//! already-extracted vectors (**P3**).
//!
//! The algorithm is classic interval branch-and-bound:
//!
//! 1. propagate the region through the network
//!    ([`propagate::output_intervals`]);
//! 2. if the enclosure proves the box *always correct*, prune it (for
//!    counterexample search, a fully-correct box cannot contain any
//!    counterexample, excluded or not);
//! 3. if it proves the box *always wrong*, every grid point is a
//!    counterexample — return the lexicographically first one not in the
//!    exclusion set;
//! 4. otherwise split the widest dimension and recurse; singleton boxes are
//!    decided by exact rational evaluation ([`exact`]).
//!
//! Every verdict is exact: interval propagation is sound (step 2/3 verdicts
//! are proofs) and singleton fallback is ground truth, so the procedure is
//! **sound and complete over the integer noise grid** — the same finite
//! state space the paper's model checker explores. Completeness holds
//! because splitting strictly shrinks boxes, terminating at singletons.

use fannet_numeric::Rational;
use fannet_nn::Network;
use fannet_tensor::ShapeError;
use serde::{Deserialize, Serialize};

use crate::exact;
use crate::noise::{ExclusionSet, NoiseVector};
use crate::propagate::{classify_box, output_intervals, BoxVerdict};
use crate::region::NoiseRegion;

/// Search statistics, exposed for the checker-ablation bench (A2) and for
/// state-space-growth reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BabStats {
    /// Boxes taken off the work stack.
    pub boxes_visited: u64,
    /// Boxes proven uniformly correct by interval propagation.
    pub pruned_correct: u64,
    /// Boxes proven uniformly wrong by interval propagation.
    pub proved_wrong: u64,
    /// Singleton boxes decided by exact evaluation.
    pub exact_evals: u64,
    /// Splits performed.
    pub splits: u64,
}

/// Outcome of a region check.
#[derive(Debug, Clone, PartialEq)]
pub enum RegionOutcome {
    /// P2 holds: no noise vector in the region (outside the exclusion set)
    /// misclassifies the input. This is a *proof*.
    Robust,
    /// A fresh counterexample violating P2.
    Counterexample(exact::Counterexample),
}

impl RegionOutcome {
    /// `true` for [`RegionOutcome::Robust`].
    #[must_use]
    pub fn is_robust(&self) -> bool {
        matches!(self, RegionOutcome::Robust)
    }

    /// The counterexample, if any.
    #[must_use]
    pub fn counterexample(&self) -> Option<&exact::Counterexample> {
        match self {
            RegionOutcome::Robust => None,
            RegionOutcome::Counterexample(ce) => Some(ce),
        }
    }
}

/// Checks property P2 on `region`: does any noise vector (not in
/// `excluded`) flip the classification of `x` away from `label`?
///
/// Returns the outcome together with search statistics.
///
/// # Errors
///
/// Returns [`ShapeError`] if input/region/network widths disagree.
///
/// # Panics
///
/// Panics if the network is not piecewise-linear or `label` is out of
/// range.
///
/// # Examples
///
/// ```
/// use fannet_numeric::Rational;
/// use fannet_nn::{Activation, DenseLayer, Network, Readout};
/// use fannet_tensor::Matrix;
/// use fannet_verify::{bab, noise::ExclusionSet, region::NoiseRegion};
///
/// // Identity comparator: label 0 iff x0 ≥ x1.
/// let r = |n: i128| Rational::from_integer(n);
/// let net = Network::new(vec![DenseLayer::new(
///     Matrix::from_rows(vec![vec![r(1), r(0)], vec![r(0), r(1)]])?,
///     vec![r(0), r(0)],
///     Activation::Identity,
/// )?], Readout::MaxPool)?;
///
/// let x = [r(100), r(82)];
/// // Flipping needs 100·(100−Δ) < 82·(100+Δ), i.e. Δ ≥ 10.
/// let (safe, _) = bab::check_region(&net, &x, 0, &NoiseRegion::symmetric(9, 2), &ExclusionSet::new())?;
/// assert!(safe.is_robust());
/// let (flipped, _) = bab::check_region(&net, &x, 0, &NoiseRegion::symmetric(10, 2), &ExclusionSet::new())?;
/// assert!(!flipped.is_robust());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn check_region(
    net: &Network<Rational>,
    x: &[Rational],
    label: usize,
    region: &NoiseRegion,
    excluded: &ExclusionSet,
) -> Result<(RegionOutcome, BabStats), ShapeError> {
    assert!(label < net.outputs(), "label {label} out of range");
    let mut stats = BabStats::default();
    // DFS over sub-boxes; LIFO keeps memory at O(depth · nodes).
    let mut stack = vec![region.clone()];

    while let Some(current) = stack.pop() {
        stats.boxes_visited += 1;

        if current.is_point() {
            stats.exact_evals += 1;
            let nv = current.to_vector();
            if excluded.contains(&nv) {
                continue;
            }
            if let Some(ce) = exact::witness(net, x, label, &nv)? {
                return Ok((RegionOutcome::Counterexample(ce), stats));
            }
            continue;
        }

        let enclosure = output_intervals(net, x, &current)?;
        match classify_box(&enclosure, label) {
            BoxVerdict::AlwaysCorrect => {
                stats.pruned_correct += 1;
            }
            BoxVerdict::AlwaysWrong => {
                stats.proved_wrong += 1;
                // Every grid point misclassifies; emit the first fresh one.
                if let Some(nv) = first_not_excluded(&current, excluded) {
                    let ce = exact::witness(net, x, label, &nv)?
                        .expect("interval proof of misclassification is sound");
                    return Ok((RegionOutcome::Counterexample(ce), stats));
                }
                // Entire box already extracted — nothing fresh here.
            }
            BoxVerdict::Unknown => {
                stats.splits += 1;
                let (a, b) = current.split().expect("non-point boxes split");
                // Push the right half first so the left (more-negative)
                // half is explored first — deterministic CE order.
                stack.push(b);
                stack.push(a);
            }
        }
    }
    Ok((RegionOutcome::Robust, stats))
}

/// Convenience wrapper: P2 without any exclusions.
///
/// # Errors
///
/// Returns [`ShapeError`] if widths disagree.
pub fn find_counterexample(
    net: &Network<Rational>,
    x: &[Rational],
    label: usize,
    region: &NoiseRegion,
) -> Result<(RegionOutcome, BabStats), ShapeError> {
    check_region(net, x, label, region, &ExclusionSet::new())
}

/// Exhaustive grid enumeration of the same property — exponentially slower
/// but trivially correct. Exists as the baseline for the checker-ablation
/// bench (A2) and as a cross-check oracle in tests.
///
/// # Errors
///
/// Returns [`ShapeError`] if widths disagree.
pub fn check_region_exhaustive(
    net: &Network<Rational>,
    x: &[Rational],
    label: usize,
    region: &NoiseRegion,
    excluded: &ExclusionSet,
) -> Result<(RegionOutcome, BabStats), ShapeError> {
    let mut stats = BabStats::default();
    for nv in region.iter_points() {
        stats.exact_evals += 1;
        if excluded.contains(&nv) {
            continue;
        }
        if let Some(ce) = exact::witness(net, x, label, &nv)? {
            return Ok((RegionOutcome::Counterexample(ce), stats));
        }
    }
    Ok((RegionOutcome::Robust, stats))
}

fn first_not_excluded(region: &NoiseRegion, excluded: &ExclusionSet) -> Option<NoiseVector> {
    // The exclusion set is finite, so at most |excluded| + 1 probes.
    region.iter_points().find(|nv| !excluded.contains(nv))
}

/// Collects up to `cap` distinct counterexamples in a **single**
/// branch-and-bound pass.
///
/// Semantically equivalent to running the P3 restart loop
/// ([`crate::enumerate::CounterexampleEnumerator`]) `cap` times, but each
/// proven-safe box is pruned once instead of once per restart — the
/// asymptotic difference between `O(search)` and `O(cap · search)`. The
/// returned flag is `true` when the region was exhausted (every
/// misclassifying vector found before the cap).
///
/// # Errors
///
/// Returns [`ShapeError`] if input/region/network widths disagree.
///
/// # Panics
///
/// Panics if the network is not piecewise-linear, `label` is out of range,
/// or `cap == 0`.
pub fn collect_region_counterexamples(
    net: &Network<Rational>,
    x: &[Rational],
    label: usize,
    region: &NoiseRegion,
    cap: usize,
) -> Result<(Vec<exact::Counterexample>, bool, BabStats), ShapeError> {
    assert!(label < net.outputs(), "label {label} out of range");
    assert!(cap > 0, "cap must be positive");
    let mut stats = BabStats::default();
    let mut found = Vec::new();
    let mut stack = vec![region.clone()];

    while let Some(current) = stack.pop() {
        stats.boxes_visited += 1;

        if current.is_point() {
            stats.exact_evals += 1;
            if let Some(ce) = exact::witness(net, x, label, &current.to_vector())? {
                found.push(ce);
                if found.len() == cap {
                    return Ok((found, false, stats));
                }
            }
            continue;
        }

        let enclosure = output_intervals(net, x, &current)?;
        match classify_box(&enclosure, label) {
            BoxVerdict::AlwaysCorrect => {
                stats.pruned_correct += 1;
            }
            BoxVerdict::AlwaysWrong => {
                stats.proved_wrong += 1;
                for nv in current.iter_points() {
                    let ce = exact::witness(net, x, label, &nv)?
                        .expect("interval proof of misclassification is sound");
                    found.push(ce);
                    if found.len() == cap {
                        return Ok((found, false, stats));
                    }
                }
            }
            BoxVerdict::Unknown => {
                stats.splits += 1;
                let (a, b) = current.split().expect("non-point boxes split");
                stack.push(b);
                stack.push(a);
            }
        }
    }
    Ok((found, true, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fannet_nn::{Activation, DenseLayer, Readout};
    use fannet_tensor::Matrix;

    fn r(n: i128) -> Rational {
        Rational::from_integer(n)
    }

    fn comparator() -> Network<Rational> {
        Network::new(
            vec![DenseLayer::new(
                Matrix::from_rows(vec![vec![r(1), r(0)], vec![r(0), r(1)]]).unwrap(),
                vec![r(0), r(0)],
                Activation::Identity,
            )
            .unwrap()],
            Readout::MaxPool,
        )
        .unwrap()
    }

    /// 2-3-2 ReLU network with interesting nonlinearity.
    fn relu_net() -> Network<Rational> {
        let hidden = DenseLayer::new(
            Matrix::from_rows(vec![
                vec![r(2), r(-1)],
                vec![r(-1), r(2)],
                vec![r(1), r(1)],
            ])
            .unwrap(),
            vec![r(-10), r(-10), r(0)],
            Activation::ReLU,
        )
        .unwrap();
        let output = DenseLayer::new(
            Matrix::from_rows(vec![vec![r(1), r(0), r(1)], vec![r(0), r(1), r(1)]]).unwrap(),
            vec![r(0), r(0)],
            Activation::Identity,
        )
        .unwrap();
        Network::new(vec![hidden, output], Readout::MaxPool).unwrap()
    }

    #[test]
    fn robust_when_gap_exceeds_noise() {
        let net = comparator();
        let x = [r(100), r(80)];
        let (out, stats) =
            find_counterexample(&net, &x, 0, &NoiseRegion::symmetric(5, 2)).unwrap();
        assert!(out.is_robust());
        assert!(stats.boxes_visited >= 1);
    }

    #[test]
    fn finds_counterexample_at_boundary() {
        let net = comparator();
        let x = [r(100), r(80)];
        // x0·(1-11%) = 89 < x1·(1+11%) = 88.8? 89 > 88.8 — still correct.
        // Need -10% & +13%... compute: flipping needs x0(100+p0) < x1(100+p1)
        // ⇔ 100(100+p0) < 80(100+p1). At p0=-11, p1=+11: 8900 vs 8880 → ok.
        // At p0=-12, p1=+12: 8800 vs 8960 → flip. So Δ=12 flips, Δ=11 not.
        let (out11, _) =
            find_counterexample(&net, &x, 0, &NoiseRegion::symmetric(11, 2)).unwrap();
        assert!(out11.is_robust(), "±11% must be safe for this input");
        let (out12, _) =
            find_counterexample(&net, &x, 0, &NoiseRegion::symmetric(12, 2)).unwrap();
        let ce = out12.counterexample().expect("±12% must flip");
        assert_eq!(ce.expected, 0);
        assert_eq!(ce.predicted, 1);
        assert!(ce.noise.max_abs() <= 12);
        // Verify the witness exactly.
        assert_ne!(
            exact::classify_noisy(&net, &x, &ce.noise).unwrap(),
            0,
            "witness must really misclassify"
        );
    }

    #[test]
    fn agrees_with_exhaustive_oracle() {
        let net = relu_net();
        let inputs = [
            [r(12), r(5)],
            [r(5), r(12)],
            [r(9), r(8)],
            [r(-3), r(4)],
            [r(30), r(29)],
        ];
        for x in &inputs {
            let label = net.classify(x).unwrap();
            for delta in [0, 1, 2, 4, 8] {
                let region = NoiseRegion::symmetric(delta, 2);
                let (bab_out, _) =
                    find_counterexample(&net, x, label, &region).unwrap();
                let (exh_out, _) = check_region_exhaustive(
                    &net,
                    x,
                    label,
                    &region,
                    &ExclusionSet::new(),
                )
                .unwrap();
                assert_eq!(
                    bab_out.is_robust(),
                    exh_out.is_robust(),
                    "disagreement at x={x:?} delta={delta}"
                );
            }
        }
    }

    #[test]
    fn exclusion_forces_fresh_counterexamples() {
        let net = comparator();
        let x = [r(100), r(99)];
        let region = NoiseRegion::symmetric(3, 2);
        let mut excluded = ExclusionSet::new();
        let mut found = Vec::new();
        loop {
            let (out, _) = check_region(&net, &x, 0, &region, &excluded).unwrap();
            match out {
                RegionOutcome::Counterexample(ce) => {
                    assert!(
                        !found.contains(&ce.noise),
                        "duplicate counterexample {}",
                        ce.noise
                    );
                    excluded.insert(ce.noise.clone());
                    found.push(ce.noise);
                }
                RegionOutcome::Robust => break,
            }
        }
        // Cross-check the count against brute force.
        let brute = region
            .iter_points()
            .filter(|nv| exact::classify_noisy(&net, &x, nv).unwrap() != 0)
            .count();
        assert_eq!(found.len(), brute, "P3 loop must enumerate every CE once");
        assert!(brute > 0, "test needs a non-trivial CE population");
    }

    #[test]
    fn zero_noise_region_matches_plain_classification() {
        let net = relu_net();
        let x = [r(9), r(8)];
        let label = net.classify(&x).unwrap();
        let (out, stats) =
            find_counterexample(&net, &x, label, &NoiseRegion::symmetric(0, 2)).unwrap();
        assert!(out.is_robust());
        assert_eq!(stats.exact_evals, 1);
    }

    #[test]
    fn wrong_label_gives_immediate_counterexample() {
        let net = comparator();
        let x = [r(100), r(80)];
        // Asking for label 1 (wrong) — the zero vector itself is a CE.
        let (out, _) =
            find_counterexample(&net, &x, 1, &NoiseRegion::symmetric(0, 2)).unwrap();
        let ce = out.counterexample().expect("zero noise already misclassifies");
        assert_eq!(ce.noise, NoiseVector::zero(2));
    }

    #[test]
    fn stats_reflect_search_structure() {
        let net = relu_net();
        let x = [r(9), r(8)];
        let label = net.classify(&x).unwrap();
        let (_, stats) =
            find_counterexample(&net, &x, label, &NoiseRegion::symmetric(6, 2)).unwrap();
        // Either everything was pruned at the top or splits happened.
        assert!(stats.boxes_visited > 0);
        assert!(
            stats.pruned_correct > 0 || stats.exact_evals > 0,
            "{stats:?} shows no decisive work"
        );
        let full_grid = 13u64 * 13;
        assert!(
            stats.exact_evals < full_grid,
            "branch-and-bound should not degenerate to full enumeration ({stats:?})"
        );
    }

    #[test]
    fn deterministic_counterexample_order() {
        let net = comparator();
        let x = [r(100), r(99)];
        let region = NoiseRegion::symmetric(4, 2);
        let (a, _) = find_counterexample(&net, &x, 0, &region).unwrap();
        let (b, _) = find_counterexample(&net, &x, 0, &region).unwrap();
        assert_eq!(
            a.counterexample().map(|c| c.noise.clone()),
            b.counterexample().map(|c| c.noise.clone())
        );
    }
}
