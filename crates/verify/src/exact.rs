//! Exact rational evaluation of noisy inputs — the ground truth the
//! branch-and-bound engine falls back to at singleton boxes.

use fannet_nn::Network;
use fannet_numeric::Rational;
use fannet_tensor::ShapeError;
use serde::{Deserialize, Serialize};

use crate::noise::NoiseVector;

/// A concrete, exactly-evaluated misclassification witness: FANNet's
/// counterexample object.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counterexample {
    /// The adversarial noise vector (integer percents).
    pub noise: NoiseVector,
    /// The perturbed input the network saw.
    pub noisy_input: Vec<Rational>,
    /// Exact output activations under the perturbed input.
    pub outputs: Vec<Rational>,
    /// The (wrong) label the network predicted.
    pub predicted: usize,
    /// The true label `Sx`.
    pub expected: usize,
}

impl std::fmt::Display for Counterexample {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "noise {} flips L{} -> L{}",
            self.noise, self.expected, self.predicted
        )
    }
}

/// Exactly classifies `x` under noise `nv`.
///
/// # Errors
///
/// Returns [`ShapeError`] on width mismatch.
pub fn classify_noisy(
    net: &Network<Rational>,
    x: &[Rational],
    nv: &NoiseVector,
) -> Result<usize, ShapeError> {
    if nv.len() != x.len() {
        return Err(ShapeError::new(format!(
            "noise width {} against input width {}",
            nv.len(),
            x.len()
        )));
    }
    net.classify(&nv.apply(x))
}

/// Evaluates `x` under `nv` and, when misclassified, builds the full
/// [`Counterexample`] record; `None` when classified correctly.
///
/// # Errors
///
/// Returns [`ShapeError`] on width mismatch.
pub fn witness(
    net: &Network<Rational>,
    x: &[Rational],
    label: usize,
    nv: &NoiseVector,
) -> Result<Option<Counterexample>, ShapeError> {
    if nv.len() != x.len() {
        return Err(ShapeError::new(format!(
            "noise width {} against input width {}",
            nv.len(),
            x.len()
        )));
    }
    let noisy_input = nv.apply(x);
    let outputs = net.forward(&noisy_input)?;
    let predicted = net.readout_label(&outputs);
    if predicted == label {
        Ok(None)
    } else {
        Ok(Some(Counterexample {
            noise: nv.clone(),
            noisy_input,
            outputs,
            predicted,
            expected: label,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fannet_nn::{Activation, DenseLayer, Readout};
    use fannet_tensor::Matrix;

    fn r(n: i128) -> Rational {
        Rational::from_integer(n)
    }

    /// Classifier: label 0 iff x0 ≥ x1 (single identity layer).
    fn comparator() -> Network<Rational> {
        let out = DenseLayer::new(
            Matrix::from_rows(vec![vec![r(1), r(0)], vec![r(0), r(1)]]).unwrap(),
            vec![r(0), r(0)],
            Activation::Identity,
        )
        .unwrap();
        Network::new(vec![out], Readout::MaxPool).unwrap()
    }

    #[test]
    fn classify_noisy_changes_with_noise() {
        let net = comparator();
        let x = [r(100), r(95)];
        assert_eq!(classify_noisy(&net, &x, &NoiseVector::zero(2)).unwrap(), 0);
        // -10% on x0 pushes it below x1.
        assert_eq!(
            classify_noisy(&net, &x, &NoiseVector::new(vec![-10, 0])).unwrap(),
            1
        );
    }

    #[test]
    fn witness_none_when_correct() {
        let net = comparator();
        let x = [r(100), r(95)];
        assert!(witness(&net, &x, 0, &NoiseVector::zero(2))
            .unwrap()
            .is_none());
    }

    #[test]
    fn witness_records_full_evidence() {
        let net = comparator();
        let x = [r(100), r(95)];
        let nv = NoiseVector::new(vec![-10, 0]);
        let ce = witness(&net, &x, 0, &nv).unwrap().expect("misclassified");
        assert_eq!(ce.noise, nv);
        assert_eq!(ce.noisy_input, vec![r(90), r(95)]);
        assert_eq!(ce.outputs, vec![r(90), r(95)]);
        assert_eq!(ce.predicted, 1);
        assert_eq!(ce.expected, 0);
        assert_eq!(ce.to_string(), "noise [-10%, +0%] flips L0 -> L1");
    }

    #[test]
    fn tie_breaks_toward_lower_index() {
        let net = comparator();
        let x = [r(100), r(100)];
        // Exact tie → label 0 by the paper's L0 ≥ L1 → L0 rule.
        assert_eq!(classify_noisy(&net, &x, &NoiseVector::zero(2)).unwrap(), 0);
        // So label 0 has no witness at the tie, but label 1 does.
        assert!(witness(&net, &x, 0, &NoiseVector::zero(2))
            .unwrap()
            .is_none());
        assert!(witness(&net, &x, 1, &NoiseVector::zero(2))
            .unwrap()
            .is_some());
    }

    #[test]
    fn width_mismatch_rejected() {
        let net = comparator();
        let x = [r(1), r(2)];
        assert!(classify_noisy(&net, &x, &NoiseVector::zero(3)).is_err());
        assert!(witness(&net, &x, 0, &NoiseVector::zero(1)).is_err());
    }
}
