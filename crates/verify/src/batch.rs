//! Batched float screening: K boxes per propagation pass
//! (DESIGN.md §16).
//!
//! [`FloatShadow::output_intervals`] walks the weight matrix once *per
//! box*; a branch-and-bound frontier holds many sibling boxes of the
//! same query, so the weights are re-streamed K times for work that
//! differs only in the input enclosure. [`BatchFloatShadow`] transposes
//! the loop: activations live in a [`LaneMatrix`] (one row per neuron,
//! one lane per box, contiguous `(lo, hi)` `f64` planes) and each layer
//! is one cache-friendly, auto-vectorizable matrix pass over all K
//! lanes.
//!
//! Every lane applies the exact scalar [`FloatInterval`] operation
//! sequence (see `fannet_numeric::lanes` for the rounding-charge
//! audit), so batched outputs are **bitwise equal** to the scalar
//! shadow's — verdicts, witnesses and search stats stay bit-identical,
//! which is what lets the cascade adopt batching without perturbing any
//! golden output.

use fannet_nn::{Activation, Network};
use fannet_numeric::{FloatInterval, Rational};
use fannet_tensor::lanes::{affine_lane_pass, relu_lane_pass};
use fannet_tensor::LaneMatrix;

use crate::propagate::{classify_box_float, float_factor, BoxVerdict, FloatShadow};
use crate::region::NoiseRegion;

/// How many boxes one batched pass carries. Sized so a batch of lanes
/// for the case-study layers stays within L1 while still amortizing the
/// weight stream; the search loops gather up to this many frontier
/// boxes per [`BatchFloatShadow::classify_batch`] call.
pub const BATCH_WIDTH: usize = 16;

/// A [`FloatShadow`] re-laid-out for batched propagation: weights
/// flattened row-major so a layer pass is one linear sweep.
#[derive(Debug, Clone)]
pub struct BatchFloatShadow {
    layers: Vec<BatchLayer>,
    inputs: usize,
}

#[derive(Debug, Clone)]
struct BatchLayer {
    /// Row-major `outputs × inputs` weight enclosures.
    weights: Vec<FloatInterval>,
    biases: Vec<FloatInterval>,
    activation: Activation,
}

/// Reusable lane buffers for batched propagation: after warm-up the
/// per-batch hot path allocates only the returned verdict vector.
#[derive(Debug, Clone, Default)]
pub struct BatchWorkspace {
    acts: LaneMatrix,
    next: LaneMatrix,
    column: Vec<FloatInterval>,
}

impl BatchFloatShadow {
    /// Re-lays-out an existing scalar shadow (same enclosures, so the
    /// lanes compute over bit-identical constants).
    #[must_use]
    pub fn from_shadow(shadow: &FloatShadow) -> Self {
        let layers = shadow
            .layers
            .iter()
            .map(|layer| BatchLayer {
                weights: layer
                    .weights
                    .iter()
                    .flat_map(|row| row.iter().copied())
                    .collect(),
                biases: layer.biases.clone(),
                activation: layer.activation,
            })
            .collect();
        BatchFloatShadow {
            layers,
            inputs: shadow.inputs,
        }
    }

    /// Builds the batched shadow of a rational network.
    ///
    /// # Panics
    ///
    /// Panics if the network is not piecewise-linear (same admissibility
    /// condition as [`FloatShadow::new`]).
    #[must_use]
    pub fn new(net: &Network<Rational>) -> Self {
        Self::from_shadow(&FloatShadow::new(net))
    }

    /// Number of input features the shadow expects.
    #[must_use]
    pub fn inputs(&self) -> usize {
        self.inputs
    }

    /// Float output enclosures for every box of the batch, each lane
    /// bitwise equal to [`FloatShadow::output_intervals`] on that box
    /// (the identity the proptests pin).
    ///
    /// # Panics
    ///
    /// Panics if widths disagree or the batch is empty.
    #[must_use]
    pub fn output_intervals_batch(
        &self,
        x_enclosure: &[FloatInterval],
        regions: &[&NoiseRegion],
        ws: &mut BatchWorkspace,
    ) -> Vec<Vec<FloatInterval>> {
        self.propagate(x_enclosure, regions, ws);
        let outputs = ws.acts.rows();
        (0..regions.len())
            .map(|k| (0..outputs).map(|r| ws.acts.get(r, k)).collect())
            .collect()
    }

    /// Screens every box of the batch in one propagation pass,
    /// returning per-box verdicts bit-identical to running
    /// [`FloatShadow::output_intervals`] + [`classify_box_float`] per
    /// box.
    ///
    /// # Panics
    ///
    /// Panics if widths disagree or the batch is empty.
    #[must_use]
    pub fn classify_batch(
        &self,
        x_enclosure: &[FloatInterval],
        label: usize,
        regions: &[&NoiseRegion],
        ws: &mut BatchWorkspace,
    ) -> Vec<BoxVerdict> {
        self.propagate(x_enclosure, regions, ws);
        let outputs = ws.acts.rows();
        (0..regions.len())
            .map(|k| {
                ws.column.clear();
                for r in 0..outputs {
                    let v = ws.acts.get(r, k);
                    ws.column.push(v);
                }
                classify_box_float(&ws.column, label)
            })
            .collect()
    }

    /// Runs the layer passes, leaving the output lanes in `ws.acts`.
    fn propagate(
        &self,
        x_enclosure: &[FloatInterval],
        regions: &[&NoiseRegion],
        ws: &mut BatchWorkspace,
    ) {
        assert_eq!(x_enclosure.len(), self.inputs, "input width mismatch");
        assert!(!regions.is_empty(), "empty batch");
        for region in regions {
            assert_eq!(region.nodes(), self.inputs, "region width mismatch");
        }
        let lanes = regions.len();

        // Input enclosure under relative noise, one lane per box — the
        // same scalar `x · (100 + [lo, hi])/100` chain as the scalar
        // shadow, per lane.
        ws.acts.resize(self.inputs, lanes);
        for (c, xk) in x_enclosure.iter().enumerate() {
            for (k, region) in regions.iter().enumerate() {
                let (lo, hi) = region.ranges()[c];
                ws.acts.set(c, k, xk.mul(&float_factor(lo, hi)));
            }
        }

        for layer in &self.layers {
            ws.next.resize(layer.biases.len(), lanes);
            affine_lane_pass(&layer.weights, &layer.biases, &ws.acts, &mut ws.next);
            match layer.activation {
                Activation::Identity => {}
                Activation::ReLU => relu_lane_pass(&mut ws.next),
                Activation::Sigmoid => unreachable!("FloatShadow::new rejects sigmoid"),
            }
            ws.acts.swap(&mut ws.next);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fannet_nn::{DenseLayer, Readout};
    use fannet_tensor::Matrix;

    fn r(n: i128) -> Rational {
        Rational::from_integer(n)
    }

    fn net() -> Network<Rational> {
        let hidden = DenseLayer::new(
            Matrix::from_rows(vec![
                vec![r(1), r(-1)],
                vec![r(-1), r(1)],
                vec![Rational::new(1, 2), Rational::new(1, 2)],
                vec![r(0), r(1)],
            ])
            .unwrap(),
            vec![r(0), r(0), r(-1), r(2)],
            Activation::ReLU,
        )
        .unwrap();
        let output = DenseLayer::new(
            Matrix::from_rows(vec![
                vec![r(1), r(0), r(1), r(-1)],
                vec![r(0), r(1), r(-1), r(1)],
            ])
            .unwrap(),
            vec![r(0), r(0)],
            Activation::Identity,
        )
        .unwrap();
        Network::new(vec![hidden, output], Readout::MaxPool).unwrap()
    }

    #[test]
    fn batched_outputs_are_bitwise_equal_to_the_scalar_shadow() {
        let net = net();
        let shadow = FloatShadow::new(&net);
        let batch = BatchFloatShadow::from_shadow(&shadow);
        let x = [r(120), r(-80)];
        let xf = FloatShadow::enclose_input(&x);
        let regions: Vec<NoiseRegion> = vec![
            NoiseRegion::symmetric(0, 2),
            NoiseRegion::symmetric(3, 2),
            NoiseRegion::new(vec![(-25, 10), (5, 30)]),
            NoiseRegion::symmetric(50, 2),
        ];
        let refs: Vec<&NoiseRegion> = regions.iter().collect();
        let mut ws = BatchWorkspace::default();
        let batched = batch.output_intervals_batch(&xf, &refs, &mut ws);
        for (k, region) in regions.iter().enumerate() {
            let scalar = shadow.output_intervals(&xf, region);
            assert_eq!(batched[k].len(), scalar.len());
            for (b, s) in batched[k].iter().zip(&scalar) {
                assert_eq!(
                    (b.lo().to_bits(), b.hi().to_bits()),
                    (s.lo().to_bits(), s.hi().to_bits()),
                    "lane {k} must match the scalar shadow bit for bit"
                );
            }
        }
    }

    #[test]
    fn batched_verdicts_match_scalar_classification() {
        let net = net();
        let shadow = FloatShadow::new(&net);
        let batch = BatchFloatShadow::new(&net);
        let x = [r(120), r(-80)];
        let xf = FloatShadow::enclose_input(&x);
        let label = net.classify(&x).unwrap();
        // K = 1 singleton and a wider batch, workspace reused across both.
        let mut ws = BatchWorkspace::default();
        for deltas in [vec![1], vec![0, 2, 5, 13, 50]] {
            let regions: Vec<NoiseRegion> = deltas
                .iter()
                .map(|&d| NoiseRegion::symmetric(d, 2))
                .collect();
            let refs: Vec<&NoiseRegion> = regions.iter().collect();
            let verdicts = batch.classify_batch(&xf, label, &refs, &mut ws);
            for (k, region) in regions.iter().enumerate() {
                let scalar = classify_box_float(&shadow.output_intervals(&xf, region), label);
                assert_eq!(verdicts[k], scalar, "delta {}", deltas[k]);
            }
        }
    }

    #[test]
    #[should_panic(expected = "empty batch")]
    fn empty_batch_panics() {
        let batch = BatchFloatShadow::new(&net());
        let mut ws = BatchWorkspace::default();
        let _ = batch.classify_batch(&FloatShadow::enclose_input(&[r(1), r(2)]), 0, &[], &mut ws);
    }
}
