//! The paper's relative integer-percent noise model.
//!
//! FANNet perturbs every input node by a non-deterministically chosen
//! *integer percentage* of its own magnitude (paper Fig. 1):
//!
//! ```text
//! x'ₖ = xₖ ± xₖ·(ΔX/100)   i.e.   x'ₖ = xₖ·(100 + pₖ)/100,  pₖ ∈ ℤ
//! ```
//!
//! A [`NoiseVector`] is one concrete assignment of percentages `pₖ`; the
//! paper's noise matrix `e` (property P3) is a set of such vectors, modelled
//! here as [`ExclusionSet`].

use std::collections::HashSet;
use std::fmt;

use fannet_numeric::Rational;
use serde::{Deserialize, Serialize};

/// One concrete noise assignment: integer percent per input node.
///
/// # Examples
///
/// ```
/// use fannet_verify::noise::NoiseVector;
/// use fannet_numeric::Rational;
///
/// let nv = NoiseVector::new(vec![10, -5]);
/// let x = [Rational::from_integer(200), Rational::from_integer(40)];
/// assert_eq!(
///     nv.apply(&x),
///     vec![Rational::from_integer(220), Rational::from_integer(38)]
/// );
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct NoiseVector {
    percents: Vec<i64>,
}

impl NoiseVector {
    /// Creates a noise vector from per-node integer percentages.
    #[must_use]
    pub fn new(percents: Vec<i64>) -> Self {
        NoiseVector { percents }
    }

    /// The all-zero (noise-free) vector on `n` nodes.
    #[must_use]
    pub fn zero(n: usize) -> Self {
        NoiseVector {
            percents: vec![0; n],
        }
    }

    /// Number of input nodes covered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.percents.len()
    }

    /// `true` if the vector covers zero nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.percents.is_empty()
    }

    /// The per-node percentages.
    #[must_use]
    pub fn percents(&self) -> &[i64] {
        &self.percents
    }

    /// The maximum absolute percentage across nodes (`‖p‖∞`).
    #[must_use]
    pub fn max_abs(&self) -> i64 {
        self.percents.iter().map(|p| p.abs()).max().unwrap_or(0)
    }

    /// Applies the noise to an input exactly:
    /// `x'ₖ = xₖ·(100 + pₖ)/100`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.len()`.
    #[must_use]
    pub fn apply(&self, x: &[Rational]) -> Vec<Rational> {
        assert_eq!(x.len(), self.len(), "noise width must match input width");
        x.iter()
            .zip(&self.percents)
            .map(|(&xk, &pk)| xk * Rational::new(100 + i128::from(pk), 100))
            .collect()
    }

    /// The multiplicative factor `(100 + pₖ)/100` for node `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k >= self.len()`.
    #[must_use]
    pub fn factor(&self, k: usize) -> Rational {
        Rational::new(100 + i128::from(self.percents[k]), 100)
    }
}

impl fmt::Display for NoiseVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, p) in self.percents.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p:+}%")?;
        }
        write!(f, "]")
    }
}

/// The paper's noise matrix `e`: the set of already-extracted adversarial
/// noise vectors, used in property **P3** — `(OCn = Sx) ∨ (NV ∈ e)` — to
/// force the model checker to produce a *fresh* counterexample each
/// iteration.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExclusionSet {
    vectors: HashSet<NoiseVector>,
}

impl ExclusionSet {
    /// An empty exclusion set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of excluded vectors.
    #[must_use]
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// `true` if nothing is excluded yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }

    /// `true` if `nv` was already extracted.
    #[must_use]
    pub fn contains(&self, nv: &NoiseVector) -> bool {
        self.vectors.contains(nv)
    }

    /// Adds a vector; returns `false` if it was already present.
    pub fn insert(&mut self, nv: NoiseVector) -> bool {
        self.vectors.insert(nv)
    }

    /// Iterates over the excluded vectors in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = &NoiseVector> {
        self.vectors.iter()
    }
}

impl FromIterator<NoiseVector> for ExclusionSet {
    fn from_iter<I: IntoIterator<Item = NoiseVector>>(iter: I) -> Self {
        ExclusionSet {
            vectors: iter.into_iter().collect(),
        }
    }
}

impl Extend<NoiseVector> for ExclusionSet {
    fn extend<I: IntoIterator<Item = NoiseVector>>(&mut self, iter: I) {
        self.vectors.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply_is_exact_relative_noise() {
        let nv = NoiseVector::new(vec![11, -11, 0]);
        let x = [
            Rational::from_integer(100),
            Rational::from_integer(100),
            Rational::from_integer(-50),
        ];
        assert_eq!(
            nv.apply(&x),
            vec![
                Rational::from_integer(111),
                Rational::from_integer(89),
                Rational::from_integer(-50),
            ]
        );
    }

    #[test]
    fn apply_negative_input_scales_correctly() {
        // Relative noise on a negative input moves it away from zero for
        // positive percent.
        let nv = NoiseVector::new(vec![10]);
        let x = [Rational::from_integer(-200)];
        assert_eq!(nv.apply(&x), vec![Rational::from_integer(-220)]);
    }

    #[test]
    fn zero_vector_is_identity() {
        let nv = NoiseVector::zero(2);
        let x = [Rational::new(7, 3), Rational::from_integer(-1)];
        assert_eq!(nv.apply(&x), x.to_vec());
        assert_eq!(nv.max_abs(), 0);
        assert!(!nv.is_empty());
        assert!(NoiseVector::zero(0).is_empty());
    }

    #[test]
    fn factor_and_max_abs() {
        let nv = NoiseVector::new(vec![25, -50, 3]);
        assert_eq!(nv.factor(0), Rational::new(5, 4));
        assert_eq!(nv.factor(1), Rational::new(1, 2));
        assert_eq!(nv.max_abs(), 50);
    }

    #[test]
    #[should_panic(expected = "must match input width")]
    fn apply_checks_width() {
        let _ = NoiseVector::new(vec![1]).apply(&[Rational::ZERO, Rational::ZERO]);
    }

    #[test]
    fn display_format() {
        let nv = NoiseVector::new(vec![5, -3]);
        assert_eq!(nv.to_string(), "[+5%, -3%]");
    }

    #[test]
    fn exclusion_set_dedup() {
        let mut e = ExclusionSet::new();
        assert!(e.is_empty());
        assert!(e.insert(NoiseVector::new(vec![1, 2])));
        assert!(!e.insert(NoiseVector::new(vec![1, 2])));
        assert!(e.insert(NoiseVector::new(vec![2, 1])));
        assert_eq!(e.len(), 2);
        assert!(e.contains(&NoiseVector::new(vec![1, 2])));
        assert!(!e.contains(&NoiseVector::new(vec![0, 0])));
        assert_eq!(e.iter().count(), 2);
    }

    #[test]
    fn exclusion_from_iterator() {
        let e: ExclusionSet = vec![NoiseVector::zero(2), NoiseVector::zero(2)]
            .into_iter()
            .collect();
        assert_eq!(e.len(), 1);
        let mut e2 = ExclusionSet::new();
        e2.extend(vec![NoiseVector::new(vec![3])]);
        assert_eq!(e2.len(), 1);
    }

    #[test]
    fn serde_round_trip() {
        let nv = NoiseVector::new(vec![-7, 0, 12]);
        let json = serde_json::to_string(&nv).unwrap();
        let back: NoiseVector = serde_json::from_str(&json).unwrap();
        assert_eq!(back, nv);
    }
}
