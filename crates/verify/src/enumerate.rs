//! The paper's **P3 loop**: iterated counterexample extraction with an
//! exclusion expression.
//!
//! FANNet (Fig. 2, "Adversarial Noise Vectors Extraction") repeatedly
//! re-checks `P3: (OCn = Sx) ∨ (NV ∈ e)` — after each counterexample, its
//! noise vector `NV` is appended to the matrix `e`, so the next model-checker
//! run must produce a *fresh* vector. [`CounterexampleEnumerator`] is that
//! loop as a Rust iterator: each `next()` is one model-checking query.

use fannet_nn::Network;
use fannet_numeric::Rational;

use crate::bab::{BabStats, CheckerConfig, RegionChecker, RegionOutcome};
use crate::exact::Counterexample;
use crate::noise::ExclusionSet;
use crate::region::NoiseRegion;

/// Streaming enumeration of unique adversarial noise vectors for one input.
///
/// # Examples
///
/// ```
/// use fannet_numeric::Rational;
/// use fannet_nn::{Activation, DenseLayer, Network, Readout};
/// use fannet_tensor::Matrix;
/// use fannet_verify::{enumerate::CounterexampleEnumerator, region::NoiseRegion};
///
/// let r = |n: i128| Rational::from_integer(n);
/// let net = Network::new(vec![DenseLayer::new(
///     Matrix::from_rows(vec![vec![r(1), r(0)], vec![r(0), r(1)]])?,
///     vec![r(0), r(0)],
///     Activation::Identity,
/// )?], Readout::MaxPool)?;
/// let x = vec![r(100), r(99)];
///
/// let found: Vec<_> =
///     CounterexampleEnumerator::new(&net, &x, 0, NoiseRegion::symmetric(2, 2)).collect();
/// // Unique vectors only, each a true misclassification.
/// assert!(!found.is_empty());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct CounterexampleEnumerator<'a> {
    checker: RegionChecker<'a>,
    x: &'a [Rational],
    label: usize,
    region: NoiseRegion,
    excluded: ExclusionSet,
    exhausted: bool,
    stats: BabStats,
}

impl<'a> CounterexampleEnumerator<'a> {
    /// Starts a P3 loop for input `x` with true label `label` over
    /// `region`, beginning with an empty noise matrix `e`.
    #[must_use]
    pub fn new(
        net: &'a Network<Rational>,
        x: &'a [Rational],
        label: usize,
        region: NoiseRegion,
    ) -> Self {
        Self::with_exclusions(net, x, label, region, ExclusionSet::new())
    }

    /// Starts a P3 loop with a pre-populated noise matrix `e` (e.g. vectors
    /// carried over from another input).
    #[must_use]
    pub fn with_exclusions(
        net: &'a Network<Rational>,
        x: &'a [Rational],
        label: usize,
        region: NoiseRegion,
        excluded: ExclusionSet,
    ) -> Self {
        CounterexampleEnumerator {
            checker: RegionChecker::new(net, CheckerConfig::serial_exact()),
            x,
            label,
            region,
            excluded,
            exhausted: false,
            stats: BabStats::default(),
        }
    }

    /// Overrides the checker configuration for every subsequent query
    /// (all configurations yield the identical vector sequence). Rebuilds
    /// the query handle, so the float shadow is constructed once here and
    /// reused by every `next()`.
    #[must_use]
    pub fn with_config(mut self, config: CheckerConfig) -> Self {
        let net = self.checker.network();
        self.checker = RegionChecker::new(net, config);
        self
    }

    /// The noise matrix `e` accumulated so far.
    #[must_use]
    pub fn exclusions(&self) -> &ExclusionSet {
        &self.excluded
    }

    /// Aggregate search statistics across all queries so far.
    #[must_use]
    pub fn stats(&self) -> BabStats {
        self.stats
    }

    /// `true` once the region has been proven free of fresh
    /// counterexamples.
    #[must_use]
    pub fn is_exhausted(&self) -> bool {
        self.exhausted
    }
}

impl Iterator for CounterexampleEnumerator<'_> {
    type Item = Counterexample;

    fn next(&mut self) -> Option<Counterexample> {
        if self.exhausted {
            return None;
        }
        let (outcome, stats) = self
            .checker
            .check_region(self.x, self.label, &self.region, &self.excluded)
            .expect("enumerator construction validated widths");
        self.stats.merge(&stats);
        match outcome {
            RegionOutcome::Robust => {
                self.exhausted = true;
                None
            }
            RegionOutcome::Counterexample(ce) => {
                self.excluded.insert(ce.noise.clone());
                Some(ce)
            }
        }
    }
}

/// Collects up to `limit` unique counterexamples for one input — the usual
/// way analyses consume the P3 loop (the full population can be huge at
/// large noise ranges).
#[must_use]
pub fn collect_counterexamples(
    net: &Network<Rational>,
    x: &[Rational],
    label: usize,
    region: &NoiseRegion,
    limit: usize,
) -> Vec<Counterexample> {
    CounterexampleEnumerator::new(net, x, label, region.clone())
        .take(limit)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::classify_noisy;
    use fannet_nn::{Activation, DenseLayer, Readout};
    use fannet_tensor::Matrix;
    use std::collections::HashSet;

    fn r(n: i128) -> Rational {
        Rational::from_integer(n)
    }

    fn comparator() -> Network<Rational> {
        Network::new(
            vec![DenseLayer::new(
                Matrix::from_rows(vec![vec![r(1), r(0)], vec![r(0), r(1)]]).unwrap(),
                vec![r(0), r(0)],
                Activation::Identity,
            )
            .unwrap()],
            Readout::MaxPool,
        )
        .unwrap()
    }

    #[test]
    fn enumerates_exactly_the_misclassifying_grid_points() {
        let net = comparator();
        let x = vec![r(100), r(98)];
        let region = NoiseRegion::symmetric(3, 2);
        let found: Vec<_> = CounterexampleEnumerator::new(&net, &x, 0, region.clone()).collect();
        let brute: HashSet<Vec<i64>> = region
            .iter_points()
            .filter(|nv| classify_noisy(&net, &x, nv).unwrap() != 0)
            .map(|nv| nv.percents().to_vec())
            .collect();
        let ours: HashSet<Vec<i64>> = found
            .iter()
            .map(|ce| ce.noise.percents().to_vec())
            .collect();
        assert_eq!(ours, brute);
        assert_eq!(found.len(), brute.len(), "each vector exactly once");
    }

    #[test]
    fn exhaustion_is_sticky() {
        let net = comparator();
        let x = vec![r(100), r(50)];
        // Huge margin, tiny noise: no CEs at all.
        let mut it = CounterexampleEnumerator::new(&net, &x, 0, NoiseRegion::symmetric(2, 2));
        assert!(it.next().is_none());
        assert!(it.is_exhausted());
        assert!(it.next().is_none());
        assert_eq!(it.exclusions().len(), 0);
    }

    #[test]
    fn pre_seeded_exclusions_are_skipped() {
        let net = comparator();
        let x = vec![r(100), r(98)];
        let region = NoiseRegion::symmetric(3, 2);
        let all: Vec<_> = CounterexampleEnumerator::new(&net, &x, 0, region.clone()).collect();
        assert!(all.len() >= 2, "need ≥2 CEs for this test");
        let seed: ExclusionSet = [all[0].noise.clone()].into_iter().collect();
        let rest: Vec<_> =
            CounterexampleEnumerator::with_exclusions(&net, &x, 0, region, seed).collect();
        assert_eq!(rest.len(), all.len() - 1);
        assert!(rest.iter().all(|ce| ce.noise != all[0].noise));
    }

    #[test]
    fn limit_collection() {
        let net = comparator();
        let x = vec![r(100), r(98)];
        let region = NoiseRegion::symmetric(5, 2);
        let some = collect_counterexamples(&net, &x, 0, &region, 3);
        assert_eq!(some.len(), 3);
        let unique: HashSet<_> = some.iter().map(|ce| ce.noise.clone()).collect();
        assert_eq!(unique.len(), 3);
    }

    #[test]
    fn stats_accumulate() {
        let net = comparator();
        let x = vec![r(100), r(98)];
        let mut it = CounterexampleEnumerator::new(&net, &x, 0, NoiseRegion::symmetric(3, 2));
        let _ = it.next();
        let s1 = it.stats();
        let _ = it.next();
        let s2 = it.stats();
        assert!(s2.boxes_visited > s1.boxes_visited);
    }
}
