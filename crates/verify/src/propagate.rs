//! Interval abstract interpretation of a rational network over a noise box.
//!
//! Given an exact input `x`, a [`NoiseRegion`] `R` and a piecewise-linear
//! [`Network<Rational>`], computes per-output [`Interval`]s that **enclose**
//! every output the network can produce for any noise vector in `R`:
//!
//! 1. input enclosure: `Xₖ = xₖ · (100 + [loₖ, hiₖ])/100` (exact interval
//!    multiplication, correct for negative `xₖ` too);
//! 2. affine layers: interval dot products, with each weight applied via
//!    [`Interval::scale`] (exact — weights are constants);
//! 3. `ReLU`/`max`: exact monotone interval transformers.
//!
//! Soundness (every concrete output lies inside the computed interval) is
//! what makes branch-and-bound pruning in [`crate::bab`] a *proof*; the
//! enclosure is generally not tight (the dependency problem), which is why
//! refinement by splitting exists.

use fannet_nn::{Activation, Network};
use fannet_numeric::{FloatInterval, Interval, Rational};
use fannet_tensor::ShapeError;

use crate::region::NoiseRegion;

/// Output enclosure of `net` on input `x` under every noise vector in
/// `region`.
///
/// # Errors
///
/// Returns [`ShapeError`] if widths disagree.
///
/// # Panics
///
/// Panics if the network contains a non-piecewise-linear activation
/// (sigmoid): interval transformers here are exact only for `Identity`,
/// `ReLU` and the maxpool readout.
pub fn output_intervals(
    net: &Network<Rational>,
    x: &[Rational],
    region: &NoiseRegion,
) -> Result<Vec<Interval>, ShapeError> {
    let mut ws = PropagationWorkspace::default();
    output_intervals_with(net, x, region, &mut ws).map(<[Interval]>::to_vec)
}

/// Reusable activation buffers for [`output_intervals_with`]: the exact
/// tier's per-box hot path allocates nothing once the workspace has
/// grown to the widest layer (ROADMAP "exact fallbacks stop allocating
/// per node").
#[derive(Debug, Clone, Default)]
pub struct PropagationWorkspace {
    acts: Vec<Interval>,
    next: Vec<Interval>,
}

/// [`output_intervals`] writing into a caller-owned workspace instead of
/// allocating fresh activation vectors per box; the returned slice
/// borrows the workspace and holds exactly the output enclosure.
///
/// # Errors
///
/// Returns [`ShapeError`] if widths disagree.
///
/// # Panics
///
/// Panics if the network contains a non-piecewise-linear activation
/// (sigmoid), as [`output_intervals`] does.
pub fn output_intervals_with<'w>(
    net: &Network<Rational>,
    x: &[Rational],
    region: &NoiseRegion,
    ws: &'w mut PropagationWorkspace,
) -> Result<&'w [Interval], ShapeError> {
    if x.len() != net.inputs() {
        return Err(ShapeError::new(format!(
            "input of width {} against network with {} inputs",
            x.len(),
            net.inputs()
        )));
    }
    if region.nodes() != net.inputs() {
        return Err(ShapeError::new(format!(
            "noise region over {} nodes against network with {} inputs",
            region.nodes(),
            net.inputs()
        )));
    }
    assert!(
        net.is_piecewise_linear(),
        "interval propagation requires piecewise-linear activations"
    );

    // Input enclosure under relative noise.
    ws.acts.clear();
    ws.acts.extend(
        x.iter()
            .enumerate()
            .map(|(k, &xk)| Interval::point(xk).mul_interval(&region.factor_interval(k))),
    );

    for layer in net.layers() {
        let w = layer.weights();
        ws.next.clear();
        ws.next.reserve(layer.outputs());
        for r in 0..w.rows() {
            let mut z = Interval::point(layer.biases()[r]);
            for (c, a) in ws.acts.iter().enumerate() {
                z = z + a.scale(w[(r, c)]);
            }
            let out = match layer.activation() {
                Activation::Identity => z,
                Activation::ReLU => z.relu(),
                Activation::Sigmoid => unreachable!("checked piecewise-linear above"),
            };
            ws.next.push(out);
        }
        std::mem::swap(&mut ws.acts, &mut ws.next);
    }
    Ok(&ws.acts)
}

// The verdict type lives in the generic search core since the
// `fannet-search` extraction; re-exported here so every existing
// `crate::propagate::BoxVerdict` path keeps working.
pub use fannet_search::BoxVerdict;

/// Classifies a box from its output enclosures, for expected label `label`.
///
/// The readout is maxpool with ties broken toward the *lower* index (paper:
/// `L0 ≥ L1 → L0`). A rival `j < label` therefore wins ties against the
/// label, while the label wins ties against rivals `j > label`:
///
/// * the box is **always correct** if every rival `j < label` satisfies
///   `hi(outⱼ) < lo(out_label)` (strict — the lower rival would win a tie)
///   and every rival `j > label` satisfies `hi(outⱼ) ≤ lo(out_label)`;
/// * the box is **always wrong** if some rival `j < label` satisfies
///   `lo(outⱼ) ≥ hi(out_label)` or some `j > label` satisfies
///   `lo(outⱼ) > hi(out_label)`.
///
/// Both directions compare interval endpoints, hence are sound but not
/// complete (returning [`BoxVerdict::Unknown`] is always safe).
///
/// # Panics
///
/// Panics if `label >= outputs.len()`.
#[must_use]
pub fn classify_box(outputs: &[Interval], label: usize) -> BoxVerdict {
    assert!(label < outputs.len(), "label {label} out of range");
    let target = &outputs[label];

    let mut always_correct = true;
    for (j, rival) in outputs.iter().enumerate() {
        if j == label {
            continue;
        }
        let strict_needed = j < label; // lower rival wins ties
        let dominated = if strict_needed {
            rival.hi() < target.lo()
        } else {
            rival.hi() <= target.lo()
        };
        if !dominated {
            always_correct = false;
        }
        let overwhelms = if strict_needed {
            rival.lo() >= target.hi()
        } else {
            rival.lo() > target.hi()
        };
        if overwhelms {
            return BoxVerdict::AlwaysWrong;
        }
    }
    if always_correct {
        BoxVerdict::AlwaysCorrect
    } else {
        BoxVerdict::Unknown
    }
}

// ---------------------------------------------------------------------------
// Float screening tier (DESIGN.md §6)
// ---------------------------------------------------------------------------

/// A precomputed outward-rounded `f64` copy of a rational network — the
/// cheap first tier of the two-tier checker.
///
/// Weights and biases are enclosed once per network
/// ([`FloatShadow::new`]); the per-input enclosure is computed once per
/// query ([`FloatShadow::enclose_input`]); per-box propagation
/// ([`FloatShadow::output_intervals`]) then runs entirely in `f64`
/// interval arithmetic, avoiding the gcd-heavy exact path for every box
/// the float enclosure can already decide.
///
/// Every stored interval *encloses* the exact rational constant, and every
/// transformer of [`FloatInterval`] is outward-rounded, so the propagated
/// output intervals enclose the exact [`output_intervals`] — which is what
/// makes verdicts derived from them sound proofs (see
/// [`classify_box_float`]).
#[derive(Debug, Clone)]
pub struct FloatShadow {
    pub(crate) layers: Vec<FloatShadowLayer>,
    pub(crate) inputs: usize,
}

#[derive(Debug, Clone)]
pub(crate) struct FloatShadowLayer {
    /// `weights[r][c]` encloses the exact weight of output `r`, input `c`.
    pub(crate) weights: Vec<Vec<FloatInterval>>,
    pub(crate) biases: Vec<FloatInterval>,
    pub(crate) activation: Activation,
}

impl FloatShadow {
    /// Builds the shadow of a rational network.
    ///
    /// # Panics
    ///
    /// Panics if the network is not piecewise-linear (same admissibility
    /// condition as [`output_intervals`]).
    #[must_use]
    pub fn new(net: &Network<Rational>) -> Self {
        assert!(
            net.is_piecewise_linear(),
            "float screening requires piecewise-linear activations"
        );
        let layers = net
            .layers()
            .iter()
            .map(|layer| {
                let w = layer.weights();
                let weights = (0..w.rows())
                    .map(|r| {
                        (0..w.cols())
                            .map(|c| FloatInterval::from_rational_point(w[(r, c)]))
                            .collect()
                    })
                    .collect();
                let biases = layer
                    .biases()
                    .iter()
                    .map(|&b| FloatInterval::from_rational_point(b))
                    .collect();
                FloatShadowLayer {
                    weights,
                    biases,
                    activation: layer.activation(),
                }
            })
            .collect();
        FloatShadow {
            layers,
            inputs: net.inputs(),
        }
    }

    /// Number of input features the shadow expects.
    #[must_use]
    pub fn inputs(&self) -> usize {
        self.inputs
    }

    /// Per-feature float enclosure of an exact input, computed once per
    /// query and reused across every box.
    #[must_use]
    pub fn enclose_input(x: &[Rational]) -> Vec<FloatInterval> {
        x.iter()
            .map(|&xk| FloatInterval::from_rational_point(xk))
            .collect()
    }

    /// Float output enclosure of the shadow network on `x_enclosure` under
    /// every noise vector in `region` — the `f64` counterpart of
    /// [`output_intervals`], guaranteed to enclose it.
    ///
    /// # Panics
    ///
    /// Panics if widths disagree (callers validate once per query).
    #[must_use]
    pub fn output_intervals(
        &self,
        x_enclosure: &[FloatInterval],
        region: &NoiseRegion,
    ) -> Vec<FloatInterval> {
        assert_eq!(x_enclosure.len(), self.inputs, "input width mismatch");
        assert_eq!(region.nodes(), self.inputs, "region width mismatch");

        // Input enclosure under relative noise: x · (100 + [lo, hi])/100.
        // The integer-to-f64 conversions are exact (|p| ≤ 200); only the
        // division rounds, which `from_ratio` widens outward.
        let mut acts: Vec<FloatInterval> = x_enclosure
            .iter()
            .zip(region.ranges())
            .map(|(xk, &(lo, hi))| xk.mul(&float_factor(lo, hi)))
            .collect();

        let mut next: Vec<FloatInterval> = Vec::new();
        for layer in &self.layers {
            next.clear();
            next.reserve(layer.biases.len());
            for (row, bias) in layer.weights.iter().zip(&layer.biases) {
                let mut z = *bias;
                for (a, w) in acts.iter().zip(row) {
                    z = z.add(&a.mul(w));
                }
                let out = match layer.activation {
                    Activation::Identity => z,
                    Activation::ReLU => z.relu(),
                    Activation::Sigmoid => unreachable!("checked piecewise-linear in new()"),
                };
                next.push(out);
            }
            std::mem::swap(&mut acts, &mut next);
        }
        acts
    }
}

/// Outward float enclosure of the noise factor `(100 + [lo, hi]) / 100`.
#[must_use]
pub fn float_factor(lo: i64, hi: i64) -> FloatInterval {
    // Integer percents are exactly representable; the division by 100
    // rounds to nearest, so step one ulp outward on each side.
    let f_lo = ((100 + lo) as f64 / 100.0).next_down();
    let f_hi = ((100 + hi) as f64 / 100.0).next_up();
    FloatInterval::new(f_lo, f_hi)
}

/// Float-tier counterpart of [`classify_box`], with identical tie-break
/// semantics.
///
/// Soundness: each `FloatInterval` endpoint is an *outer* bound of the
/// exact endpoint (`lo_f ≤ lo_exact`, `hi_f ≥ hi_exact`), so
///
/// * `rival.hi_f < target.lo_f` implies `rival.hi ≤ hi_f < lo_f ≤
///   target.lo` exactly (and likewise for the non-strict form), making
///   `AlwaysCorrect` a proof;
/// * `rival.lo_f ≥ target.hi_f` implies `rival.lo ≥ lo_f ≥ hi_f ≥
///   target.hi` exactly, making `AlwaysWrong` a proof.
///
/// The float tier is *less complete* than the exact tier (wider intervals
/// ⇒ more `Unknown`), never less sound.
///
/// # Panics
///
/// Panics if `label >= outputs.len()`.
#[must_use]
pub fn classify_box_float(outputs: &[FloatInterval], label: usize) -> BoxVerdict {
    assert!(label < outputs.len(), "label {label} out of range");
    let target = &outputs[label];

    let mut always_correct = true;
    for (j, rival) in outputs.iter().enumerate() {
        if j == label {
            continue;
        }
        let strict_needed = j < label; // lower rival wins ties
        let dominated = if strict_needed {
            rival.hi() < target.lo()
        } else {
            rival.hi() <= target.lo()
        };
        if !dominated {
            always_correct = false;
        }
        let overwhelms = if strict_needed {
            rival.lo() >= target.hi()
        } else {
            rival.lo() > target.hi()
        };
        if overwhelms {
            return BoxVerdict::AlwaysWrong;
        }
    }
    if always_correct {
        BoxVerdict::AlwaysCorrect
    } else {
        BoxVerdict::Unknown
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fannet_nn::{DenseLayer, Readout};
    use fannet_tensor::Matrix;

    fn r(n: i128) -> Rational {
        Rational::from_integer(n)
    }

    /// 2-4-2 rational network with hand-set weights.
    fn net() -> Network<Rational> {
        let hidden = DenseLayer::new(
            Matrix::from_rows(vec![
                vec![r(1), r(-1)],
                vec![r(-1), r(1)],
                vec![Rational::new(1, 2), Rational::new(1, 2)],
                vec![r(0), r(1)],
            ])
            .unwrap(),
            vec![r(0), r(0), r(-1), r(2)],
            Activation::ReLU,
        )
        .unwrap();
        let output = DenseLayer::new(
            Matrix::from_rows(vec![
                vec![r(1), r(0), r(1), r(-1)],
                vec![r(0), r(1), r(-1), r(1)],
            ])
            .unwrap(),
            vec![r(0), r(0)],
            Activation::Identity,
        )
        .unwrap();
        Network::new(vec![hidden, output], Readout::MaxPool).unwrap()
    }

    #[test]
    fn zero_noise_interval_is_exact_point() {
        let net = net();
        let x = [r(100), r(-50)];
        let region = NoiseRegion::symmetric(0, 2);
        let out = output_intervals(&net, &x, &region).unwrap();
        let exact = net.forward(&x).unwrap();
        for (iv, &v) in out.iter().zip(&exact) {
            assert!(iv.is_point(), "zero-noise interval must be a point");
            assert_eq!(iv.lo(), v);
        }
    }

    #[test]
    fn enclosure_is_sound_on_every_grid_point() {
        let net = net();
        let x = [r(120), r(-80)];
        let region = NoiseRegion::symmetric(4, 2);
        let enclosure = output_intervals(&net, &x, &region).unwrap();
        for nv in region.iter_points() {
            let noisy = nv.apply(&x);
            let out = net.forward(&noisy).unwrap();
            for (iv, v) in enclosure.iter().zip(&out) {
                assert!(
                    iv.contains(*v),
                    "output {v} of noise {nv} escapes enclosure {iv}"
                );
            }
        }
    }

    #[test]
    fn enclosure_tightens_as_region_shrinks() {
        let net = net();
        let x = [r(120), r(-80)];
        let wide = output_intervals(&net, &x, &NoiseRegion::symmetric(20, 2)).unwrap();
        let narrow = output_intervals(&net, &x, &NoiseRegion::symmetric(2, 2)).unwrap();
        for (w, n) in wide.iter().zip(&narrow) {
            assert!(w.contains_interval(n));
            assert!(w.width() >= n.width());
        }
    }

    #[test]
    fn workspace_reuse_matches_fresh_allocation() {
        let net = net();
        let mut ws = PropagationWorkspace::default();
        for (x0, x1) in [(120, -80), (37, 202), (-15, 4)] {
            let x = [r(x0), r(x1)];
            for delta in [0, 3, 11] {
                let region = NoiseRegion::symmetric(delta, 2);
                let fresh = output_intervals(&net, &x, &region).unwrap();
                let reused = output_intervals_with(&net, &x, &region, &mut ws).unwrap();
                assert_eq!(reused, fresh.as_slice(), "x=({x0},{x1}), delta {delta}");
            }
        }
        // Shape errors propagate through the workspace path too.
        assert!(
            output_intervals_with(&net, &[r(1)], &NoiseRegion::symmetric(1, 2), &mut ws).is_err()
        );
    }

    #[test]
    fn width_mismatch_is_error() {
        let net = net();
        assert!(output_intervals(&net, &[r(1)], &NoiseRegion::symmetric(1, 2)).is_err());
        assert!(output_intervals(&net, &[r(1), r(2)], &NoiseRegion::symmetric(1, 3)).is_err());
    }

    #[test]
    fn classify_box_correct_and_wrong() {
        // label 1, target [5,6] vs rival [1,2] → rival.hi() < target.lo():
        // strict not needed for j<label? j=0 < label=1, strict needed:
        // 2 < 5 holds → AlwaysCorrect.
        let out = vec![Interval::new(r(1), r(2)), Interval::new(r(5), r(6))];
        assert_eq!(classify_box(&out, 1), BoxVerdict::AlwaysCorrect);
        // Rival overwhelms: lo(rival)=7 ≥ hi(target)=6 with j<label.
        let out = vec![Interval::new(r(7), r(9)), Interval::new(r(5), r(6))];
        assert_eq!(classify_box(&out, 1), BoxVerdict::AlwaysWrong);
        // Overlap → Unknown.
        let out = vec![Interval::new(r(4), r(7)), Interval::new(r(5), r(6))];
        assert_eq!(classify_box(&out, 1), BoxVerdict::Unknown);
    }

    #[test]
    fn classify_box_tie_break_semantics() {
        // Exact tie at a point: out0 == out1 == [5,5].
        let tie = vec![Interval::point(r(5)), Interval::point(r(5))];
        // Label 0 wins ties → always correct for label 0…
        assert_eq!(classify_box(&tie, 0), BoxVerdict::AlwaysCorrect);
        // …and always wrong for label 1.
        assert_eq!(classify_box(&tie, 1), BoxVerdict::AlwaysWrong);
    }

    #[test]
    fn shadow_encloses_exact_propagation() {
        let net = net();
        let shadow = FloatShadow::new(&net);
        let x = [r(120), r(-80)];
        let xf = FloatShadow::enclose_input(&x);
        for delta in [0, 1, 4, 11, 25] {
            let region = NoiseRegion::symmetric(delta, 2);
            let exact = output_intervals(&net, &x, &region).unwrap();
            let float = shadow.output_intervals(&xf, &region);
            for (fi, iv) in float.iter().zip(&exact) {
                assert!(
                    fi.contains_rational(iv.lo()) && fi.contains_rational(iv.hi()),
                    "float {fi:?} must enclose exact {iv:?} at delta {delta}"
                );
            }
        }
    }

    #[test]
    fn shadow_stays_tight_enough_to_decide() {
        // On a comfortable margin the float tier must reach a verdict, not
        // just stay sound — otherwise screening would never pay off.
        let net = net();
        let shadow = FloatShadow::new(&net);
        let x = [r(120), r(-80)];
        let label = net.classify(&x).unwrap();
        let region = NoiseRegion::symmetric(1, 2);
        let float = shadow.output_intervals(&FloatShadow::enclose_input(&x), &region);
        assert_eq!(classify_box_float(&float, label), BoxVerdict::AlwaysCorrect);
    }

    #[test]
    fn float_verdicts_never_contradict_exact() {
        let net = net();
        let shadow = FloatShadow::new(&net);
        for (x0, x1) in [(120, -80), (37, 202), (-15, 4), (1000, 999)] {
            let x = [r(x0), r(x1)];
            let xf = FloatShadow::enclose_input(&x);
            let label = net.classify(&x).unwrap();
            for delta in [0, 2, 5, 13] {
                let region = NoiseRegion::symmetric(delta, 2);
                let exact = classify_box(&output_intervals(&net, &x, &region).unwrap(), label);
                let float = classify_box_float(&shadow.output_intervals(&xf, &region), label);
                match float {
                    // A float proof must agree with the exact proof.
                    BoxVerdict::AlwaysCorrect => assert_eq!(exact, BoxVerdict::AlwaysCorrect),
                    BoxVerdict::AlwaysWrong => assert_eq!(exact, BoxVerdict::AlwaysWrong),
                    BoxVerdict::Unknown => {} // always safe
                }
            }
        }
    }

    #[test]
    fn float_factor_encloses_exact_factor() {
        for (lo, hi) in [(-100i64, 100i64), (-11, 11), (0, 0), (-50, 25)] {
            let f = float_factor(lo, hi);
            let exact_lo = Rational::new(100 + i128::from(lo), 100);
            let exact_hi = Rational::new(100 + i128::from(hi), 100);
            assert!(f.contains_rational(exact_lo), "{f:?} vs {exact_lo}");
            assert!(f.contains_rational(exact_hi), "{f:?} vs {exact_hi}");
        }
    }

    #[test]
    #[should_panic(expected = "piecewise-linear")]
    fn shadow_rejects_sigmoid() {
        let layer = DenseLayer::new(
            Matrix::from_rows(vec![vec![r(1)]]).unwrap(),
            vec![r(0)],
            Activation::Sigmoid,
        )
        .unwrap();
        let net = Network::new(vec![layer], Readout::MaxPool).unwrap();
        let _ = FloatShadow::new(&net);
    }

    #[test]
    fn verdicts_match_concrete_eval_on_samples() {
        let net = net();
        let x = [r(37), r(202)];
        let label = net.classify(&x).unwrap();
        for delta in [0, 1, 3, 7] {
            let region = NoiseRegion::symmetric(delta, 2);
            let enclosure = output_intervals(&net, &x, &region).unwrap();
            match classify_box(&enclosure, label) {
                BoxVerdict::AlwaysCorrect => {
                    for nv in region.iter_points() {
                        assert_eq!(net.classify(&nv.apply(&x)).unwrap(), label);
                    }
                }
                BoxVerdict::AlwaysWrong => {
                    for nv in region.iter_points() {
                        assert_ne!(net.classify(&nv.apply(&x)).unwrap(), label);
                    }
                }
                BoxVerdict::Unknown => {}
            }
        }
    }
}
