//! Boxes of integer-percent noise vectors — the abstract states explored by
//! the branch-and-bound verifier.

use std::fmt;

use fannet_numeric::{Interval, Rational};
use serde::{Deserialize, Serialize};

use crate::noise::NoiseVector;

/// A box `∏ₖ [loₖ, hiₖ] ⊂ ℤⁿ` of per-node noise percentages.
///
/// # Examples
///
/// ```
/// use fannet_verify::region::NoiseRegion;
///
/// let r = NoiseRegion::symmetric(5, 3); // ±5 % on 3 nodes
/// assert_eq!(r.point_count(), 11 * 11 * 11);
/// assert!(!r.is_point());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct NoiseRegion {
    ranges: Vec<(i64, i64)>,
}

impl NoiseRegion {
    /// Creates a region from per-node `(lo, hi)` percent bounds.
    ///
    /// # Panics
    ///
    /// Panics if any `lo > hi` or a bound falls outside `[-100, 100]`
    /// (noise below −100 % would flip the sign of the input, which the
    /// paper's model `x ± x·ΔX/100` never does for ΔX ≤ 100).
    #[must_use]
    pub fn new(ranges: Vec<(i64, i64)>) -> Self {
        Self::try_new(ranges).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Non-panicking form of [`NoiseRegion::new`], for callers validating
    /// untrusted input (e.g. the `fannet serve` JSONL front end).
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid bound.
    pub fn try_new(ranges: Vec<(i64, i64)>) -> Result<Self, String> {
        for &(lo, hi) in &ranges {
            if lo > hi {
                return Err(format!("noise range [{lo}, {hi}] is inverted"));
            }
            if !((-100..=100).contains(&lo) && (-100..=100).contains(&hi)) {
                return Err(format!(
                    "noise percent out of the model's [-100, 100] range: [{lo}, {hi}]"
                ));
            }
        }
        Ok(NoiseRegion { ranges })
    }

    /// The symmetric region `[-delta, +delta]ⁿ` — the paper's "noise range
    /// ±Δ%".
    ///
    /// # Panics
    ///
    /// Panics if `delta` is negative or exceeds 100.
    #[must_use]
    pub fn symmetric(delta: i64, nodes: usize) -> Self {
        assert!((0..=100).contains(&delta), "delta must be in [0, 100]");
        NoiseRegion {
            ranges: vec![(-delta, delta); nodes],
        }
    }

    /// The single-point region containing exactly `nv`.
    #[must_use]
    pub fn point(nv: &NoiseVector) -> Self {
        NoiseRegion {
            ranges: nv.percents().iter().map(|&p| (p, p)).collect(),
        }
    }

    /// Number of input nodes.
    #[must_use]
    pub fn nodes(&self) -> usize {
        self.ranges.len()
    }

    /// The per-node bounds.
    #[must_use]
    pub fn ranges(&self) -> &[(i64, i64)] {
        &self.ranges
    }

    /// Number of integer grid points in the box, saturating at
    /// `i128::MAX`.
    ///
    /// Each endpoint is widened to `i128` *before* the subtraction: a
    /// deserialized region can carry arbitrary `i64` bounds (serde
    /// bypasses the constructor's validation), for which `hi - lo` in
    /// `i64` would overflow.
    #[must_use]
    pub fn point_count(&self) -> i128 {
        self.ranges
            .iter()
            .map(|&(lo, hi)| i128::from(hi) - i128::from(lo) + 1)
            .fold(1i128, i128::saturating_mul)
    }

    /// `true` if the box is a single grid point.
    #[must_use]
    pub fn is_point(&self) -> bool {
        self.ranges.iter().all(|&(lo, hi)| lo == hi)
    }

    /// The unique grid point of a point region.
    ///
    /// # Panics
    ///
    /// Panics if the region is not a point.
    #[must_use]
    pub fn to_vector(&self) -> NoiseVector {
        assert!(self.is_point(), "region is not a single point");
        NoiseVector::new(self.ranges.iter().map(|&(lo, _)| lo).collect())
    }

    /// `true` if `nv` lies inside the box.
    #[must_use]
    pub fn contains(&self, nv: &NoiseVector) -> bool {
        nv.len() == self.nodes()
            && nv
                .percents()
                .iter()
                .zip(&self.ranges)
                .all(|(&p, &(lo, hi))| lo <= p && p <= hi)
    }

    /// `true` if `other` is a sub-box of `self` (`other ⊆ self`).
    ///
    /// This is the subsumption order of the engine's verdict cache: a
    /// region proven robust answers every region it contains.
    #[must_use]
    pub fn contains_region(&self, other: &NoiseRegion) -> bool {
        other.nodes() == self.nodes()
            && other
                .ranges
                .iter()
                .zip(&self.ranges)
                .all(|(&(olo, ohi), &(lo, hi))| lo <= olo && ohi <= hi)
    }

    /// The multiplicative noise-factor interval `(100 + [lo, hi])/100` for
    /// node `k`, used by interval propagation.
    ///
    /// # Panics
    ///
    /// Panics if `k >= self.nodes()`.
    #[must_use]
    pub fn factor_interval(&self, k: usize) -> Interval {
        let (lo, hi) = self.ranges[k];
        Interval::new(
            Rational::new(100 + i128::from(lo), 100),
            Rational::new(100 + i128::from(hi), 100),
        )
    }

    /// Splits the box on its widest dimension into two disjoint halves
    /// covering the same grid points. Returns `None` for point regions.
    #[must_use]
    pub fn split(&self) -> Option<(NoiseRegion, NoiseRegion)> {
        let (widest, &(lo, hi)) = self
            .ranges
            .iter()
            .enumerate()
            .max_by_key(|(_, &(lo, hi))| hi - lo)?;
        if lo == hi {
            return None;
        }
        let mid = lo + (hi - lo) / 2;
        let mut left = self.clone();
        let mut right = self.clone();
        left.ranges[widest] = (lo, mid);
        right.ranges[widest] = (mid + 1, hi);
        Some((left, right))
    }

    /// Iterates over every grid point in lexicographic order.
    ///
    /// Intended for small boxes (e.g. finding a non-excluded point inside a
    /// box already proven uniformly misclassified); the verifier never
    /// enumerates large boxes this way.
    pub fn iter_points(&self) -> PointIter<'_> {
        PointIter {
            region: self,
            current: self.ranges.iter().map(|&(lo, _)| lo).collect(),
            done: self.ranges.is_empty(),
        }
    }
}

impl fmt::Display for NoiseRegion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (lo, hi)) in self.ranges.iter().enumerate() {
            if i > 0 {
                write!(f, " × ")?;
            }
            write!(f, "[{lo}, {hi}]%")?;
        }
        write!(f, "}}")
    }
}

/// Iterator over the grid points of a [`NoiseRegion`], lexicographic order.
#[derive(Debug)]
pub struct PointIter<'a> {
    region: &'a NoiseRegion,
    current: Vec<i64>,
    done: bool,
}

impl Iterator for PointIter<'_> {
    type Item = NoiseVector;

    fn next(&mut self) -> Option<NoiseVector> {
        if self.done {
            return None;
        }
        let out = NoiseVector::new(self.current.clone());
        // Advance odometer from the last coordinate.
        let mut k = self.current.len();
        loop {
            if k == 0 {
                self.done = true;
                break;
            }
            k -= 1;
            let (lo, hi) = self.region.ranges[k];
            if self.current[k] < hi {
                self.current[k] += 1;
                for j in k + 1..self.current.len() {
                    self.current[j] = self.region.ranges[j].0;
                }
                break;
            }
            self.current[k] = lo;
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric_counts() {
        let r = NoiseRegion::symmetric(11, 5);
        assert_eq!(r.nodes(), 5);
        assert_eq!(r.point_count(), 23i128.pow(5));
        assert!(r.contains(&NoiseVector::new(vec![11, -11, 0, 5, -3])));
        assert!(!r.contains(&NoiseVector::new(vec![12, 0, 0, 0, 0])));
        assert!(!r.contains(&NoiseVector::zero(4)), "width mismatch");
    }

    #[test]
    fn zero_delta_is_single_point() {
        let r = NoiseRegion::symmetric(0, 3);
        assert!(r.is_point());
        assert_eq!(r.to_vector(), NoiseVector::zero(3));
        assert_eq!(r.point_count(), 1);
        assert!(r.split().is_none());
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn inverted_range_panics() {
        let _ = NoiseRegion::new(vec![(3, 2)]);
    }

    #[test]
    #[should_panic(expected = "out of the model's")]
    fn out_of_model_range_panics() {
        let _ = NoiseRegion::new(vec![(-150, 0)]);
    }

    #[test]
    fn split_partitions_grid() {
        let r = NoiseRegion::new(vec![(-2, 2), (0, 1)]);
        let (a, b) = r.split().expect("splittable");
        assert_eq!(a.point_count() + b.point_count(), r.point_count());
        // Split happens on the widest dimension (index 0 here).
        assert_eq!(a.ranges()[0], (-2, 0));
        assert_eq!(b.ranges()[0], (1, 2));
        assert_eq!(a.ranges()[1], (0, 1));
        // No point in both halves.
        for p in a.iter_points() {
            assert!(!b.contains(&p));
        }
    }

    #[test]
    fn repeated_split_reaches_points() {
        let mut stack = vec![NoiseRegion::symmetric(3, 2)];
        let mut points = 0i128;
        while let Some(r) = stack.pop() {
            match r.split() {
                Some((a, b)) => {
                    stack.push(a);
                    stack.push(b);
                }
                None => {
                    assert!(r.is_point());
                    points += 1;
                }
            }
        }
        assert_eq!(points, 49);
    }

    #[test]
    fn factor_intervals() {
        let r = NoiseRegion::new(vec![(-50, 25)]);
        let f = r.factor_interval(0);
        assert_eq!(f.lo(), Rational::new(1, 2));
        assert_eq!(f.hi(), Rational::new(5, 4));
    }

    #[test]
    fn point_iteration_lexicographic_and_complete() {
        let r = NoiseRegion::new(vec![(0, 1), (5, 7)]);
        let pts: Vec<NoiseVector> = r.iter_points().collect();
        assert_eq!(pts.len(), 6);
        assert_eq!(pts[0], NoiseVector::new(vec![0, 5]));
        assert_eq!(pts[1], NoiseVector::new(vec![0, 6]));
        assert_eq!(pts[5], NoiseVector::new(vec![1, 7]));
        // All distinct.
        let set: std::collections::HashSet<_> = pts.iter().collect();
        assert_eq!(set.len(), 6);
    }

    #[test]
    fn point_region_round_trip() {
        let nv = NoiseVector::new(vec![3, -4, 0]);
        let r = NoiseRegion::point(&nv);
        assert!(r.is_point());
        assert_eq!(r.to_vector(), nv);
        assert_eq!(r.iter_points().count(), 1);
    }

    #[test]
    fn display() {
        let r = NoiseRegion::new(vec![(-5, 5), (0, 0)]);
        assert_eq!(r.to_string(), "{[-5, 5]% × [0, 0]%}");
    }

    #[test]
    fn try_new_mirrors_new() {
        assert!(NoiseRegion::try_new(vec![(-5, 5)]).is_ok());
        assert!(NoiseRegion::try_new(vec![(3, 2)])
            .unwrap_err()
            .contains("inverted"));
        assert!(NoiseRegion::try_new(vec![(-150, 0)])
            .unwrap_err()
            .contains("out of the model's"));
    }

    #[test]
    fn point_count_survives_extreme_deserialized_ranges() {
        // serde bypasses the constructor's [-100, 100] validation, so the
        // count must not compute `hi - lo` in i64 (it would overflow here).
        let json = format!(r#"{{"ranges":[[{}, {}]]}}"#, i64::MIN, i64::MAX);
        let r: NoiseRegion = serde_json::from_str(&json).expect("raw ranges deserialize");
        assert_eq!(r.point_count(), (u64::MAX as i128) + 1);
        // Many wide axes saturate instead of wrapping.
        let wide = format!(
            r#"{{"ranges":[{}]}}"#,
            vec![format!("[{}, {}]", i64::MIN, i64::MAX); 3].join(",")
        );
        let r3: NoiseRegion = serde_json::from_str(&wide).expect("raw ranges deserialize");
        assert_eq!(r3.point_count(), i128::MAX);
    }

    #[test]
    fn containment_order() {
        let outer = NoiseRegion::new(vec![(-5, 5), (-3, 4)]);
        let inner = NoiseRegion::new(vec![(-2, 5), (0, 0)]);
        assert!(outer.contains_region(&inner));
        assert!(outer.contains_region(&outer), "containment is reflexive");
        assert!(!inner.contains_region(&outer));
        // Width mismatch is never contained.
        assert!(!outer.contains_region(&NoiseRegion::symmetric(1, 3)));
        // Overlapping but not nested.
        let shifted = NoiseRegion::new(vec![(-6, 0), (0, 0)]);
        assert!(!outer.contains_region(&shifted));
    }
}
