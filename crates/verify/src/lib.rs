//! # fannet-verify
//!
//! The exact decision procedure behind the FANNet (DATE 2020) reproduction —
//! this crate plays the role nuXmv's symbolic engine plays in the paper
//! (DESIGN.md §5 gives the substitution argument).
//!
//! * [`noise`] — the paper's relative integer-percent noise model
//!   (`x' = x·(100+p)/100`) and the noise matrix `e` ([`noise::ExclusionSet`]).
//! * [`region`] — boxes of noise vectors, the abstract states of the search.
//! * [`propagate`] — sound interval abstract interpretation of rational
//!   networks over a noise box.
//! * [`zonotope`] — sound affine-form (zonotope) abstract interpretation,
//!   the middle screening tier that classifies on output *differences*.
//! * [`batch`] — batched float screening: K frontier boxes per weight
//!   pass, bit-identical to the scalar shadow (DESIGN.md §16).
//! * [`exact`] — ground-truth rational evaluation and counterexample
//!   records.
//! * [`bab`] — branch-and-bound: sound *and complete* over the integer
//!   noise grid, with optional exclusion sets (property **P3**).
//! * [`enumerate`] — the P3 loop as an iterator of unique counterexamples.
//!
//! ## Example
//!
//! ```
//! use fannet_numeric::Rational;
//! use fannet_nn::{Activation, DenseLayer, Network, Readout};
//! use fannet_tensor::Matrix;
//! use fannet_verify::{bab, region::NoiseRegion};
//!
//! // label 0 iff x0 ≥ x1.
//! let r = |n: i128| Rational::from_integer(n);
//! let net = Network::new(vec![DenseLayer::new(
//!     Matrix::from_rows(vec![vec![r(1), r(0)], vec![r(0), r(1)]])?,
//!     vec![r(0), r(0)],
//!     Activation::Identity,
//! )?], Readout::MaxPool)?;
//!
//! let x = [r(100), r(90)];
//! let (outcome, _) = bab::find_counterexample(&net, &x, 0, &NoiseRegion::symmetric(4, 2))?;
//! assert!(outcome.is_robust()); // ±4 % cannot close a 10 % gap
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod bab;
pub mod batch;
pub mod enumerate;
pub mod exact;
pub mod noise;
pub mod propagate;
pub mod region;
pub mod zonotope;

pub use bab::{BabStats, CheckerConfig, RegionChecker, RegionOutcome, ScreeningTier};
pub use batch::{BatchFloatShadow, BatchWorkspace, BATCH_WIDTH};
pub use exact::Counterexample;
// Re-exported so cost-attribution callers (`check_region_timed`) need
// not depend on `fannet-search` directly.
pub use fannet_search::TierTimer;
pub use noise::{ExclusionSet, NoiseVector};
pub use region::NoiseRegion;
