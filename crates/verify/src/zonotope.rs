//! Zonotope abstract interpretation of a rational network over a noise
//! box — the middle screening tier between the float-interval screen and
//! exact rational propagation (DESIGN.md §10).
//!
//! Plain intervals forget every correlation between neurons, so the
//! pairwise output comparisons that decide a box stay `Unknown` long
//! after the *difference* of the outputs is already sign-definite. A
//! [`ZonotopeShadow`] propagates [`AffineForm`]s instead: one shared
//! noise symbol per input node carries each input's noise *linearly and
//! exactly* through the affine layers, and only `ReLU` loses precision —
//! via a DeepPoly/DeepZ-style single-neuron relaxation (λ-slope plus one
//! fresh noise symbol, [`relu_form`]). Classification then happens on the
//! zonotope of each **output difference** ([`classify_box_zonotope`]),
//! where the shared symbols cancel, which is what slashes the
//! branch-and-bound split count on wide noise regions.
//!
//! Soundness is inherited from [`AffineForm`]'s contract (every rounded
//! operation charges its ulp gap to the error term; rational constants
//! enter with their conversion slack) plus the relaxation lemma proven at
//! [`relu_form`]: for every noise vector in the box there is one shared
//! symbol valuation under which every neuron's form evaluates to a value
//! whose deviation from the exact rational value is covered by the form's
//! error term. Verdicts derived from the difference ranges are therefore
//! *sound proofs* about the exact network, exactly like the float tier's
//! (`propagate::classify_box_float`) — the zonotope tier is less often
//! `Unknown`, never less sound.

use fannet_nn::{Activation, Network};
use fannet_numeric::affine::{affine_combination, enclose_rational, ulp_gap};
use fannet_numeric::{AffineForm, Rational};

use crate::propagate::BoxVerdict;
use crate::region::NoiseRegion;

/// A precomputed affine-form copy of a rational network — built once per
/// network (mirroring `propagate::FloatShadow`) and reused across every
/// box of every query.
///
/// Weights and biases are stored as `(center, slack)` pairs: the exact
/// rational constant lies within `center ± slack`
/// ([`enclose_rational`]), which is how exact semantics enter the `f64`
/// zonotope domain without losing soundness.
#[derive(Debug, Clone)]
pub struct ZonotopeShadow {
    layers: Vec<ZonotopeLayer>,
    inputs: usize,
}

#[derive(Debug, Clone)]
struct ZonotopeLayer {
    /// `weights[r][c]` encloses the exact weight of output `r`, input `c`.
    weights: Vec<Vec<(f64, f64)>>,
    biases: Vec<(f64, f64)>,
    activation: Activation,
}

impl ZonotopeShadow {
    /// Builds the shadow of a rational network.
    ///
    /// # Panics
    ///
    /// Panics if the network is not piecewise-linear (same admissibility
    /// condition as `propagate::output_intervals`).
    #[must_use]
    pub fn new(net: &Network<Rational>) -> Self {
        assert!(
            net.is_piecewise_linear(),
            "zonotope screening requires piecewise-linear activations"
        );
        let layers = net
            .layers()
            .iter()
            .map(|layer| {
                let w = layer.weights();
                let weights = (0..w.rows())
                    .map(|r| (0..w.cols()).map(|c| enclose_rational(w[(r, c)])).collect())
                    .collect();
                let biases = layer
                    .biases()
                    .iter()
                    .map(|&b| enclose_rational(b))
                    .collect();
                ZonotopeLayer {
                    weights,
                    biases,
                    activation: layer.activation(),
                }
            })
            .collect();
        ZonotopeShadow {
            layers,
            inputs: net.inputs(),
        }
    }

    /// Number of input features the shadow expects.
    #[must_use]
    pub fn inputs(&self) -> usize {
        self.inputs
    }

    /// Per-feature `(center, slack)` enclosure of an exact input, computed
    /// once per query and reused across every box.
    #[must_use]
    pub fn enclose_input(x: &[Rational]) -> Vec<(f64, f64)> {
        x.iter().map(|&xk| enclose_rational(xk)).collect()
    }

    /// Affine-form output enclosure of the network on `x_enclosure` under
    /// every noise vector in `region` — the zonotope counterpart of
    /// `propagate::output_intervals`, guaranteed to enclose it under one
    /// shared symbol valuation per noise vector.
    ///
    /// Symbols `0..inputs` are the per-node input noise symbols; fresh
    /// symbols beyond that are allocated to unstable `ReLU` neurons.
    ///
    /// # Panics
    ///
    /// Panics if widths disagree (callers validate once per query).
    #[must_use]
    pub fn output_forms(
        &self,
        x_enclosure: &[(f64, f64)],
        region: &NoiseRegion,
    ) -> Vec<AffineForm> {
        assert_eq!(x_enclosure.len(), self.inputs, "input width mismatch");
        assert_eq!(region.nodes(), self.inputs, "region width mismatch");

        let mut next_symbol = self.inputs;
        let mut acts: Vec<AffineForm> = x_enclosure
            .iter()
            .zip(region.ranges())
            .enumerate()
            .map(|(k, (&(xc, xs), &(lo, hi)))| input_form(xc, xs, lo, hi, k))
            .collect();

        for layer in &self.layers {
            let mut next = Vec::with_capacity(layer.biases.len());
            for (row, &(bc, bs)) in layer.weights.iter().zip(&layer.biases) {
                let z =
                    affine_combination(row.iter().zip(&acts).map(|(&(w, s), a)| (w, s, a)), bc, bs);
                let out = match layer.activation {
                    Activation::Identity => z,
                    Activation::ReLU => relu_form(&z, &mut next_symbol),
                    Activation::Sigmoid => unreachable!("checked piecewise-linear in new()"),
                };
                next.push(out);
            }
            acts = next;
        }
        acts
    }

    /// [`ZonotopeShadow::output_forms`] over a batch of boxes, one form
    /// vector per region, in order.
    ///
    /// Unlike the float tier, the zonotope tier has no lane-parallel
    /// form: each neuron's [`AffineForm`] carries a *variable-length*
    /// symbol vector (fresh symbols are allocated per unstable `ReLU`,
    /// and which neurons are unstable differs per box), so boxes cannot
    /// share a contiguous lane layout. The batch entry point simply
    /// amortizes the per-box call overhead and pins down bitwise
    /// identity with the scalar path; the cascade's batched screening
    /// therefore lives in the float tier, with the zonotope tier running
    /// per box on whatever the float lanes could not decide.
    #[must_use]
    pub fn output_forms_batch(
        &self,
        x_enclosure: &[(f64, f64)],
        regions: &[&NoiseRegion],
    ) -> Vec<Vec<AffineForm>> {
        regions
            .iter()
            .map(|region| self.output_forms(x_enclosure, region))
            .collect()
    }
}

/// The affine form of input node `k` under relative noise `p ∈ [lo, hi]`
/// percent: `x̂ · (100 + p)/100`, linear in `p`, parameterized by the
/// shared symbol `ε_k` so the *same* `p` drives every place the input
/// feeds into.
///
/// Writing the noise factor as `mid + rad·ε_k` with
/// `mid = (200 + lo + hi)/200` and `rad = (hi − lo)/200`, the form is
/// `(x̂c ± x̂s) · (mid + rad·ε_k)` via [`AffineForm::scale`]. All integer →
/// `f64` conversions and the midpoint/radius arithmetic charge their
/// rounding gaps; the radius coefficient is rounded *up* so the scaled
/// symbol always covers the true factor range (a larger coefficient only
/// widens the enclosure).
///
/// Public because `fannet-faults` builds its interval-weight zonotope
/// propagator on the same input enclosure (DESIGN.md §11).
#[must_use]
pub fn input_form(xc: f64, xs: f64, lo: i64, hi: i64, symbol: usize) -> AffineForm {
    // Upward-rounded accumulation of non-negative slack magnitudes.
    let up = |a: f64, b: f64| (a + b).next_up();
    // i128 arithmetic cannot overflow for any i64 bounds; the i128 → f64
    // conversions round to nearest (gap-charged below).
    let l = (200i128 + 2 * i128::from(lo)) as f64;
    let h = (200i128 + 2 * i128::from(hi)) as f64;
    let conv_slack = up(ulp_gap(l), ulp_gap(h));

    let sum = l + h;
    let mid = sum / 400.0;
    // Conservative: the conversion/addition slacks are not divided down
    // by 400 (dividing only shrinks them), each rounded op adds its gap.
    let mid_slack = up(up(conv_slack, ulp_gap(sum)), ulp_gap(mid));

    let diff = h - l;
    let rad = diff / 400.0;
    let rad_slack = up(up(conv_slack, ulp_gap(diff)), ulp_gap(rad));

    let mut factor = AffineForm::with_symbol(mid, symbol, (rad + rad_slack).next_up());
    factor.add_err(mid_slack);
    factor.scale(xc, xs)
}

/// DeepZ-style sound `ReLU` relaxation of one neuron's pre-activation
/// form, allocating one fresh noise symbol when the neuron is unstable.
///
/// With sound concretization bounds `[lo, hi]` of the input form:
///
/// * `hi ≤ 0` — the neuron is provably inactive: the exact output is 0.
/// * `lo ≥ 0` — provably active: `ReLU` is the identity on every enclosed
///   value, the form passes through unchanged.
/// * otherwise (unstable) — choose the slope `λ = hi/(hi−lo)` (clamped to
///   `[0, 1]`; *any* value in `[0, 1]` is admissible, this one minimizes
///   the residue). For every `v ∈ [lo, hi]`,
///   `relu(v) − λ·v ∈ [0, D]` with `D = max(λ·(−lo), (1−λ)·hi)` — on the
///   negative side the residue is `−λ·v`, on the positive side
///   `(1−λ)·v`, both nonnegative and maximal at the endpoints. The
///   result is `λ·form + D/2 + (D/2)·ε_fresh`: choosing
///   `ε_fresh = (residue − D/2)/(D/2) ∈ [−1, 1]` witnesses the exact
///   output under the extended shared valuation. `D` and `D/2` are
///   rounded upward so the cover survives floating point.
///
/// Non-finite bounds (an overflowed form) degrade to [`AffineForm::top`].
#[must_use]
pub fn relu_form(f: &AffineForm, next_symbol: &mut usize) -> AffineForm {
    let (lo, hi) = f.range();
    if hi <= 0.0 {
        return AffineForm::constant(0.0);
    }
    if lo >= 0.0 {
        return f.clone();
    }
    if !lo.is_finite() || !hi.is_finite() {
        return AffineForm::top();
    }
    // hi > 0 > lo, both finite; hi − lo may still overflow, in which case
    // λ underflows toward 0 — a valid (if loose) slope choice.
    let lambda = (hi / (hi - lo)).clamp(0.0, 1.0);
    let a = (lambda * (-lo)).next_up();
    let b = ((1.0 - lambda).next_up() * hi).next_up();
    let half = ((a.max(b)) * 0.5).next_up();

    let mut out = f.scale(lambda, 0.0).translate(half);
    out.set_coeff(*next_symbol, half);
    *next_symbol += 1;
    out
}

/// Zonotope-tier counterpart of `propagate::classify_box` — identical
/// tie-break semantics, but decided on the **pairwise output
/// differences** computed zonotope-side, so shared-symbol correlations
/// cancel instead of decorrelating into intervals first.
///
/// Soundness: `target.sub(rival)` encloses the exact difference
/// `out_label − out_j` for every noise vector in the box (the shared
/// valuation witnesses both outputs simultaneously), and its
/// [`AffineForm::range`] bounds are outer. Hence, with the paper's
/// lower-index tie-break (`j < label` wins ties against the label):
///
/// * `dlo > 0` proves the label strictly beats rival `j < label`
///   everywhere (`dlo ≥ 0` suffices for `j > label`);
/// * `dhi ≤ 0` proves rival `j < label` wins everywhere (`dhi < 0` for
///   `j > label`), i.e. every grid point misclassifies.
///
/// A poisoned form ranges over `(-∞, +∞)` and therefore never decides.
///
/// # Panics
///
/// Panics if `label >= outputs.len()`.
#[must_use]
pub fn classify_box_zonotope(outputs: &[AffineForm], label: usize) -> BoxVerdict {
    assert!(label < outputs.len(), "label {label} out of range");
    let target = &outputs[label];

    let mut always_correct = true;
    for (j, rival) in outputs.iter().enumerate() {
        if j == label {
            continue;
        }
        let (dlo, dhi) = target.sub(rival).range();
        let strict_needed = j < label; // lower rival wins ties
        let dominated = if strict_needed { dlo > 0.0 } else { dlo >= 0.0 };
        if !dominated {
            always_correct = false;
        }
        let overwhelms = if strict_needed { dhi <= 0.0 } else { dhi < 0.0 };
        if overwhelms {
            return BoxVerdict::AlwaysWrong;
        }
    }
    if always_correct {
        BoxVerdict::AlwaysCorrect
    } else {
        BoxVerdict::Unknown
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::propagate::{classify_box, classify_box_float, output_intervals, FloatShadow};
    use fannet_nn::{DenseLayer, Readout};
    use fannet_tensor::Matrix;

    fn r(n: i128) -> Rational {
        Rational::from_integer(n)
    }

    /// 2-4-2 rational ReLU network with hand-set weights (the same one
    /// `propagate`'s tests use).
    fn net() -> Network<Rational> {
        let hidden = DenseLayer::new(
            Matrix::from_rows(vec![
                vec![r(1), r(-1)],
                vec![r(-1), r(1)],
                vec![Rational::new(1, 2), Rational::new(1, 2)],
                vec![r(0), r(1)],
            ])
            .unwrap(),
            vec![r(0), r(0), r(-1), r(2)],
            Activation::ReLU,
        )
        .unwrap();
        let output = DenseLayer::new(
            Matrix::from_rows(vec![
                vec![r(1), r(0), r(1), r(-1)],
                vec![r(0), r(1), r(-1), r(1)],
            ])
            .unwrap(),
            vec![r(0), r(0)],
            Activation::Identity,
        )
        .unwrap();
        Network::new(vec![hidden, output], Readout::MaxPool).unwrap()
    }

    #[test]
    fn forms_enclose_exact_outputs_on_every_grid_point() {
        let net = net();
        let shadow = ZonotopeShadow::new(&net);
        let x = [r(120), r(-80)];
        let xe = ZonotopeShadow::enclose_input(&x);
        for delta in [0, 1, 4, 11] {
            let region = NoiseRegion::symmetric(delta, 2);
            let forms = shadow.output_forms(&xe, &region);
            for nv in region.iter_points() {
                let out = net.forward(&nv.apply(&x)).unwrap();
                for (form, &v) in forms.iter().zip(&out) {
                    let (lo, hi) = form.range();
                    let vf = v.to_f64();
                    assert!(
                        lo <= vf.next_up() && vf.next_down() <= hi,
                        "output {v} of noise {nv} escapes [{lo}, {hi}] at delta {delta}"
                    );
                }
            }
        }
    }

    #[test]
    fn zonotope_is_tighter_than_intervals_on_differences() {
        // The identity-comparator difference x0·f0 − x1·f1 decorrelates
        // badly in intervals; the zonotope keeps each factor linear in
        // its own symbol and must produce a strictly tighter difference
        // than the interval subtraction — and at least as tight a
        // verdict everywhere.
        let net = net();
        let shadow = ZonotopeShadow::new(&net);
        let float = FloatShadow::new(&net);
        let x = [r(37), r(202)];
        let xe = ZonotopeShadow::enclose_input(&x);
        let xf = FloatShadow::enclose_input(&x);
        let mut zonotope_decides_more = false;
        for delta in [5, 10, 20, 30, 40, 50] {
            let region = NoiseRegion::symmetric(delta, 2);
            let label = net.classify(&x).unwrap();
            let fv = classify_box_float(&float.output_intervals(&xf, &region), label);
            let zv = classify_box_zonotope(&shadow.output_forms(&xe, &region), label);
            // The zonotope may only refine Unknown, never flip a proof.
            match fv {
                BoxVerdict::Unknown => {
                    if zv != BoxVerdict::Unknown {
                        zonotope_decides_more = true;
                    }
                }
                decided => assert_eq!(zv, decided, "tiers disagree at ±{delta}%"),
            }
        }
        assert!(
            zonotope_decides_more,
            "the zonotope tier must decide at least one box the interval tier cannot"
        );
    }

    #[test]
    fn zonotope_verdicts_never_contradict_exact() {
        let net = net();
        let shadow = ZonotopeShadow::new(&net);
        for (x0, x1) in [(120, -80), (37, 202), (-15, 4), (1000, 999)] {
            let x = [r(x0), r(x1)];
            let xe = ZonotopeShadow::enclose_input(&x);
            let label = net.classify(&x).unwrap();
            for delta in [0, 2, 5, 13, 30] {
                let region = NoiseRegion::symmetric(delta, 2);
                let zv = classify_box_zonotope(&shadow.output_forms(&xe, &region), label);
                // Ground truth by exhaustive evaluation (small grids).
                let mut all_correct = true;
                let mut all_wrong = true;
                for nv in region.iter_points() {
                    if net.classify(&nv.apply(&x)).unwrap() == label {
                        all_wrong = false;
                    } else {
                        all_correct = false;
                    }
                }
                match zv {
                    BoxVerdict::AlwaysCorrect => {
                        assert!(all_correct, "unsound Correct at x={x:?} delta={delta}");
                    }
                    BoxVerdict::AlwaysWrong => {
                        assert!(all_wrong, "unsound Wrong at x={x:?} delta={delta}");
                    }
                    BoxVerdict::Unknown => {}
                }
            }
        }
    }

    #[test]
    fn zonotope_agrees_with_exact_interval_verdicts_when_both_decide() {
        let net = net();
        let shadow = ZonotopeShadow::new(&net);
        let x = [r(37), r(202)];
        let xe = ZonotopeShadow::enclose_input(&x);
        let label = net.classify(&x).unwrap();
        for delta in [0, 1, 3, 7, 15] {
            let region = NoiseRegion::symmetric(delta, 2);
            let exact = classify_box(&output_intervals(&net, &x, &region).unwrap(), label);
            let zono = classify_box_zonotope(&shadow.output_forms(&xe, &region), label);
            if exact != BoxVerdict::Unknown && zono != BoxVerdict::Unknown {
                assert_eq!(exact, zono, "delta {delta}");
            }
        }
    }

    #[test]
    fn relu_form_cases() {
        let mut sym = 5;
        // Provably inactive: exact zero.
        let neg = AffineForm::with_symbol(-10.0, 0, 1.0);
        let out = relu_form(&neg, &mut sym);
        let (lo, hi) = out.range();
        assert!(lo <= 0.0 && (0.0..1e-300).contains(&hi), "inactive is zero");
        assert_eq!(sym, 5, "stable neurons allocate no symbol");
        // Provably active: identity.
        let pos = AffineForm::with_symbol(10.0, 0, 1.0);
        assert_eq!(relu_form(&pos, &mut sym), pos);
        assert_eq!(sym, 5);
        // Unstable: fresh symbol, encloses relu at sampled points.
        let unstable = AffineForm::with_symbol(1.0, 0, 3.0); // ⊇ [-2, 4]
        let out = relu_form(&unstable, &mut sym);
        assert_eq!(sym, 6);
        assert!(out.coeffs().len() == 6 && out.coeffs()[5] > 0.0);
        let (lo, hi) = out.range();
        // relu over [-2, 4] spans [0, 4]; the relaxation must cover it.
        assert!(lo <= 0.0 && hi >= 4.0);
        // Overflowed input degrades to top.
        let wide = AffineForm::top();
        assert_eq!(
            relu_form(&wide, &mut sym).range(),
            (f64::NEG_INFINITY, f64::INFINITY)
        );
    }

    #[test]
    fn classify_respects_tie_break() {
        // Exact tie: both outputs the same form → the difference carries
        // only rounding slack around 0. A float-domain tier cannot prove
        // a tie in either direction (the exact tier exists for that), so
        // both labels must stay Unknown — never a wrong proof.
        let a = AffineForm::with_symbol(5.0, 0, 1.0);
        let outs = vec![a.clone(), a.clone()];
        assert_eq!(classify_box_zonotope(&outs, 0), BoxVerdict::Unknown);
        assert_eq!(classify_box_zonotope(&outs, 1), BoxVerdict::Unknown);
        // Separated: rival strictly below.
        let low = AffineForm::with_symbol(1.0, 0, 1.0);
        let high = AffineForm::with_symbol(5.0, 0, 1.0);
        let outs = vec![low.clone(), high.clone()];
        assert_eq!(classify_box_zonotope(&outs, 1), BoxVerdict::AlwaysCorrect);
        assert_eq!(classify_box_zonotope(&outs, 0), BoxVerdict::AlwaysWrong);
        // Correlated overlap: [1+ε, 5+ε] share ε, difference is constant 4.
        // Interval-wise they overlap at nothing here; make them overlap:
        let low_wide = AffineForm::with_symbol(1.0, 0, 10.0);
        let high_wide = AffineForm::with_symbol(5.0, 0, 10.0);
        let outs = vec![low_wide, high_wide];
        // Interval view: [-9, 11] vs [-5, 15] overlap → Unknown; the
        // shared symbol cancels, difference = 4 exactly → decided.
        assert_eq!(classify_box_zonotope(&outs, 1), BoxVerdict::AlwaysCorrect);
    }

    #[test]
    fn asymmetric_and_point_regions() {
        let net = net();
        let shadow = ZonotopeShadow::new(&net);
        let x = [r(120), r(-80)];
        let xe = ZonotopeShadow::enclose_input(&x);
        // A point region concretizes to (nearly) the exact forward pass.
        let nv = crate::noise::NoiseVector::new(vec![3, -4]);
        let region = NoiseRegion::point(&nv);
        let forms = shadow.output_forms(&xe, &region);
        let out = net.forward(&nv.apply(&x)).unwrap();
        for (form, &v) in forms.iter().zip(&out) {
            let (lo, hi) = form.range();
            let vf = v.to_f64();
            assert!(lo <= vf.next_up() && vf.next_down() <= hi);
            assert!(hi - lo < 1e-9, "point region must stay tight: [{lo}, {hi}]");
        }
        // Asymmetric region bounds also enclose.
        let region = NoiseRegion::new(vec![(-12, 0), (0, 12)]);
        let forms = shadow.output_forms(&xe, &region);
        for nv in region.iter_points().step_by(17) {
            let out = net.forward(&nv.apply(&x)).unwrap();
            for (form, &v) in forms.iter().zip(&out) {
                let (lo, hi) = form.range();
                let vf = v.to_f64();
                assert!(lo <= vf.next_up() && vf.next_down() <= hi);
            }
        }
    }

    #[test]
    #[should_panic(expected = "piecewise-linear")]
    fn shadow_rejects_sigmoid() {
        let layer = DenseLayer::new(
            Matrix::from_rows(vec![vec![r(1)]]).unwrap(),
            vec![r(0)],
            Activation::Sigmoid,
        )
        .unwrap();
        let net = Network::new(vec![layer], Readout::MaxPool).unwrap();
        let _ = ZonotopeShadow::new(&net);
    }
}
