//! E5/A1 — Fig. 4 bias panel: adversarial extraction + training-bias
//! aggregation, on the biased training set.

use criterion::{criterion_group, criterion_main, Criterion};
use fannet_bench::paper_study;
use fannet_core::{adversarial, behavior, bias, tolerance};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let cs = paper_study();
    let correct = behavior::correctly_classified(&cs.exact_net, &cs.test5);
    // Fix the extraction range once (the repro binary derives it from the
    // measured tolerance; benches need a constant workload).
    let delta = 16;
    let tol = tolerance::analyze(&cs.exact_net, &cs.test5, &correct, 20);

    let mut group = c.benchmark_group("fig4_bias");
    group.sample_size(10);

    group.bench_function("extract_adversarial_pm16_cap20", |b| {
        b.iter(|| {
            black_box(adversarial::extract(
                &cs.exact_net,
                &cs.test5,
                &correct,
                delta,
                20,
            ))
        });
    });

    let report = adversarial::extract(&cs.exact_net, &cs.test5, &correct, delta, 60);
    group.bench_function("aggregate_bias_flows", |b| {
        b.iter(|| black_box(bias::analyze(&report, &tol, &cs.train5)));
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
