//! E6 — Fig. 4 node panels: per-node sensitivity statistics over the
//! extracted noise matrix `e`.

use criterion::{criterion_group, criterion_main, Criterion};
use fannet_bench::paper_study;
use fannet_core::{adversarial, behavior, sensitivity};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let cs = paper_study();
    let correct = behavior::correctly_classified(&cs.exact_net, &cs.test5);
    let report = adversarial::extract(&cs.exact_net, &cs.test5, &correct, 16, 60);

    let mut group = c.benchmark_group("fig4_sensitivity");

    group.bench_function("node_sign_statistics", |b| {
        b.iter(|| black_box(sensitivity::analyze(&report)));
    });

    group.sample_size(10);
    group.bench_function("extract_plus_analyze", |b| {
        b.iter(|| {
            let r = adversarial::extract(&cs.exact_net, &cs.test5, &correct, 16, 20);
            black_box(sensitivity::analyze(&r))
        });
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
