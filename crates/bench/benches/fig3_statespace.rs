//! E1/E2 — Fig. 3: FSM construction and state-space accounting.
//!
//! Measures (a) the closed-form paper accounting, (b) actual SMV
//! translation of the trained network, and (c) explicit flattening of the
//! [0,1]%-noise model whose size the paper reports (65 states / 4160
//! transitions).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use fannet_bench::{paper_study, paper_test_inputs};
use fannet_smv::flatten::TransitionSystem;
use fannet_smv::nn_to_smv::{network_to_smv, TranslationConfig};
use fannet_smv::parser::parse_module;
use fannet_smv::printer::print_module;
use fannet_smv::statespace::{growth_table, PaperFsm};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let cs = paper_study();
    let x = &paper_test_inputs()[0];
    let label = cs.test5.labels()[0];

    let mut group = c.benchmark_group("fig3_statespace");

    group.bench_function("paper_accounting_fig3c", |b| {
        b.iter(|| {
            let fsm = PaperFsm::with_noise(black_box(2), black_box(6));
            black_box((fsm.states(), fsm.transitions()))
        });
    });

    group.bench_function("growth_table_to_50pct", |b| {
        b.iter(|| black_box(growth_table(&[0, 1, 2, 5, 11, 25, 50], 5)));
    });

    group.bench_function("translate_network_to_smv", |b| {
        b.iter(|| {
            black_box(network_to_smv(
                &cs.exact_net,
                x,
                label,
                &TranslationConfig::symmetric(1),
            ))
        });
    });

    let module = network_to_smv(&cs.exact_net, x, label, &TranslationConfig::symmetric(1));
    group.bench_function("print_parse_round_trip", |b| {
        b.iter(|| {
            let text = print_module(black_box(&module));
            black_box(parse_module(&text).expect("round trip"))
        });
    });

    group.sample_size(10);
    group.bench_function("flatten_pm1_noise_model", |b| {
        b.iter_batched(
            || module.clone(),
            |m| black_box(TransitionSystem::from_module(&m, 1 << 20).expect("fits")),
            BatchSize::SmallInput,
        );
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
