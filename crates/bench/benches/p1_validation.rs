//! E3 — P1 validation throughput: exact-rational vs float vs Q32.32
//! forward passes over the whole test set, plus the full validation pass.

use criterion::{criterion_group, criterion_main, Criterion};
use fannet_bench::{paper_study, paper_test_inputs};
use fannet_core::behavior;
use fannet_nn::quantize;
use fannet_numeric::Fixed;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let cs = paper_study();
    let exact_inputs = paper_test_inputs();
    let float_inputs = cs.test5.samples();
    let fixed_net = quantize::to_fixed(&cs.float_net);
    let fixed_inputs: Vec<Vec<Fixed>> = float_inputs
        .iter()
        .map(|s| s.iter().map(|&v| Fixed::from_f64(v)).collect())
        .collect();

    let mut group = c.benchmark_group("p1_validation");

    group.bench_function("forward_f64_testset", |b| {
        b.iter(|| {
            for x in float_inputs {
                black_box(cs.float_net.classify(x).expect("width"));
            }
        });
    });

    group.bench_function("forward_rational_testset", |b| {
        b.iter(|| {
            for x in exact_inputs {
                black_box(cs.exact_net.classify(x).expect("width"));
            }
        });
    });

    group.bench_function("forward_fixed_testset", |b| {
        b.iter(|| {
            for x in &fixed_inputs {
                black_box(fixed_net.classify(x).expect("width"));
            }
        });
    });

    group.bench_function("validate_p1_full", |b| {
        b.iter(|| black_box(behavior::validate(&cs.exact_net, &cs.float_net, &cs.test5)));
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
