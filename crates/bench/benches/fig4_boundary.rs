//! E7 — Fig. 4 boundary panel: per-input radii joined with exact margins.

use criterion::{criterion_group, criterion_main, Criterion};
use fannet_bench::{paper_study, paper_test_inputs};
use fannet_core::{behavior, boundary, tolerance};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let cs = paper_study();
    let inputs = paper_test_inputs();
    let correct = behavior::correctly_classified(&cs.exact_net, &cs.test5);
    let tol = tolerance::analyze(&cs.exact_net, &cs.test5, &correct, 20);

    let mut group = c.benchmark_group("fig4_boundary");

    group.bench_function("exact_margin_testset", |b| {
        b.iter(|| {
            for (x, &label) in inputs.iter().zip(cs.test5.labels()) {
                black_box(boundary::exact_margin(&cs.exact_net, x, label));
            }
        });
    });

    group.bench_function("boundary_report", |b| {
        b.iter(|| black_box(boundary::analyze(&cs.exact_net, &cs.test5, &tol, 15)));
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
