//! A3 — feature-selection ablation: mRMR (MID and MIQ) vs variance ranking
//! vs seeded random choice, on the full 7129-gene training matrix.

use criterion::{criterion_group, criterion_main, Criterion};
use fannet_bench::paper_study;
use fannet_data::discretize::Discretizer;
use fannet_data::mrmr::{select_by_variance, select_mrmr, select_random, MrmrScheme};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let cs = paper_study();
    let columns = cs.data.train.columns();
    let labels = cs.data.train.labels();

    let mut group = c.benchmark_group("mrmr_selection");
    group.sample_size(10);

    group.bench_function("mrmr_mid_7129_genes", |b| {
        b.iter(|| {
            black_box(select_mrmr(
                &columns,
                labels,
                5,
                MrmrScheme::Difference,
                Discretizer::SigmaBands,
            ))
        });
    });

    group.bench_function("mrmr_miq_7129_genes", |b| {
        b.iter(|| {
            black_box(select_mrmr(
                &columns,
                labels,
                5,
                MrmrScheme::Quotient,
                Discretizer::SigmaBands,
            ))
        });
    });

    group.bench_function("variance_ranking", |b| {
        b.iter(|| black_box(select_by_variance(&columns, 5)));
    });

    group.bench_function("random_selection", |b| {
        b.iter(|| black_box(select_random(columns.len(), 5, 42)));
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
