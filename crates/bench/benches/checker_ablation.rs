//! A2 — checker ablation: branch-and-bound vs exhaustive grid enumeration
//! on identical P2 queries, plus the two-tier/parallel arms
//! (`screened`, `parallel`, `screened+parallel` — DESIGN.md §6–§7). All
//! variants are exact; the bench quantifies the gap that motivates
//! symbolic/abstraction-based checking (paper §III-B) and the speedup the
//! screening/parallel tiers recover.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fannet_bench::{paper_study, paper_test_inputs};
use fannet_verify::bab::{
    check_region_exhaustive, find_counterexample, find_counterexample_with, CheckerConfig,
};
use fannet_verify::noise::ExclusionSet;
use fannet_verify::region::NoiseRegion;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let cs = paper_study();
    let inputs = paper_test_inputs();
    let labels = cs.test5.labels();
    let idx = 6; // robust input: both checkers must cover the whole grid

    let mut group = c.benchmark_group("checker_ablation");
    group.sample_size(10);

    // Exhaustive blows up as (2Δ+1)^5 — keep its range small.
    for delta in [1i64, 2, 3] {
        let region = NoiseRegion::symmetric(delta, 5);
        group.bench_with_input(
            BenchmarkId::new("exhaustive_grid", delta),
            &region,
            |b, region| {
                b.iter(|| {
                    black_box(
                        check_region_exhaustive(
                            &cs.exact_net,
                            &inputs[idx],
                            labels[idx],
                            region,
                            &ExclusionSet::new(),
                        )
                        .expect("widths match"),
                    )
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("branch_and_bound", delta),
            &region,
            |b, region| {
                b.iter(|| {
                    black_box(
                        find_counterexample(&cs.exact_net, &inputs[idx], labels[idx], region)
                            .expect("widths match"),
                    )
                });
            },
        );
    }

    // Branch-and-bound keeps scaling where exhaustive cannot go at all
    // (±11% would be 23^5 ≈ 6.4M exact evaluations).
    for delta in [11i64, 25, 50] {
        let region = NoiseRegion::symmetric(delta, 5);
        group.bench_with_input(
            BenchmarkId::new("branch_and_bound_large", delta),
            &region,
            |b, region| {
                b.iter(|| {
                    black_box(
                        find_counterexample(&cs.exact_net, &inputs[idx], labels[idx], region)
                            .expect("widths match"),
                    )
                });
            },
        );
    }

    // Two-tier / parallel arms on the same queries (identical outcomes;
    // only wall clock differs — cross-validated in the test suite).
    let arms: [(&str, CheckerConfig); 3] = [
        ("screened", CheckerConfig::screened()),
        ("parallel", CheckerConfig::parallel()),
        ("screened_parallel", CheckerConfig::fast()),
    ];
    for delta in [11i64, 15, 25, 50] {
        let region = NoiseRegion::symmetric(delta, 5);
        for (name, config) in &arms {
            group.bench_with_input(BenchmarkId::new(*name, delta), &region, |b, region| {
                b.iter(|| {
                    black_box(
                        find_counterexample_with(
                            &cs.exact_net,
                            &inputs[idx],
                            labels[idx],
                            region,
                            config,
                        )
                        .expect("widths match"),
                    )
                });
            });
        }
    }

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
