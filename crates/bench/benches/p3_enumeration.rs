//! E8 — the P3 loop: counterexample enumeration with exclusion sets.
//!
//! Compares the paper-faithful restart loop (re-check the model with a
//! growing exclusion matrix `e` after every counterexample) against this
//! reproduction's single-pass collector — the engineering win DESIGN.md §5
//! describes.

use criterion::{criterion_group, criterion_main, Criterion};
use fannet_bench::{paper_study, paper_test_inputs};
use fannet_verify::bab::collect_region_counterexamples;
use fannet_verify::enumerate::CounterexampleEnumerator;
use fannet_verify::region::NoiseRegion;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let cs = paper_study();
    let inputs = paper_test_inputs();
    let labels = cs.test5.labels();
    // A near-boundary input with counterexamples at ±16.
    let idx = 3;
    let region = NoiseRegion::symmetric(16, 5);
    let k = 10;

    let mut group = c.benchmark_group("p3_enumeration");
    group.sample_size(10);

    group.bench_function("restart_loop_10_vectors", |b| {
        b.iter(|| {
            let found: Vec<_> = CounterexampleEnumerator::new(
                &cs.exact_net,
                &inputs[idx],
                labels[idx],
                region.clone(),
            )
            .take(k)
            .collect();
            black_box(found)
        });
    });

    group.bench_function("single_pass_10_vectors", |b| {
        b.iter(|| {
            black_box(
                collect_region_counterexamples(
                    &cs.exact_net,
                    &inputs[idx],
                    labels[idx],
                    &region,
                    k,
                )
                .expect("widths match"),
            )
        });
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
