//! E4 — Fig. 4 main panel: noise-tolerance computation.
//!
//! Measures single P2 queries at the paper's sweep ranges and the
//! binary-search robustness radius that drives the tolerance number.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fannet_bench::{paper_study, paper_test_inputs};
use fannet_core::tolerance::robustness_radius;
use fannet_verify::bab::find_counterexample;
use fannet_verify::region::NoiseRegion;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let cs = paper_study();
    let inputs = paper_test_inputs();
    let labels = cs.test5.labels();

    let mut group = c.benchmark_group("fig4_tolerance");
    group.sample_size(20);

    // One P2 query per sweep range, on a robust input — the worst case for
    // proofs (the whole box must be covered).
    let idx = 6;
    for delta in [5i64, 10, 20, 40] {
        group.bench_with_input(BenchmarkId::new("p2_query", delta), &delta, |b, &d| {
            let region = NoiseRegion::symmetric(d, 5);
            b.iter(|| {
                black_box(
                    find_counterexample(&cs.exact_net, &inputs[idx], labels[idx], &region)
                        .expect("widths match"),
                )
            });
        });
    }

    // The binary-search radius on a near-boundary input (flips quickly)
    // and on a robust one (needs the full proof at ±50).
    let near = 3;
    group.bench_function("radius_near_boundary", |b| {
        b.iter(|| {
            black_box(robustness_radius(
                &cs.exact_net,
                &inputs[near],
                labels[near],
                50,
            ))
        });
    });
    group.bench_function("radius_robust_input", |b| {
        b.iter(|| {
            black_box(robustness_radius(
                &cs.exact_net,
                &inputs[idx],
                labels[idx],
                50,
            ))
        });
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
