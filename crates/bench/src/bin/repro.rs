//! Regenerates every figure/table of the FANNet paper (DATE 2020) as text,
//! with paper-reported values alongside the measured ones. The output of
//! this binary is the data recorded in EXPERIMENTS.md.
//!
//! ```text
//! cargo run --release -p fannet-bench --bin repro
//! ```
//!
//! With `--bench-json <path>` the binary instead runs only the
//! checker-ablation benchmark (A2 plus the screened/parallel arms) and
//! writes the timings as JSON, so per-PR `BENCH_*.json` trajectories can
//! be recorded without paying for the full experiment regeneration.

use fannet_bench::paper_study;
use fannet_core::pipeline::{self, AnalysisConfig};
use fannet_core::{behavior, bias, tolerance};
use fannet_data::discretize::Discretizer;
use fannet_data::golub::{L0_AML, L1_ALL};
use fannet_data::mrmr::{select_by_variance, select_mrmr, select_random, MrmrScheme};
use fannet_data::normalize::Affine;
use fannet_engine::{Engine, EngineConfig, EngineStats};
use fannet_faults::{FaultChecker, FaultCheckerConfig, FaultStats};
use fannet_nn::{fold, init, quantize, train, Activation};
use fannet_server::session::{answer_lines, SessionConfig};
use fannet_server::tcp::serve_tcp;
use fannet_smv::statespace::{growth_table, PaperFsm};
use fannet_verify::bab::{
    check_region_exhaustive, find_counterexample, find_counterexample_with, BabStats,
    CheckerConfig, RegionChecker,
};
use fannet_verify::noise::ExclusionSet;
use fannet_verify::region::NoiseRegion;
use fannet_verify::TierTimer;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Instant;

fn header(title: &str) {
    println!("\n{}", "=".repeat(72));
    println!("{title}");
    println!("{}", "=".repeat(72));
}

/// One timed arm of the checker ablation.
#[derive(Serialize)]
struct AblationRow {
    variant: &'static str,
    delta: i64,
    seconds: f64,
    robust: bool,
    screen_hit_rate: Option<f64>,
    stats: BabStats,
}

/// One arm of the zonotope ablation: interval-only vs cascade screening
/// on identical wide-noise queries, verdicts asserted identical — the
/// observable win of the zonotope tier is the drop in explored boxes.
#[derive(Serialize)]
struct ZonotopeAblationRow {
    variant: &'static str,
    delta: i64,
    seconds: f64,
    robust: bool,
    boxes_visited: u64,
    splits: u64,
    interval_hit_rate: Option<f64>,
    zonotope_hit_rate: Option<f64>,
    stats: BabStats,
}

/// Per-tier cost attribution of one traced cascade query (the PR-8
/// observability headline): an enabled [`TierTimer`] books every solver
/// nanosecond into the interval/zonotope/exact tier, and the verdict
/// plus every counter stay bit-identical to the untraced run — asserted
/// per row before it is recorded.
#[derive(Serialize)]
struct TierAttributionRow {
    delta: i64,
    /// Wall time of the traced run.
    seconds: f64,
    robust: bool,
    interval_ns: u64,
    zonotope_ns: u64,
    exact_ns: u64,
    /// Each tier's fraction of the total attributed nanoseconds.
    interval_share: f64,
    zonotope_share: f64,
    exact_share: f64,
    stats: BabStats,
}

/// Engine-vs-cold timings of one mixed query batch (the PR-2 headline:
/// a resident engine with a verdict cache beats per-query cold starts).
#[derive(Serialize)]
struct EngineThroughputReport {
    /// Total queries in the batch.
    queries: usize,
    /// Of which tolerance searches.
    tolerance_queries: usize,
    /// Of which region checks.
    check_queries: usize,
    /// The batch via cold `check_region`/`robustness_radius` calls
    /// (serial-exact, a fresh search per query — the seed's access
    /// pattern).
    cold_serial_exact_seconds: f64,
    /// Same, but each cold call uses the screened checker (isolates the
    /// cache's contribution from the tiers').
    cold_screened_seconds: f64,
    /// The batch through one resident engine (screened, shared cache).
    engine_seconds: f64,
    /// `cold_serial_exact_seconds / engine_seconds`.
    speedup_vs_cold_serial: f64,
    /// `cold_screened_seconds / engine_seconds`.
    speedup_vs_cold_screened: f64,
    /// Engine cache counters after the batch.
    engine_stats: EngineStats,
}

/// One arm of the server throughput comparison: `connections` loopback
/// clients pipelining the same JSONL batch into one resident
/// `serve_tcp` front end.
#[derive(Serialize)]
struct ServerThroughputArm {
    connections: usize,
    requests: usize,
    seconds: f64,
    qps: f64,
    /// `qps / pipe_qps` — how much the resident server beats restarting
    /// the engine for every batch.
    speedup_vs_pipe: f64,
}

/// Resident TCP front end vs the one-shot pipe access pattern (the
/// PR-7 headline). The baseline re-creates the engine for every batch —
/// the cost profile of `fannet serve --once < batch.jsonl` per client,
/// minus process spawn (charitably) — while the server arms share one
/// resident engine and its verdict cache across connections. Verdicts
/// are asserted identical between every arm and the pipe baseline.
#[derive(Serialize)]
struct ServerThroughputReport {
    requests_per_connection: usize,
    pipe_rounds: usize,
    pipe_seconds: f64,
    pipe_qps: f64,
    arms: Vec<ServerThroughputArm>,
}

/// One arm of the queue-attribution run: `connections` loopback clients
/// pipeline the traced mixed workload into one resident `serve_tcp`
/// front end, and every response's `"trace"` object carries the
/// `queue_ns` stamp the session's phase attribution filled in.
#[derive(Serialize)]
struct QueueAttributionRow {
    connections: usize,
    /// Total requests across all connections of this arm.
    requests: usize,
    /// Wall time of the arm.
    seconds: f64,
    /// Sum of per-request front-end queue waits (`trace.queue_ns`).
    queue_ns_total: u64,
    /// Sum of per-request solver wall times (`trace.wall_ns`).
    solver_wall_ns_total: u64,
    /// `queue_ns_total / (queue_ns_total + solver_wall_ns_total)` — the
    /// share of accounted per-request time spent waiting for a worker.
    queue_share: f64,
}

/// One arm of the fault ablation: interval-only vs cascade screening
/// over the *fault space* (weight-noise balls on the trained 5–20–2
/// network), verdicts asserted identical — the fault-space mirror of the
/// zonotope ablation.
#[derive(Serialize)]
struct FaultAblationRow {
    variant: &'static str,
    /// ε = `eps_numer`/100 relative weight noise.
    eps_numer: i64,
    seconds: f64,
    verdict: &'static str,
    boxes_visited: u64,
    stats: FaultStats,
}

/// One arm of the joint ablation: the generic `fannet-search` core on
/// the joint input×weight workload, plus the δ = 0 anchor rows where
/// the product domain must reproduce the single-factor fault checker's
/// verdict *and* search shape exactly.
#[derive(Serialize)]
struct JointAblationRow {
    variant: &'static str,
    /// Symmetric input-noise radius (±δ%).
    delta: i64,
    /// ε = `eps_numer`/100 relative weight noise.
    eps_numer: i64,
    seconds: f64,
    verdict: &'static str,
    boxes_visited: u64,
    stats: FaultStats,
}

/// One arm of the batched-propagation benchmark (DESIGN.md §16): the
/// same deterministic frontier of sub-boxes screened by the scalar
/// per-box float shadow and by the K-lane batched layout, plus a full
/// interval-screened search per arm. Per-box verdicts, the search
/// outcome (witness included) and every counter are asserted
/// bit-identical between the arms before the rows are recorded —
/// batching is pure layout, so the only observable difference is wall
/// time.
#[derive(Serialize)]
struct BatchPropagationRow {
    variant: &'static str,
    delta: i64,
    /// Best-of-three wall time to screen the whole frontier pool.
    seconds: f64,
    /// Sub-boxes in the deterministic frontier pool.
    frontier_boxes: usize,
    /// Boxes the float tier decides outright (bit-identical per arm).
    decided_boxes: usize,
    /// Full-search outcome with this arm's checker (bit-identical).
    search_robust: bool,
    search_stats: BabStats,
}

/// One arm of the budgeted-parallel benchmark (DESIGN.md §16): the
/// joint (δ, ε) tolerance frontier probed at 1/2/4 worker threads.
/// The speculate-then-replay search is deterministic by construction,
/// so the certified ε, every probe verdict and the merged counters are
/// asserted bit-identical across thread counts before recording.
#[derive(Serialize)]
struct BudgetedParallelRow {
    threads: usize,
    /// Symmetric input-noise radius (±δ%) of the frontier probe.
    delta: i64,
    seconds: f64,
    /// The certified joint tolerance ε (exact rational, as text).
    robust_eps: Option<String>,
    boxes_visited: u64,
    stats: FaultStats,
}

/// The `--bench-json` document.
///
/// The `checker_ablation` and `fault_ablation` tables double as the
/// refactor trajectory: they time the *same* input-noise and fault
/// workloads as every pre-`fannet-search` `BENCH_*.json`, so comparing
/// entries across PRs is the "no slowdown beyond noise" check for the
/// generic core.
#[derive(Serialize)]
struct AblationReport {
    checker_ablation: Vec<AblationRow>,
    zonotope_ablation: Vec<ZonotopeAblationRow>,
    tier_attribution: Vec<TierAttributionRow>,
    fault_ablation: Vec<FaultAblationRow>,
    joint_ablation: Vec<JointAblationRow>,
    batch_propagation: Vec<BatchPropagationRow>,
    budgeted_parallel: Vec<BudgetedParallelRow>,
    engine_throughput: EngineThroughputReport,
    server_throughput: ServerThroughputReport,
    queue_attribution: Vec<QueueAttributionRow>,
}

/// The ablation arms: every checker configuration on identical P2 queries
/// against the trained 5–20–2 case-study network.
fn checker_ablation_rows(deltas: &[i64]) -> Vec<AblationRow> {
    let cs = paper_study();
    let inputs = fannet_bench::paper_test_inputs();
    let labels = cs.test5.labels();
    let idx = 6; // robust input: every variant must cover the whole grid
    let variants: [(&'static str, CheckerConfig); 5] = [
        ("serial_exact", CheckerConfig::serial_exact()),
        ("screened", CheckerConfig::screened()),
        ("cascade", CheckerConfig::cascade()),
        ("parallel", CheckerConfig::parallel()),
        ("cascade_parallel", CheckerConfig::fast()),
    ];
    let mut rows = Vec::new();
    for &delta in deltas {
        let region = NoiseRegion::symmetric(delta, 5);
        let mut baseline: Option<bool> = None;
        for (name, config) in &variants {
            let t = Instant::now();
            let (outcome, stats) =
                find_counterexample_with(&cs.exact_net, &inputs[idx], labels[idx], &region, config)
                    .expect("widths");
            let seconds = t.elapsed().as_secs_f64();
            match baseline {
                None => baseline = Some(outcome.is_robust()),
                Some(expected) => assert_eq!(
                    outcome.is_robust(),
                    expected,
                    "checker variants disagree at ±{delta}%"
                ),
            }
            rows.push(AblationRow {
                variant: name,
                delta,
                seconds,
                robust: outcome.is_robust(),
                screen_hit_rate: stats.screen_hit_rate(),
                stats,
            });
        }
    }
    rows
}

/// The zonotope ablation (the PR-3 headline): interval-only screening vs
/// the interval→zonotope→exact cascade on the paper network at wide
/// noise ranges, where interval decorrelation makes branch-and-bound
/// split thousands of boxes the zonotope's output-difference
/// classification decides outright. Verdicts are asserted identical —
/// the tiers only change who pays per box.
fn zonotope_ablation_rows(deltas: &[i64]) -> Vec<ZonotopeAblationRow> {
    let cs = paper_study();
    let inputs = fannet_bench::paper_test_inputs();
    let labels = cs.test5.labels();
    let idx = 6;
    let variants: [(&'static str, CheckerConfig); 2] = [
        ("interval", CheckerConfig::screened()),
        ("cascade", CheckerConfig::cascade()),
    ];
    let mut rows = Vec::new();
    for &delta in deltas {
        let region = NoiseRegion::symmetric(delta, 5);
        let mut interval_outcome: Option<(bool, u64)> = None;
        for (name, config) in &variants {
            let t = Instant::now();
            let (outcome, stats) =
                find_counterexample_with(&cs.exact_net, &inputs[idx], labels[idx], &region, config)
                    .expect("widths");
            let seconds = t.elapsed().as_secs_f64();
            match interval_outcome {
                None => interval_outcome = Some((outcome.is_robust(), stats.boxes_visited)),
                Some((robust, interval_boxes)) => {
                    assert_eq!(
                        outcome.is_robust(),
                        robust,
                        "screening tiers disagree at ±{delta}%"
                    );
                    assert!(
                        stats.boxes_visited <= interval_boxes,
                        "cascade must never explore more boxes than interval-only \
                         (±{delta}%: {} vs {interval_boxes})",
                        stats.boxes_visited
                    );
                    if delta >= 30 {
                        assert!(
                            stats.boxes_visited < interval_boxes,
                            "zonotope tier must measurably cut explored boxes at ±{delta}% \
                             ({} vs {interval_boxes})",
                            stats.boxes_visited
                        );
                    }
                }
            }
            rows.push(ZonotopeAblationRow {
                variant: name,
                delta,
                seconds,
                robust: outcome.is_robust(),
                boxes_visited: stats.boxes_visited,
                splits: stats.splits,
                interval_hit_rate: stats.interval_hit_rate(),
                zonotope_hit_rate: stats.zonotope_hit_rate(),
                stats,
            });
        }
    }
    rows
}

/// Per-tier cost attribution (the `fannet-obs` instrumentation) of the
/// cascade checker at wide noise ranges: the same query runs untraced
/// and traced, the verdict and every counter are asserted bit-identical
/// (only the never-serialized `*_ns` fields may differ), and the traced
/// run's interval/zonotope/exact nanosecond split is recorded.
fn tier_attribution_rows(deltas: &[i64]) -> Vec<TierAttributionRow> {
    let cs = paper_study();
    let inputs = fannet_bench::paper_test_inputs();
    let labels = cs.test5.labels();
    let idx = 6;
    let checker = RegionChecker::new(&cs.exact_net, CheckerConfig::cascade());
    let excluded = ExclusionSet::new();
    let mut rows = Vec::new();
    for &delta in deltas {
        let region = NoiseRegion::symmetric(delta, 5);
        let (plain, plain_stats) = checker
            .check_region(&inputs[idx], labels[idx], &region, &excluded)
            .expect("widths");
        let t = Instant::now();
        let (traced, stats) = checker
            .check_region_timed(
                &inputs[idx],
                labels[idx],
                &region,
                &excluded,
                TierTimer::enabled(),
            )
            .expect("widths");
        let seconds = t.elapsed().as_secs_f64();
        assert_eq!(
            traced.is_robust(),
            plain.is_robust(),
            "tracing changed the verdict at ±{delta}%"
        );
        let mut untimed = stats;
        untimed.interval_ns = 0;
        untimed.zonotope_ns = 0;
        untimed.exact_ns = 0;
        assert_eq!(
            untimed, plain_stats,
            "tracing changed a solver counter at ±{delta}%"
        );
        let total = (stats.interval_ns + stats.zonotope_ns + stats.exact_ns).max(1) as f64;
        rows.push(TierAttributionRow {
            delta,
            seconds,
            robust: traced.is_robust(),
            interval_ns: stats.interval_ns,
            zonotope_ns: stats.zonotope_ns,
            exact_ns: stats.exact_ns,
            interval_share: stats.interval_ns as f64 / total,
            zonotope_share: stats.zonotope_ns as f64 / total,
            exact_share: stats.exact_ns as f64 / total,
            stats,
        });
    }
    rows
}

/// The fault ablation: weight-noise robustness of one case-study input
/// at increasing ε under interval-only vs cascade screening of the
/// fault-space search. Decided verdicts are asserted identical between
/// the arms; unlike the input-noise checker the fault checker is
/// *incomplete*, so one arm may legitimately return `unknown` where the
/// other decides (e.g. a budget-exhausted interval arm vs a root-level
/// zonotope proof) — only contradictory *proofs* would be a bug.
fn fault_ablation_rows(eps_numers: &[i64]) -> Vec<FaultAblationRow> {
    use fannet_faults::FaultModel;
    use fannet_verify::bab::ScreeningTier;
    let cs = paper_study();
    let inputs = fannet_bench::paper_test_inputs();
    let labels = cs.test5.labels();
    let idx = 6;
    let variants: [(&'static str, FaultCheckerConfig); 2] = [
        (
            "interval",
            FaultCheckerConfig::default().with_screening(ScreeningTier::Interval),
        ),
        ("cascade", FaultCheckerConfig::default()),
    ];
    let mut rows = Vec::new();
    for &eps_numer in eps_numers {
        let model = FaultModel::WeightNoise {
            rel_eps: fannet_numeric::Rational::new(i128::from(eps_numer), 100),
        };
        let mut baseline: Option<&'static str> = None;
        for (name, config) in &variants {
            let checker = FaultChecker::new(cs.exact_net.clone(), config.clone());
            let t = Instant::now();
            let (outcome, stats) = checker
                .check(&inputs[idx], labels[idx], &model)
                .expect("valid query");
            let seconds = t.elapsed().as_secs_f64();
            let verdict = outcome.wire_name();
            match baseline {
                None => baseline = Some(verdict),
                Some(expected) => assert!(
                    verdict == expected || verdict == "unknown" || expected == "unknown",
                    "fault screening arms return contradictory proofs at eps \
                     {eps_numer}/100: {expected} vs {verdict}"
                ),
            }
            rows.push(FaultAblationRow {
                variant: name,
                eps_numer,
                seconds,
                verdict,
                boxes_visited: stats.boxes_visited,
                stats,
            });
        }
    }
    rows
}

/// The joint ablation: the product-domain search on (δ, ε) claims over
/// the trained 5–20–2 network, interval-only vs cascade screening. Two
/// invariants are asserted:
///
/// * the arms never return contradictory *proofs* (Unknown is legal for
///   the incomplete search, exactly as in the fault ablation);
/// * at δ = 0 the joint cascade arm reproduces the single-factor fault
///   checker **exactly** — same verdict, same number of explored boxes
///   — because a point noise factor makes the product domain's split
///   sequence collapse to the fault domain's. This is the live
///   generic-core-vs-instantiation equivalence check (the timing
///   trajectory against pre-refactor runs lives in `fault_ablation`).
fn joint_ablation_rows() -> Vec<JointAblationRow> {
    use fannet_faults::{FaultModel, JointChecker};
    use fannet_verify::bab::ScreeningTier;
    use fannet_verify::region::NoiseRegion;
    let cs = paper_study();
    let inputs = fannet_bench::paper_test_inputs();
    let labels = cs.test5.labels();
    let idx = 6;
    let variants: [(&'static str, FaultCheckerConfig); 2] = [
        (
            "interval",
            FaultCheckerConfig::default().with_screening(ScreeningTier::Interval),
        ),
        ("cascade", FaultCheckerConfig::default()),
    ];
    let mut rows = Vec::new();
    for &(delta, eps_numer) in &[(0i64, 1i64), (0, 6), (2, 3), (5, 3), (5, 10)] {
        let model = FaultModel::WeightNoise {
            rel_eps: fannet_numeric::Rational::new(i128::from(eps_numer), 100),
        };
        let noise = NoiseRegion::symmetric(delta, 5);
        let mut baseline: Option<&'static str> = None;
        for (name, config) in &variants {
            let checker = JointChecker::new(cs.exact_net.clone(), config.clone());
            let t = Instant::now();
            let (outcome, stats) = checker
                .check(&inputs[idx], labels[idx], &noise, &model)
                .expect("valid query");
            let seconds = t.elapsed().as_secs_f64();
            let verdict = outcome.wire_name();
            match baseline {
                None => baseline = Some(verdict),
                Some(expected) => assert!(
                    verdict == expected || verdict == "unknown" || expected == "unknown",
                    "joint screening arms return contradictory proofs at \
                     delta {delta} eps {eps_numer}/100: {expected} vs {verdict}"
                ),
            }
            if delta == 0 && *name == "cascade" {
                // δ = 0 anchor: the product search must collapse to the
                // fault checker's exact behaviour.
                let fault = FaultChecker::new(cs.exact_net.clone(), FaultCheckerConfig::default());
                let (fault_outcome, fault_stats) = fault
                    .check(&inputs[idx], labels[idx], &model)
                    .expect("valid query");
                assert_eq!(
                    verdict,
                    fault_outcome.wire_name(),
                    "joint δ=0 verdict must equal the fault checker's at eps {eps_numer}/100"
                );
                assert_eq!(
                    stats.boxes_visited, fault_stats.boxes_visited,
                    "joint δ=0 search shape must equal the fault checker's \
                     at eps {eps_numer}/100"
                );
            }
            rows.push(JointAblationRow {
                variant: name,
                delta,
                eps_numer,
                seconds,
                verdict,
                boxes_visited: stats.boxes_visited,
                stats,
            });
        }
    }
    rows
}

/// The batched-propagation benchmark (the PR-6 tentpole): a
/// deterministic frontier of sub-boxes — the shape the search's split
/// queue takes at wide radii — screened box-by-box through the scalar
/// [`FloatShadow`] and in K-lane groups through [`BatchFloatShadow`].
/// Timing the propagation directly (rather than a whole cascade run,
/// where the exact rational tier dominates wall time) isolates exactly
/// the cost the batch layout changes. Per-box verdicts are asserted
/// bit-identical, a full interval-screened search per arm pins the
/// end-to-end outcome, witness and counters, and at the wide radii
/// (±30% and up) the batched arm is asserted not slower than scalar.
///
/// [`FloatShadow`]: fannet_verify::propagate::FloatShadow
/// [`BatchFloatShadow`]: fannet_verify::BatchFloatShadow
fn batch_propagation_rows(deltas: &[i64]) -> Vec<BatchPropagationRow> {
    use fannet_verify::propagate::{classify_box_float, BoxVerdict, FloatShadow};
    use fannet_verify::{BatchFloatShadow, BatchWorkspace, BATCH_WIDTH};
    const POOL: usize = 4096;
    let cs = paper_study();
    let inputs = fannet_bench::paper_test_inputs();
    let labels = cs.test5.labels();
    let idx = 6;
    let shadow = FloatShadow::new(&cs.exact_net);
    let batched = BatchFloatShadow::from_shadow(&shadow);
    let enclosure = FloatShadow::enclose_input(&inputs[idx]);
    let excluded = ExclusionSet::new();
    let mut rows = Vec::new();
    for &delta in deltas {
        // Deterministic frontier: breadth-first bisection of the ±δ%
        // region into a pool of sub-boxes.
        let mut pool = vec![NoiseRegion::symmetric(delta, 5)];
        let mut at = 0usize;
        while pool.len() < POOL && at < 1 << 15 {
            let slot = at % pool.len();
            if let Some((a, b)) = pool[slot].split() {
                pool[slot] = a;
                pool.push(b);
            }
            at += 1;
        }

        // Scalar arm: one propagation per box, best of three passes.
        let mut scalar_secs = f64::INFINITY;
        let mut scalar_verdicts = Vec::new();
        for _ in 0..3 {
            scalar_verdicts.clear();
            let t = Instant::now();
            for region in &pool {
                let outputs = shadow.output_intervals(&enclosure, region);
                scalar_verdicts.push(classify_box_float(&outputs, labels[idx]));
            }
            scalar_secs = scalar_secs.min(t.elapsed().as_secs_f64());
        }

        // Batched arm: the same boxes in K-lane groups through one
        // shared workspace.
        let mut batched_secs = f64::INFINITY;
        let mut batched_verdicts = Vec::new();
        let mut ws = BatchWorkspace::default();
        for _ in 0..3 {
            batched_verdicts.clear();
            let t = Instant::now();
            for chunk in pool.chunks(BATCH_WIDTH) {
                let group: Vec<&NoiseRegion> = chunk.iter().collect();
                batched_verdicts.extend(batched.classify_batch(
                    &enclosure,
                    labels[idx],
                    &group,
                    &mut ws,
                ));
            }
            batched_secs = batched_secs.min(t.elapsed().as_secs_f64());
        }

        assert_eq!(
            batched_verdicts, scalar_verdicts,
            "batched propagation changed a frontier verdict at ±{delta}%"
        );
        if delta >= 30 {
            assert!(
                batched_secs <= scalar_secs,
                "batched propagation must not be slower than the scalar shadow \
                 at ±{delta}% ({:.3}ms vs {:.3}ms over {} boxes)",
                batched_secs * 1e3,
                scalar_secs * 1e3,
                pool.len(),
            );
        }

        // End-to-end pin: the full interval-screened search with and
        // without batching returns a bit-identical outcome (witness
        // included) and counters.
        let mut search = Vec::new();
        for batching in [false, true] {
            let checker = RegionChecker::new(&cs.exact_net, CheckerConfig::screened())
                .with_batching(batching);
            let region = NoiseRegion::symmetric(delta, 5);
            search.push(
                checker
                    .check_region(&inputs[idx], labels[idx], &region, &excluded)
                    .expect("widths"),
            );
        }
        assert_eq!(
            search[1], search[0],
            "batched screening changed the search outcome or counters at ±{delta}%"
        );
        let (search_outcome, search_stats) = search.pop().expect("two search arms");

        let decided = scalar_verdicts
            .iter()
            .filter(|v| !matches!(v, BoxVerdict::Unknown))
            .count();
        for (variant, seconds) in [("scalar", scalar_secs), ("batched", batched_secs)] {
            rows.push(BatchPropagationRow {
                variant,
                delta,
                seconds,
                frontier_boxes: pool.len(),
                decided_boxes: decided,
                search_robust: search_outcome.is_robust(),
                search_stats,
            });
        }
    }
    rows
}

/// The budgeted-parallel benchmark (the PR-6 tentpole, search side):
/// the joint (δ, ε) tolerance frontier — a bisection of budgeted
/// product-domain searches — probed with 1, 2 and 4 worker threads.
/// The budgeted search speculates in parallel but replays serially, so
/// the certified ε, every probe verdict and the merged counters are
/// bit-identical across thread counts by construction; each multi-thread
/// arm is asserted equal to the serial arm before its row is recorded.
fn budgeted_parallel_rows() -> Vec<BudgetedParallelRow> {
    use fannet_faults::{JointChecker, ToleranceSearch};
    let cs = paper_study();
    let inputs = fannet_bench::paper_test_inputs();
    let labels = cs.test5.labels();
    let idx = 6;
    let delta = 2;
    let search = ToleranceSearch::new(50, 10);
    let mut rows = Vec::new();
    let mut baseline = None;
    for threads in [1usize, 2, 4] {
        let checker = JointChecker::new(cs.exact_net.clone(), FaultCheckerConfig::default())
            .with_threads(threads);
        let t = Instant::now();
        let (tolerance, stats) = checker
            .tolerance(&inputs[idx], labels[idx], delta, &search)
            .expect("valid query");
        let seconds = t.elapsed().as_secs_f64();
        match &baseline {
            None => baseline = Some((tolerance.clone(), stats)),
            Some((serial_tolerance, serial_stats)) => {
                assert_eq!(
                    &tolerance, serial_tolerance,
                    "budgeted search at {threads} threads certified a different \
                     joint tolerance than the serial search"
                );
                assert_eq!(
                    &stats, serial_stats,
                    "budgeted search at {threads} threads visited a different \
                     frontier than the serial search"
                );
            }
        }
        rows.push(BudgetedParallelRow {
            threads,
            delta,
            seconds,
            robust_eps: tolerance.robust_eps.as_ref().map(ToString::to_string),
            boxes_visited: stats.boxes_visited,
            stats,
        });
    }
    rows
}

/// The engine-throughput batch: ≥ 50 mixed tolerance/check queries over
/// the trained 5–20–2 case-study network, answered three ways — cold
/// serial-exact, cold screened, and through one resident engine — with
/// every verdict and witness cross-checked between the arms.
fn engine_throughput_report() -> EngineThroughputReport {
    let cs = paper_study();
    let inputs = fannet_bench::paper_test_inputs();
    let labels = cs.test5.labels();
    let correct: Vec<usize> = (0..inputs.len())
        .filter(|&i| cs.exact_net.classify(&inputs[i]).expect("width") == labels[i])
        .collect();

    // Per input and round: one radius search plus checks at sweep-style
    // deltas — the nested access pattern every paper analysis produces.
    // Two rounds: re-analysis of the same questions is the serving
    // regime (sweep rebuilds, dashboard refreshes, repeated clients),
    // and it is exactly what a cold start cannot amortize.
    const MAX_DELTA: i64 = 25;
    const CHECK_DELTAS: [i64; 4] = [3, 8, 14, 20];
    const ROUNDS: usize = 2;
    let batch: Vec<usize> = correct.iter().copied().take(10).collect();
    let tolerance_queries = ROUNDS * batch.len();
    let check_queries = ROUNDS * batch.len() * CHECK_DELTAS.len();

    // Arm 1: cold serial-exact (the seed's `check_region` pattern).
    let t = Instant::now();
    let mut cold_radii = Vec::new();
    let mut cold_checks = Vec::new();
    for _ in 0..ROUNDS {
        for &i in &batch {
            cold_radii.push(tolerance::robustness_radius(
                &cs.exact_net,
                &inputs[i],
                labels[i],
                MAX_DELTA,
            ));
            for delta in CHECK_DELTAS {
                let (out, _) = find_counterexample(
                    &cs.exact_net,
                    &inputs[i],
                    labels[i],
                    &NoiseRegion::symmetric(delta, 5),
                )
                .expect("widths");
                cold_checks.push(out);
            }
        }
    }
    let cold_serial_exact_seconds = t.elapsed().as_secs_f64();

    // Arm 2: cold screened (same tiers as the engine, no cache).
    let screened = CheckerConfig::screened();
    let t = Instant::now();
    for _ in 0..ROUNDS {
        for &i in &batch {
            let _ = tolerance::robustness_radius_with(
                &cs.exact_net,
                &inputs[i],
                labels[i],
                MAX_DELTA,
                &screened,
            );
            for delta in CHECK_DELTAS {
                let _ = find_counterexample_with(
                    &cs.exact_net,
                    &inputs[i],
                    labels[i],
                    &NoiseRegion::symmetric(delta, 5),
                    &screened,
                )
                .expect("widths");
            }
        }
    }
    let cold_screened_seconds = t.elapsed().as_secs_f64();

    // Arm 3: one resident engine, shared verdict cache.
    let engine = Engine::new(cs.exact_net.clone(), EngineConfig::serving());
    let t = Instant::now();
    let mut engine_radii = Vec::new();
    let mut engine_checks = Vec::new();
    for _ in 0..ROUNDS {
        for &i in &batch {
            engine_radii.push(
                engine
                    .tolerance(&inputs[i], labels[i], MAX_DELTA)
                    .expect("widths"),
            );
            for delta in CHECK_DELTAS {
                let reply = engine
                    .check(&inputs[i], labels[i], &NoiseRegion::symmetric(delta, 5))
                    .expect("widths");
                engine_checks.push(reply.outcome);
            }
        }
    }
    let engine_seconds = t.elapsed().as_secs_f64();

    assert_eq!(
        engine_radii, cold_radii,
        "engine radii must equal cold radii"
    );
    assert_eq!(
        engine_checks, cold_checks,
        "engine verdicts and witnesses must equal the cold path's"
    );

    EngineThroughputReport {
        queries: tolerance_queries + check_queries,
        tolerance_queries,
        check_queries,
        cold_serial_exact_seconds,
        cold_screened_seconds,
        engine_seconds,
        speedup_vs_cold_serial: cold_serial_exact_seconds / engine_seconds,
        speedup_vs_cold_screened: cold_screened_seconds / engine_seconds,
        engine_stats: engine.stats(),
    }
}

/// The JSONL batch each connection pipelines in [`server_throughput_report`]:
/// per input one tolerance search, checks at two deltas and a joint
/// input×weight query — the mixed serving load — with ids keyed by line
/// position so every arm's responses line up.
fn server_workload(inputs: &[Vec<fannet_numeric::Rational>], labels: &[usize]) -> String {
    let mut lines = String::new();
    let mut id = 0u64;
    for (input, &label) in inputs.iter().zip(labels) {
        let quoted: Vec<String> = input.iter().map(|r| format!("\"{r}\"")).collect();
        let vec = quoted.join(",");
        id += 1;
        lines += &format!(
            "{{\"op\":\"tolerance\",\"id\":{id},\"input\":[{vec}],\"label\":{label},\"max_delta\":15}}\n"
        );
        for delta in [3, 8] {
            id += 1;
            lines += &format!(
                "{{\"op\":\"check\",\"id\":{id},\"input\":[{vec}],\"label\":{label},\"delta\":{delta}}}\n"
            );
        }
        id += 1;
        lines += &format!(
            "{{\"op\":\"joint_check\",\"id\":{id},\"input\":[{vec}],\"label\":{label},\"delta\":2,\"model\":\"weight-noise\",\"eps\":\"1/100\"}}\n"
        );
    }
    lines
}

/// Resident `serve_tcp` front end at 1/4/8 loopback connections vs the
/// one-shot pipe baseline (fresh engine per batch), verdicts asserted
/// identical. The resident arms win by amortizing engine start-up and
/// sharing the verdict cache across connections — a gain that holds on
/// a single core, where thread parallelism alone could not.
fn server_throughput_report() -> ServerThroughputReport {
    let cs = paper_study();
    let inputs = fannet_bench::paper_test_inputs();
    let labels = cs.test5.labels();
    let batch: Vec<usize> = (0..inputs.len())
        .filter(|&i| cs.exact_net.classify(&inputs[i]).expect("width") == labels[i])
        .take(6)
        .collect();
    let batch_inputs: Vec<Vec<fannet_numeric::Rational>> =
        batch.iter().map(|&i| inputs[i].clone()).collect();
    let batch_labels: Vec<usize> = batch.iter().map(|&i| labels[i]).collect();
    let workload = server_workload(&batch_inputs, &batch_labels);
    let requests = workload.lines().count();

    // Pipe baseline: every batch pays a fresh engine (cold verdict
    // cache), like piping the file into its own `fannet serve --once`.
    const PIPE_ROUNDS: usize = 2;
    let t = Instant::now();
    let mut reference = Vec::new();
    for _ in 0..PIPE_ROUNDS {
        let engine = Arc::new(Engine::new(cs.exact_net.clone(), EngineConfig::serving()));
        reference = answer_lines(engine, &SessionConfig::with_workers(1), &workload);
    }
    let pipe_seconds = t.elapsed().as_secs_f64();
    let pipe_qps = (PIPE_ROUNDS * requests) as f64 / pipe_seconds;
    // Everything before any `source` attribution is cache-independent.
    let stable = |line: &str| line.split(",\"source\":").next().unwrap().to_string();
    let want: Vec<String> = reference.iter().map(|l| stable(l)).collect();

    let mut arms = Vec::new();
    for connections in [1usize, 4, 8] {
        let engine = Arc::new(Engine::new(cs.exact_net.clone(), EngineConfig::serving()));
        let stop = Arc::new(AtomicBool::new(false));
        let (ready_tx, ready_rx) = mpsc::channel();
        let server = std::thread::spawn({
            let stop = Arc::clone(&stop);
            move || {
                serve_tcp(
                    engine,
                    &SessionConfig::with_workers(2),
                    "127.0.0.1:0",
                    move || stop.load(Ordering::Relaxed),
                    move |addr| {
                        let _ = ready_tx.send(addr);
                    },
                )
            }
        });
        let addr = ready_rx.recv().expect("listener binds");
        let t = Instant::now();
        let answers: Vec<Vec<String>> = std::thread::scope(|scope| {
            let clients: Vec<_> = (0..connections)
                .map(|_| {
                    scope.spawn(|| {
                        use std::io::{BufRead as _, BufReader, Write as _};
                        let mut stream =
                            std::net::TcpStream::connect(addr).expect("loopback connect");
                        stream.write_all(workload.as_bytes()).expect("batch sent");
                        let mut lines = Vec::with_capacity(requests);
                        let mut reader = BufReader::new(stream);
                        for _ in 0..requests {
                            let mut line = String::new();
                            reader.read_line(&mut line).expect("response line");
                            lines.push(line.trim_end().to_string());
                        }
                        lines
                    })
                })
                .collect();
            clients
                .into_iter()
                .map(|c| c.join().expect("client thread"))
                .collect()
        });
        let seconds = t.elapsed().as_secs_f64();
        stop.store(true, Ordering::Relaxed);
        server
            .join()
            .expect("server thread")
            .expect("serve_tcp exits cleanly");
        for (c, lines) in answers.iter().enumerate() {
            let got: Vec<String> = lines.iter().map(|l| stable(l)).collect();
            assert_eq!(
                got, want,
                "connection {c} of {connections}: verdicts must equal the pipe baseline's"
            );
        }
        let total = connections * requests;
        let qps = total as f64 / seconds;
        arms.push(ServerThroughputArm {
            connections,
            requests: total,
            seconds,
            qps,
            speedup_vs_pipe: qps / pipe_qps,
        });
    }

    ServerThroughputReport {
        requests_per_connection: requests,
        pipe_rounds: PIPE_ROUNDS,
        pipe_seconds,
        pipe_qps,
        arms,
    }
}

/// Queue-wait attribution under contention (the PR-9 headline): the
/// same mixed workload as [`server_throughput_report`] runs with
/// `"trace":true` on every request at 1/4/8 loopback connections, so
/// each response's trace carries the front end's `queue_ns` stamp.
/// Verdicts are asserted identical to an untraced single-worker
/// reference — attribution must observe scheduling, never change
/// answers — and each arm books the queue-wait share of the accounted
/// per-request time (queue wait vs solver wall time).
fn queue_attribution_report() -> Vec<QueueAttributionRow> {
    let cs = paper_study();
    let inputs = fannet_bench::paper_test_inputs();
    let labels = cs.test5.labels();
    let batch: Vec<usize> = (0..inputs.len())
        .filter(|&i| cs.exact_net.classify(&inputs[i]).expect("width") == labels[i])
        .take(6)
        .collect();
    let batch_inputs: Vec<Vec<fannet_numeric::Rational>> =
        batch.iter().map(|&i| inputs[i].clone()).collect();
    let batch_labels: Vec<usize> = batch.iter().map(|&i| labels[i]).collect();
    let workload = server_workload(&batch_inputs, &batch_labels);
    let requests = workload.lines().count();
    // The traced twin: every request opts into the per-query trace.
    let traced: String = workload
        .lines()
        .map(|line| format!("{},\"trace\":true}}\n", &line[..line.len() - 1]))
        .collect();

    // Untraced single-worker reference against a fresh engine: the
    // verdict baseline every traced arm must reproduce.
    let engine = Arc::new(Engine::new(cs.exact_net.clone(), EngineConfig::serving()));
    let reference = answer_lines(engine, &SessionConfig::with_workers(1), &workload);
    // Strip the trace object and the cache-dependent `source` before
    // comparing — everything before them is the answer. Lines without
    // either suffix keep their closing brace where the stripped ones
    // lost it, so trim it from both sides.
    let stable = |line: &str| {
        let line = line.split(",\"trace\":").next().unwrap();
        let line = line.split(",\"source\":").next().unwrap();
        line.trim_end_matches('}').to_string()
    };
    let want: Vec<String> = reference.iter().map(|l| stable(l)).collect();
    // Pulls the integer after `key` (e.g. `"queue_ns":`) out of a line.
    let field = |line: &str, key: &str| -> u64 {
        line.split(key)
            .nth(1)
            .and_then(|tail| tail.split(|c: char| !c.is_ascii_digit()).next())
            .and_then(|digits| digits.parse().ok())
            .unwrap_or(0)
    };

    let mut rows = Vec::new();
    for connections in [1usize, 4, 8] {
        let engine = Arc::new(Engine::new(cs.exact_net.clone(), EngineConfig::serving()));
        let stop = Arc::new(AtomicBool::new(false));
        let (ready_tx, ready_rx) = mpsc::channel();
        let server = std::thread::spawn({
            let stop = Arc::clone(&stop);
            move || {
                serve_tcp(
                    engine,
                    &SessionConfig::with_workers(2),
                    "127.0.0.1:0",
                    move || stop.load(Ordering::Relaxed),
                    move |addr| {
                        let _ = ready_tx.send(addr);
                    },
                )
            }
        });
        let addr = ready_rx.recv().expect("listener binds");
        let t = Instant::now();
        let answers: Vec<Vec<String>> = std::thread::scope(|scope| {
            let clients: Vec<_> = (0..connections)
                .map(|_| {
                    scope.spawn(|| {
                        use std::io::{BufRead as _, BufReader, Write as _};
                        let mut stream =
                            std::net::TcpStream::connect(addr).expect("loopback connect");
                        stream.write_all(traced.as_bytes()).expect("batch sent");
                        let mut lines = Vec::with_capacity(requests);
                        let mut reader = BufReader::new(stream);
                        for _ in 0..requests {
                            let mut line = String::new();
                            reader.read_line(&mut line).expect("response line");
                            lines.push(line.trim_end().to_string());
                        }
                        lines
                    })
                })
                .collect();
            clients
                .into_iter()
                .map(|c| c.join().expect("client thread"))
                .collect()
        });
        let seconds = t.elapsed().as_secs_f64();
        stop.store(true, Ordering::Relaxed);
        server
            .join()
            .expect("server thread")
            .expect("serve_tcp exits cleanly");

        let mut queue_ns_total = 0u64;
        let mut solver_wall_ns_total = 0u64;
        for (c, lines) in answers.iter().enumerate() {
            let got: Vec<String> = lines.iter().map(|l| stable(l)).collect();
            assert_eq!(
                got, want,
                "connection {c} of {connections}: traced verdicts must equal \
                 the untraced baseline's"
            );
            for line in lines {
                assert!(
                    line.contains("\"queue_ns\":"),
                    "every traced response carries its queue wait: {line}"
                );
                queue_ns_total += field(line, "\"queue_ns\":");
                solver_wall_ns_total += field(line, "\"wall_ns\":");
            }
        }
        let accounted = (queue_ns_total + solver_wall_ns_total).max(1);
        rows.push(QueueAttributionRow {
            connections,
            requests: connections * requests,
            seconds,
            queue_ns_total,
            solver_wall_ns_total,
            queue_share: queue_ns_total as f64 / accounted as f64,
        });
    }
    rows
}

/// `--bench-json` mode: run the ablation, print a table, write JSON.
fn run_bench_json(path: &str) {
    println!("checker ablation (screening tiers × parallel search)");
    let rows = checker_ablation_rows(&[5, 11, 15, 25, 50]);
    let mut serial_time = 0.0;
    for row in &rows {
        if row.variant == "serial_exact" {
            serial_time = row.seconds;
        }
        let speedup = if row.seconds > 0.0 {
            serial_time / row.seconds
        } else {
            0.0
        };
        println!(
            "±{:2}% {:18} {:>10.3}ms  {:>6.2}x  boxes {:>8}  screen {:>3.0}%",
            row.delta,
            row.variant,
            row.seconds * 1e3,
            speedup,
            row.stats.boxes_visited,
            100.0 * row.screen_hit_rate.unwrap_or(0.0),
        );
    }

    println!("\nzonotope ablation (interval-only vs cascade at wide noise)");
    let zonotope = zonotope_ablation_rows(&[15, 30, 50]);
    for pair in zonotope.chunks(2) {
        let [interval, cascade] = pair else {
            unreachable!("rows come in interval/cascade pairs")
        };
        println!(
            "±{:2}%: interval {:>8.1}ms / {:>6} boxes / {:>5} splits   \
             cascade {:>8.1}ms / {:>6} boxes / {:>5} splits   ({:.1}x fewer boxes)",
            interval.delta,
            interval.seconds * 1e3,
            interval.boxes_visited,
            interval.splits,
            cascade.seconds * 1e3,
            cascade.boxes_visited,
            cascade.splits,
            interval.boxes_visited as f64 / cascade.boxes_visited.max(1) as f64,
        );
    }

    println!("\ntier attribution (traced cascade: per-tier ns shares, verdicts vs untraced)");
    let attribution = tier_attribution_rows(&[15, 30, 50]);
    for row in &attribution {
        println!(
            "±{:2}%: {:>8.1}ms  interval {:>5.1}%  zonotope {:>5.1}%  exact {:>5.1}%  ({})",
            row.delta,
            row.seconds * 1e3,
            100.0 * row.interval_share,
            100.0 * row.zonotope_share,
            100.0 * row.exact_share,
            if row.robust {
                "robust"
            } else {
                "counterexample"
            },
        );
    }

    println!("\nfault ablation (weight-noise fault space: interval-only vs cascade)");
    let fault = fault_ablation_rows(&[1, 3, 6, 10, 20]);
    for pair in fault.chunks(2) {
        let [interval, cascade] = pair else {
            unreachable!("rows come in interval/cascade pairs")
        };
        println!(
            "eps {:>2}/100: interval {:>8.1}ms / {:>4} boxes / {:<10}  cascade {:>8.1}ms / {:>4} boxes / {:<10}",
            interval.eps_numer,
            interval.seconds * 1e3,
            interval.boxes_visited,
            interval.verdict,
            cascade.seconds * 1e3,
            cascade.boxes_visited,
            cascade.verdict,
        );
    }

    println!("\njoint ablation (input×weight product domain: interval-only vs cascade)");
    let joint = joint_ablation_rows();
    for pair in joint.chunks(2) {
        let [interval, cascade] = pair else {
            unreachable!("rows come in interval/cascade pairs")
        };
        println!(
            "δ ±{}% eps {:>2}/100: interval {:>8.1}ms / {:>4} boxes / {:<10}  cascade {:>8.1}ms / {:>4} boxes / {:<10}",
            interval.delta,
            interval.eps_numer,
            interval.seconds * 1e3,
            interval.boxes_visited,
            interval.verdict,
            cascade.seconds * 1e3,
            cascade.boxes_visited,
            cascade.verdict,
        );
    }

    println!("\nbatch propagation (scalar float shadow vs K-lane batched layout)");
    let batch = batch_propagation_rows(&[15, 30, 50]);
    for pair in batch.chunks(2) {
        let [scalar, batched] = pair else {
            unreachable!("rows come in scalar/batched pairs")
        };
        println!(
            "±{:2}%: scalar {:>8.1}ms   batched {:>8.1}ms   ({:.2}x over {} frontier \
             boxes, {} decided; search {})",
            scalar.delta,
            scalar.seconds * 1e3,
            batched.seconds * 1e3,
            scalar.seconds / batched.seconds.max(f64::EPSILON),
            batched.frontier_boxes,
            batched.decided_boxes,
            if batched.search_robust {
                "robust"
            } else {
                "counterexample"
            },
        );
    }

    println!("\nbudgeted parallel (joint tolerance frontier, speculate-then-replay)");
    let budgeted = budgeted_parallel_rows();
    let serial_seconds = budgeted[0].seconds;
    for row in &budgeted {
        println!(
            "{} threads: {:>8.1}ms  ({:.2}x, eps {}, {} boxes)",
            row.threads,
            row.seconds * 1e3,
            serial_seconds / row.seconds.max(f64::EPSILON),
            row.robust_eps.as_deref().unwrap_or("-"),
            row.boxes_visited,
        );
    }

    println!("\nengine throughput (resident verdict cache vs cold per-query starts)");
    let engine = engine_throughput_report();
    println!(
        "{} queries ({} tolerance + {} check): cold serial {:>8.1}ms  \
         cold screened {:>8.1}ms  engine {:>8.1}ms",
        engine.queries,
        engine.tolerance_queries,
        engine.check_queries,
        engine.cold_serial_exact_seconds * 1e3,
        engine.cold_screened_seconds * 1e3,
        engine.engine_seconds * 1e3,
    );
    println!(
        "speedup {:.2}x vs cold check_region ({:.2}x vs cold screened); cache: \
         {} exact hits, {} subsumption hits, {} misses",
        engine.speedup_vs_cold_serial,
        engine.speedup_vs_cold_screened,
        engine.engine_stats.exact_hits,
        engine.engine_stats.subsumption_hits,
        engine.engine_stats.misses,
    );
    assert!(
        engine.engine_stats.subsumption_hits > 0,
        "the mixed batch must exercise subsumption"
    );

    println!("\nserver throughput (resident TCP front end vs one-shot pipe)");
    let server = server_throughput_report();
    println!(
        "pipe baseline: {} requests/batch × {} rounds  {:>8.1}ms  {:>8.1} qps",
        server.requests_per_connection,
        server.pipe_rounds,
        server.pipe_seconds * 1e3,
        server.pipe_qps,
    );
    for arm in &server.arms {
        println!(
            "{:>2} connections: {:>4} requests  {:>8.1}ms  {:>8.1} qps  ({:.2}x vs pipe)",
            arm.connections,
            arm.requests,
            arm.seconds * 1e3,
            arm.qps,
            arm.speedup_vs_pipe,
        );
        assert!(
            arm.connections == 1 || arm.qps > server.pipe_qps,
            "multi-connection arms must beat the one-shot pipe baseline \
             ({} connections: {:.1} qps vs pipe {:.1} qps)",
            arm.connections,
            arm.qps,
            server.pipe_qps,
        );
    }

    println!("\nqueue attribution (traced mixed load: queue-wait share of request time)");
    let queue = queue_attribution_report();
    for row in &queue {
        println!(
            "{:>2} connections: {:>4} requests  {:>8.1}ms  queued {:>8.1}ms  \
             solver {:>8.1}ms  ({:>5.1}% of accounted time in queue)",
            row.connections,
            row.requests,
            row.seconds * 1e3,
            row.queue_ns_total as f64 / 1e6,
            row.solver_wall_ns_total as f64 / 1e6,
            100.0 * row.queue_share,
        );
    }

    let json = serde_json::to_string_pretty(&AblationReport {
        checker_ablation: rows,
        zonotope_ablation: zonotope,
        tier_attribution: attribution,
        fault_ablation: fault,
        joint_ablation: joint,
        batch_propagation: batch,
        budgeted_parallel: budgeted,
        engine_throughput: engine,
        server_throughput: server,
        queue_attribution: queue,
    })
    .expect("ablation report serializes");
    std::fs::write(path, &json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    println!("wrote {path}");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(pos) = args.iter().position(|a| a == "--bench-json") {
        let Some(path) = args.get(pos + 1) else {
            fannet_obs::log::error(
                "fannet_bench::repro",
                "--bench-json requires a path argument",
                &[("usage", "repro [--bench-json <path>]".into())],
            );
            std::process::exit(2);
        };
        run_bench_json(path);
        return;
    }

    let started = Instant::now();
    println!("FANNet (DATE 2020) reproduction — full experiment regeneration");

    // =====================================================================
    header("E1/E2 — Fig. 3: FSM state-space accounting");
    let fig3b = PaperFsm::without_noise(2);
    println!(
        "Fig. 3b (no noise):        measured {} states / {} transitions   (paper: 3 / 6)",
        fig3b.states(),
        fig3b.transitions()
    );
    let fig3c = PaperFsm::with_noise(2, 6);
    println!(
        "Fig. 3c (noise [0,1]%x6):  measured {} states / {} transitions   (paper: 65 / 4160)",
        fig3c.states(),
        fig3c.transitions()
    );
    println!("\nstate-space growth, ±Δ on the 5 input nodes (paper: \"grows exponentially\"):");
    for row in growth_table(&[0, 1, 2, 5, 11, 25, 50], 5) {
        println!(
            "  ±{:2}%: {:>15} states {:>24} transitions",
            row.delta, row.states, row.transitions
        );
    }

    // =====================================================================
    header("E3 — §V-A: dataset, training and accuracy");
    let cs = paper_study();
    println!(
        "dataset: {} genes, train {} (AML {}/ALL {}), test {} (AML {}/ALL {})",
        cs.data.train.features(),
        cs.train5.len(),
        cs.train5.class_counts()[L0_AML],
        cs.train5.class_counts()[L1_ALL],
        cs.test5.len(),
        cs.test5.class_counts()[L0_AML],
        cs.test5.class_counts()[L1_ALL],
    );
    println!(
        "training-set L1 fraction: measured {:.1}%   (paper: ~70%)",
        100.0 * cs.train5.label_fraction(L1_ALL)
    );
    println!("mRMR-selected genes: {:?}", cs.selection.features);
    println!(
        "train accuracy: measured {:.2}%   (paper: 100%)",
        100.0 * cs.train_accuracy()
    );
    println!(
        "test accuracy:  measured {:.2}%   (paper: 94.12%)",
        100.0 * cs.test_accuracy()
    );

    // =====================================================================
    header("E4–E8 — the full FANNet analysis (P1/P2/P3 + Fig. 4)");
    let t = Instant::now();
    let report = pipeline::run(
        &cs.exact_net,
        &cs.float_net,
        &cs.train5,
        &cs.test5,
        &AnalysisConfig::default(),
    );
    println!("(analysis wall time: {:?})\n", t.elapsed());
    println!("{}", report.render_text());
    println!(
        "noise tolerance: measured ±{}%   (paper: ±11%)",
        report.noise_tolerance()
    );
    let fault_eps: Vec<String> = report
        .fault
        .per_class_tolerance()
        .iter()
        .map(|eps| match eps {
            Some(e) => format!("{e} (~{:.3})", e.to_f64()),
            None => "n/a".to_string(),
        })
        .collect();
    println!(
        "per-class weight-fault tolerance eps: {fault_eps:?}   (fault workload, no paper analogue)"
    );
    println!(
        "misclassification flow: measured L0->L1 {} / L1->L0 {}   (paper: all L0->L1)",
        report.bias.flow(L0_AML, L1_ALL),
        report.bias.flow(L1_ALL, L0_AML)
    );
    let insensitive = report.sensitivity.positive_insensitive_nodes();
    println!(
        "positive-noise-insensitive nodes: measured {:?}   (paper: node i5)",
        insensitive
            .iter()
            .map(|n| format!("i{}", n + 1))
            .collect::<Vec<_>>()
    );
    println!(
        "inputs robust through ±50%: measured {}   (paper: \"noise even as large as 50% did not trigger misclassification\" for some inputs)",
        report.boundary.far_from_boundary().len()
    );

    // =====================================================================
    header("A1 — ablation: balanced-training bias check");
    let balanced_train = cs.train5.balanced_subsample(&mut StdRng::seed_from_u64(99));
    let norm = Affine::fit_max_abs(&balanced_train);
    let train_norm = norm.apply_dataset(&balanced_train);
    let mut net = init::fresh_network(
        &mut StdRng::seed_from_u64(0xFA_77E7),
        &[5, 20, 2],
        Activation::ReLU,
        init::Init::XavierUniform,
    );
    train::train(
        &mut net,
        train_norm.samples(),
        train_norm.labels(),
        &train::TrainConfig::paper(),
    )
    .expect("shapes fixed");
    let float_net = fold::fold_input_affine(&net, norm.scale(), norm.offset()).expect("width");
    let exact_net = quantize::to_rational_default(&float_net);
    let balanced_report = pipeline::run(
        &exact_net,
        &float_net,
        &balanced_train,
        &cs.test5,
        &AnalysisConfig::default(),
    );
    println!(
        "biased   (27/11 train): majority-flow {:.0}%  fragility L0 {:?} vs L1 {:?}",
        100.0 * report.bias.majority_flow_fraction(),
        report.bias.per_class_fragility[L0_AML],
        report.bias.per_class_fragility[L1_ALL],
    );
    println!(
        "balanced (11/11 train): majority-flow {:.0}%  fragility L0 {:?} vs L1 {:?}",
        100.0 * balanced_report.bias.majority_flow_fraction(),
        balanced_report.bias.per_class_fragility[L0_AML],
        balanced_report.bias.per_class_fragility[L1_ALL],
    );
    println!("(expectation: the directional signal weakens once training is balanced)");

    // =====================================================================
    header("A2 — ablation: branch-and-bound vs exhaustive grid");
    let inputs = fannet_bench::paper_test_inputs();
    let labels = cs.test5.labels();
    let idx = 6;
    for delta in [1i64, 2, 3] {
        let region = NoiseRegion::symmetric(delta, 5);
        let t0 = Instant::now();
        let (exh, exh_stats) = check_region_exhaustive(
            &cs.exact_net,
            &inputs[idx],
            labels[idx],
            &region,
            &ExclusionSet::new(),
        )
        .expect("widths");
        let exh_time = t0.elapsed();
        let t1 = Instant::now();
        let (bab_out, bab_stats) =
            find_counterexample(&cs.exact_net, &inputs[idx], labels[idx], &region).expect("widths");
        let bab_time = t1.elapsed();
        assert_eq!(exh.is_robust(), bab_out.is_robust(), "checkers must agree");
        println!(
            "±{delta}%: exhaustive {:>10?} ({} evals)   bab {:>10?} ({} boxes, {} evals) — verdicts agree",
            exh_time,
            exh_stats.exact_evals,
            bab_time,
            bab_stats.boxes_visited,
            bab_stats.exact_evals
        );
    }
    for delta in [11i64, 50] {
        let region = NoiseRegion::symmetric(delta, 5);
        let t1 = Instant::now();
        let (_, stats) =
            find_counterexample(&cs.exact_net, &inputs[idx], labels[idx], &region).expect("widths");
        println!(
            "±{delta}%: exhaustive would need {} evals; bab proved it in {:?} ({} boxes)",
            region.point_count(),
            t1.elapsed(),
            stats.boxes_visited
        );
    }

    // =====================================================================
    header("A3 — ablation: mRMR vs variance vs random gene selection");
    let columns = cs.data.train.columns();
    let train_labels = cs.data.train.labels();
    let informative = &cs.data.informative_genes;
    let hit = |features: &[usize]| {
        features
            .iter()
            .filter(|&&g| {
                informative
                    .iter()
                    .any(|&i| g >= i && g <= i + cs.data.config.redundant_per_informative)
            })
            .count()
    };
    let mid = select_mrmr(
        &columns,
        train_labels,
        5,
        MrmrScheme::Difference,
        Discretizer::SigmaBands,
    );
    let miq = select_mrmr(
        &columns,
        train_labels,
        5,
        MrmrScheme::Quotient,
        Discretizer::SigmaBands,
    );
    let var = select_by_variance(&columns, 5);
    let rnd = select_random(columns.len(), 5, 42);
    println!("signal genes recovered out of 5 selected:");
    println!(
        "  mRMR-MID: {}   features {:?}",
        hit(&mid.features),
        mid.features
    );
    println!(
        "  mRMR-MIQ: {}   features {:?}",
        hit(&miq.features),
        miq.features
    );
    println!(
        "  variance: {}   features {:?}",
        hit(&var.features),
        var.features
    );
    println!(
        "  random:   {}   features {:?}",
        hit(&rnd.features),
        rnd.features
    );

    // =====================================================================
    header("sanity: per-input robustness radii (boundary panel data)");
    let correct = behavior::correctly_classified(&cs.exact_net, &cs.test5);
    let tol = tolerance::analyze(&cs.exact_net, &cs.test5, &correct, 50);
    for r in &tol.per_input {
        let tag = match r.radius {
            Some(radius) => format!("±{radius}%"),
            None => "robust@50".to_string(),
        };
        print!("{}:{} ", r.index, tag);
    }
    println!();
    let b = bias::analyze(&report.adversarial, &tol, &cs.train5);
    println!(
        "fragility rates: L0 {:.2} vs L1 {:.2} (paper: L0 inputs more likely to flip)",
        b.fragility_rate(L0_AML),
        b.fragility_rate(L1_ALL)
    );

    println!("\ntotal wall time: {:?}", started.elapsed());
}
