//! # fannet-bench
//!
//! Benchmark harness for the FANNet (DATE 2020) reproduction.
//!
//! * One Criterion bench per paper artifact (`benches/fig3_statespace.rs`,
//!   `benches/fig4_*.rs`, `benches/p1_validation.rs`,
//!   `benches/p3_enumeration.rs`) plus the ablations
//!   (`checker_ablation.rs`, `mrmr_selection.rs`).
//! * `src/bin/repro.rs` regenerates every figure/table of the paper as
//!   text — the data behind EXPERIMENTS.md.
//!
//! This library crate only hosts the shared fixtures: the trained case
//! study is expensive enough (~100 ms) that benches build it once through
//! [`paper_study`]/[`small_study`].

use std::sync::OnceLock;

use fannet_core::casestudy::{build, CaseStudy, CaseStudyConfig};
use fannet_numeric::Rational;

/// The full-size (7129-gene) case study, built once per process.
pub fn paper_study() -> &'static CaseStudy {
    static STUDY: OnceLock<CaseStudy> = OnceLock::new();
    STUDY.get_or_init(|| build(&CaseStudyConfig::paper()))
}

/// The reduced (500-gene) case study, built once per process.
pub fn small_study() -> &'static CaseStudy {
    static STUDY: OnceLock<CaseStudy> = OnceLock::new();
    STUDY.get_or_init(|| build(&CaseStudyConfig::small()))
}

/// The exact rational inputs of the test split, cached.
pub fn paper_test_inputs() -> &'static Vec<Vec<Rational>> {
    static INPUTS: OnceLock<Vec<Vec<Rational>>> = OnceLock::new();
    INPUTS.get_or_init(|| {
        paper_study()
            .test5
            .samples()
            .iter()
            .map(|s| fannet_core::behavior::rational_input(s))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_cached_and_consistent() {
        let a = paper_study();
        let b = paper_study();
        assert!(std::ptr::eq(a, b), "fixture must be built once");
        assert_eq!(paper_test_inputs().len(), a.test5.len());
        assert_eq!(small_study().test5.len(), 34);
    }
}
