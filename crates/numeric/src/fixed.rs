//! Signed Q32.32 fixed-point arithmetic.
//!
//! FANNet targets networks deployed in embedded/safety-critical systems,
//! where inference typically runs on fixed-point datapaths rather than
//! floating point. [`Fixed`] models such a datapath: a signed 64-bit value
//! with 32 fractional bits, saturating on overflow (the usual DSP
//! convention), with rounding-to-nearest on multiplication.
//!
//! The exact decision procedure in `fannet-verify` never uses `Fixed`
//! (soundness requires [`Rational`]); `Fixed` exists so the
//! examples and benches can compare an "as-deployed" quantized datapath
//! against the exact model, and so quantization error itself can be studied.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

use serde::{Deserialize, Serialize};

use crate::rational::Rational;

/// Number of fractional bits in the Q32.32 format.
pub const FRAC_BITS: u32 = 32;
/// The scale factor `2^32` as an `i128`.
const SCALE: i128 = 1i128 << FRAC_BITS;

/// A signed Q32.32 fixed-point number with saturating arithmetic.
///
/// # Examples
///
/// ```
/// use fannet_numeric::Fixed;
/// let a = Fixed::from_f64(1.5);
/// let b = Fixed::from_f64(2.25);
/// assert_eq!((a * b).to_f64(), 3.375);
/// assert_eq!((a + b).to_f64(), 3.75);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Fixed {
    raw: i64,
}

impl Fixed {
    /// Zero in Q32.32.
    pub const ZERO: Fixed = Fixed { raw: 0 };
    /// One in Q32.32.
    pub const ONE: Fixed = Fixed {
        raw: 1i64 << FRAC_BITS,
    };
    /// The largest representable value (saturation bound).
    pub const MAX: Fixed = Fixed { raw: i64::MAX };
    /// The smallest representable value (saturation bound).
    pub const MIN: Fixed = Fixed { raw: i64::MIN };

    /// Builds a value from its raw Q32.32 bit pattern.
    #[must_use]
    pub const fn from_raw(raw: i64) -> Self {
        Fixed { raw }
    }

    /// Returns the raw Q32.32 bit pattern.
    #[must_use]
    pub const fn to_raw(self) -> i64 {
        self.raw
    }

    /// Converts from `f64`, rounding to nearest and saturating at the format
    /// bounds. NaN maps to zero.
    #[must_use]
    pub fn from_f64(v: f64) -> Self {
        if v.is_nan() {
            return Self::ZERO;
        }
        let scaled = v * SCALE as f64;
        if scaled >= i64::MAX as f64 {
            Self::MAX
        } else if scaled <= i64::MIN as f64 {
            Self::MIN
        } else {
            Fixed {
                raw: scaled.round_ties_even() as i64,
            }
        }
    }

    /// Converts from an integer, saturating at the format bounds.
    #[must_use]
    pub fn from_int(v: i64) -> Self {
        let wide = i128::from(v) << FRAC_BITS;
        Self::from_wide(wide)
    }

    /// Converts to the nearest `f64`.
    #[must_use]
    pub fn to_f64(self) -> f64 {
        self.raw as f64 / SCALE as f64
    }

    /// Converts to the *exactly equal* rational `raw / 2^32`.
    ///
    /// # Examples
    ///
    /// ```
    /// use fannet_numeric::{Fixed, Rational};
    /// assert_eq!(Fixed::from_f64(0.25).to_rational(), Rational::new(1, 4));
    /// ```
    #[must_use]
    pub fn to_rational(self) -> Rational {
        Rational::new(i128::from(self.raw), SCALE)
    }

    /// Rounds a rational to the nearest representable Q32.32 value,
    /// saturating at the format bounds.
    #[must_use]
    pub fn from_rational(r: Rational) -> Self {
        // round(r * 2^32) = floor(r * 2^32 + 1/2)
        let scaled = r.checked_mul(Rational::from_integer(SCALE));
        match scaled {
            Some(s) => {
                let half = Rational::new(1, 2);
                Self::from_wide((s + half).floor())
            }
            None => {
                if r.is_negative() {
                    Self::MIN
                } else {
                    Self::MAX
                }
            }
        }
    }

    fn from_wide(wide: i128) -> Self {
        if wide > i128::from(i64::MAX) {
            Self::MAX
        } else if wide < i128::from(i64::MIN) {
            Self::MIN
        } else {
            Fixed { raw: wide as i64 }
        }
    }

    /// Saturating addition.
    #[must_use]
    pub fn saturating_add(self, rhs: Self) -> Self {
        Fixed {
            raw: self.raw.saturating_add(rhs.raw),
        }
    }

    /// Saturating subtraction.
    #[must_use]
    pub fn saturating_sub(self, rhs: Self) -> Self {
        Fixed {
            raw: self.raw.saturating_sub(rhs.raw),
        }
    }

    /// Saturating multiplication with round-to-nearest-even on the dropped
    /// fractional bits.
    #[must_use]
    pub fn saturating_mul(self, rhs: Self) -> Self {
        let wide = i128::from(self.raw) * i128::from(rhs.raw);
        // Round to nearest: add half ulp before shifting (arith shift floors).
        let rounded = (wide + (1i128 << (FRAC_BITS - 1))) >> FRAC_BITS;
        Self::from_wide(rounded)
    }

    /// Saturating division; saturates (by sign) on division by zero, the
    /// customary behaviour for a non-trapping datapath.
    #[must_use]
    pub fn saturating_div(self, rhs: Self) -> Self {
        if rhs.raw == 0 {
            return if self.raw >= 0 { Self::MAX } else { Self::MIN };
        }
        let wide = (i128::from(self.raw) << FRAC_BITS) / i128::from(rhs.raw);
        Self::from_wide(wide)
    }

    /// Absolute value (saturating at `MAX` for `MIN`).
    #[must_use]
    pub fn abs(self) -> Self {
        if self.raw == i64::MIN {
            Self::MAX
        } else {
            Fixed {
                raw: self.raw.abs(),
            }
        }
    }

    /// The larger of `self` and `other`.
    #[must_use]
    pub fn max(self, other: Self) -> Self {
        if self.raw >= other.raw {
            self
        } else {
            other
        }
    }

    /// The smaller of `self` and `other`.
    #[must_use]
    pub fn min(self, other: Self) -> Self {
        if self.raw <= other.raw {
            self
        } else {
            other
        }
    }

    /// Rectified linear unit: `max(self, 0)`.
    #[must_use]
    pub fn relu(self) -> Self {
        self.max(Self::ZERO)
    }

    /// Returns `true` if the value is exactly zero.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.raw == 0
    }
}

impl Default for Fixed {
    fn default() -> Self {
        Self::ZERO
    }
}

impl fmt::Debug for Fixed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fixed({} ~ {})", self.raw, self.to_f64())
    }
}

impl fmt::Display for Fixed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f64())
    }
}

impl PartialOrd for Fixed {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Fixed {
    fn cmp(&self, other: &Self) -> Ordering {
        self.raw.cmp(&other.raw)
    }
}

impl Add for Fixed {
    type Output = Fixed;
    fn add(self, rhs: Self) -> Self::Output {
        self.saturating_add(rhs)
    }
}

impl Sub for Fixed {
    type Output = Fixed;
    fn sub(self, rhs: Self) -> Self::Output {
        self.saturating_sub(rhs)
    }
}

impl Mul for Fixed {
    type Output = Fixed;
    fn mul(self, rhs: Self) -> Self::Output {
        self.saturating_mul(rhs)
    }
}

impl Div for Fixed {
    type Output = Fixed;
    fn div(self, rhs: Self) -> Self::Output {
        self.saturating_div(rhs)
    }
}

impl Neg for Fixed {
    type Output = Fixed;
    fn neg(self) -> Self::Output {
        Fixed {
            raw: self.raw.checked_neg().unwrap_or(i64::MAX),
        }
    }
}

impl AddAssign for Fixed {
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl SubAssign for Fixed {
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl MulAssign for Fixed {
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl std::iter::Sum for Fixed {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Fixed::ZERO, |acc, x| acc + x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants() {
        assert_eq!(Fixed::ZERO.to_f64(), 0.0);
        assert_eq!(Fixed::ONE.to_f64(), 1.0);
        assert!(Fixed::MAX > Fixed::ONE);
        assert!(Fixed::MIN < -Fixed::ONE);
    }

    #[test]
    fn f64_round_trip_within_ulp() {
        for v in [
            0.0,
            1.0,
            -1.0,
            0.5,
            -0.125,
            std::f64::consts::PI,
            -1e4,
            1e-8,
        ] {
            let f = Fixed::from_f64(v);
            assert!(
                (f.to_f64() - v).abs() <= 1.0 / SCALE as f64,
                "round-trip error too large for {v}: got {}",
                f.to_f64()
            );
        }
    }

    #[test]
    fn nan_maps_to_zero() {
        assert_eq!(Fixed::from_f64(f64::NAN), Fixed::ZERO);
    }

    #[test]
    fn saturation_at_bounds() {
        assert_eq!(Fixed::from_f64(1e30), Fixed::MAX);
        assert_eq!(Fixed::from_f64(-1e30), Fixed::MIN);
        assert_eq!(Fixed::MAX + Fixed::ONE, Fixed::MAX);
        assert_eq!(Fixed::MIN - Fixed::ONE, Fixed::MIN);
        assert_eq!(Fixed::MAX * Fixed::MAX, Fixed::MAX);
        assert_eq!(Fixed::MIN * Fixed::MAX, Fixed::MIN);
    }

    #[test]
    fn exact_dyadic_multiplication() {
        let a = Fixed::from_f64(1.5);
        let b = Fixed::from_f64(-2.25);
        assert_eq!((a * b).to_f64(), -3.375);
        assert_eq!((a * Fixed::ZERO), Fixed::ZERO);
        assert_eq!((a * Fixed::ONE), a);
    }

    #[test]
    fn division() {
        let a = Fixed::from_f64(3.0);
        let b = Fixed::from_f64(2.0);
        assert_eq!((a / b).to_f64(), 1.5);
        assert_eq!(a / Fixed::ZERO, Fixed::MAX);
        assert_eq!((-a) / Fixed::ZERO, Fixed::MIN);
    }

    #[test]
    fn to_rational_is_exact() {
        let f = Fixed::from_f64(0.3125);
        assert_eq!(f.to_rational(), Rational::new(5, 16));
        assert_eq!(Fixed::ONE.to_rational(), Rational::ONE);
    }

    #[test]
    fn from_rational_rounds_to_nearest() {
        let third = Rational::new(1, 3);
        let f = Fixed::from_rational(third);
        let err = (f.to_rational() - third).abs();
        assert!(
            err <= Rational::new(1, SCALE),
            "rounding error {err} too large"
        );
        assert_eq!(Fixed::from_rational(Rational::new(1, 4)).to_f64(), 0.25);
    }

    #[test]
    fn from_int_and_ordering() {
        assert_eq!(Fixed::from_int(7).to_f64(), 7.0);
        assert_eq!(Fixed::from_int(-3).to_f64(), -3.0);
        assert!(Fixed::from_int(2) < Fixed::from_int(3));
        assert!(Fixed::from_int(-2) > Fixed::from_int(-3));
    }

    #[test]
    fn relu_min_max_abs() {
        let neg = Fixed::from_f64(-2.5);
        let pos = Fixed::from_f64(1.25);
        assert_eq!(neg.relu(), Fixed::ZERO);
        assert_eq!(pos.relu(), pos);
        assert_eq!(neg.abs(), Fixed::from_f64(2.5));
        assert_eq!(neg.max(pos), pos);
        assert_eq!(neg.min(pos), neg);
    }

    #[test]
    fn sum_iterator() {
        let total: Fixed = (1..=4).map(Fixed::from_int).sum();
        assert_eq!(total, Fixed::from_int(10));
    }

    #[test]
    fn serde_round_trip() {
        let f = Fixed::from_f64(-1.75);
        let json = serde_json::to_string(&f).unwrap();
        let back: Fixed = serde_json::from_str(&json).unwrap();
        assert_eq!(back, f);
    }

    #[test]
    fn debug_display_nonempty() {
        assert!(!format!("{:?}", Fixed::ZERO).is_empty());
        assert_eq!(Fixed::from_f64(0.5).to_string(), "0.5");
    }
}
