//! Exact interval arithmetic over [`Rational`] endpoints.
//!
//! The branch-and-bound verifier in `fannet-verify` abstracts a *box* of
//! noise vectors by propagating one [`Interval`] per neuron through the
//! network. Because endpoints are rationals and every transformer below is
//! exactly the tightest enclosure for its concrete operation (intervals are
//! closed under affine maps, `max` and ReLU), the propagation is both
//! **sound** (never loses a behaviour) and, for monotone paths, tight.
//!
//! Intervals are closed: `[lo, hi]` with `lo <= hi`.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::rational::Rational;

/// A closed rational interval `[lo, hi]`.
///
/// # Examples
///
/// ```
/// use fannet_numeric::{Interval, Rational};
/// let a = Interval::new(Rational::from_integer(-1), Rational::from_integer(2));
/// let b = Interval::point(Rational::from_integer(3));
/// let sum = a + b;
/// assert_eq!(sum, Interval::new(Rational::from_integer(2), Rational::from_integer(5)));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Interval {
    lo: Rational,
    hi: Rational,
}

impl Interval {
    /// The degenerate interval `[0, 0]`.
    pub const ZERO: Interval = Interval {
        lo: Rational::ZERO,
        hi: Rational::ZERO,
    };

    /// Creates `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    #[must_use]
    pub fn new(lo: Rational, hi: Rational) -> Self {
        assert!(
            lo <= hi,
            "interval lower bound {lo} exceeds upper bound {hi}"
        );
        Interval { lo, hi }
    }

    /// Creates the degenerate (single-point) interval `[v, v]`.
    #[must_use]
    pub const fn point(v: Rational) -> Self {
        Interval { lo: v, hi: v }
    }

    /// Creates the hull of two values given in either order.
    #[must_use]
    pub fn hull_of(a: Rational, b: Rational) -> Self {
        if a <= b {
            Interval { lo: a, hi: b }
        } else {
            Interval { lo: b, hi: a }
        }
    }

    /// The lower endpoint.
    #[must_use]
    pub const fn lo(&self) -> Rational {
        self.lo
    }

    /// The upper endpoint.
    #[must_use]
    pub const fn hi(&self) -> Rational {
        self.hi
    }

    /// The width `hi - lo`.
    #[must_use]
    pub fn width(&self) -> Rational {
        self.hi - self.lo
    }

    /// `true` if the interval is a single point.
    #[must_use]
    pub fn is_point(&self) -> bool {
        self.lo == self.hi
    }

    /// `true` if `v` lies within the closed interval.
    #[must_use]
    pub fn contains(&self, v: Rational) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// `true` if `other` is entirely within `self`.
    #[must_use]
    pub fn contains_interval(&self, other: &Interval) -> bool {
        self.lo <= other.lo && other.hi <= self.hi
    }

    /// `true` if the intervals share at least one point.
    #[must_use]
    pub fn intersects(&self, other: &Interval) -> bool {
        self.lo <= other.hi && other.lo <= self.hi
    }

    /// The midpoint `(lo + hi) / 2`.
    #[must_use]
    pub fn midpoint(&self) -> Rational {
        (self.lo + self.hi) * Rational::new(1, 2)
    }

    /// Smallest interval containing both operands.
    #[must_use]
    pub fn hull(&self, other: &Interval) -> Self {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Exact interval ReLU: `[max(lo,0), max(hi,0)]` (tight since ReLU is
    /// monotone).
    ///
    /// # Examples
    ///
    /// ```
    /// use fannet_numeric::{Interval, Rational};
    /// let x = Interval::new(Rational::from_integer(-2), Rational::from_integer(3));
    /// assert_eq!(x.relu(), Interval::new(Rational::ZERO, Rational::from_integer(3)));
    /// ```
    #[must_use]
    pub fn relu(&self) -> Self {
        Interval {
            lo: self.lo.relu(),
            hi: self.hi.relu(),
        }
    }

    /// Exact interval `max`: `[max(lo_a, lo_b), max(hi_a, hi_b)]` (tight
    /// since `max` is monotone in both arguments).
    #[must_use]
    pub fn max_interval(&self, other: &Interval) -> Self {
        Interval {
            lo: self.lo.max(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Multiplies by a scalar constant (endpoints swap for negative scale).
    #[must_use]
    pub fn scale(&self, k: Rational) -> Self {
        if k.is_negative() {
            Interval {
                lo: self.hi * k,
                hi: self.lo * k,
            }
        } else {
            Interval {
                lo: self.lo * k,
                hi: self.hi * k,
            }
        }
    }

    /// Adds a scalar constant to both endpoints.
    #[must_use]
    pub fn shift(&self, k: Rational) -> Self {
        Interval {
            lo: self.lo + k,
            hi: self.hi + k,
        }
    }

    /// General interval multiplication (min/max over the four endpoint
    /// products). Needed for the relative-noise transformer
    /// `x · (1 + p/100)` when both factors are intervals.
    #[must_use]
    pub fn mul_interval(&self, other: &Interval) -> Self {
        let p1 = self.lo * other.lo;
        let p2 = self.lo * other.hi;
        let p3 = self.hi * other.lo;
        let p4 = self.hi * other.hi;
        Interval {
            lo: p1.min(p2).min(p3).min(p4),
            hi: p1.max(p2).max(p3).max(p4),
        }
    }

    /// Splits at the midpoint into two halves covering `self`.
    ///
    /// For point intervals both halves equal `self`.
    #[must_use]
    pub fn bisect(&self) -> (Interval, Interval) {
        let mid = self.midpoint();
        (
            Interval {
                lo: self.lo,
                hi: mid,
            },
            Interval {
                lo: mid,
                hi: self.hi,
            },
        )
    }

    /// Splits an *integer grid* interval into two halves with no shared
    /// integer point: `[lo, m]` and `[m+1, hi]` where `m = floor(midpoint)`.
    ///
    /// Returns `None` if the interval contains at most one integer (cannot be
    /// split further on the grid).
    #[must_use]
    pub fn bisect_integer(&self) -> Option<(Interval, Interval)> {
        let lo_int = self.lo.ceil();
        let hi_int = self.hi.floor();
        if hi_int <= lo_int {
            return None;
        }
        let mid = (lo_int + hi_int).div_euclid(2);
        Some((
            Interval::new(Rational::from_integer(lo_int), Rational::from_integer(mid)),
            Interval::new(
                Rational::from_integer(mid + 1),
                Rational::from_integer(hi_int),
            ),
        ))
    }

    /// Number of integers contained in the closed interval.
    #[must_use]
    pub fn integer_count(&self) -> i128 {
        let lo = self.lo.ceil();
        let hi = self.hi.floor();
        (hi - lo + 1).max(0)
    }
}

impl fmt::Debug for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

impl std::ops::Add for Interval {
    type Output = Interval;
    fn add(self, rhs: Self) -> Self::Output {
        Interval {
            lo: self.lo + rhs.lo,
            hi: self.hi + rhs.hi,
        }
    }
}

impl std::ops::Sub for Interval {
    type Output = Interval;
    fn sub(self, rhs: Self) -> Self::Output {
        Interval {
            lo: self.lo - rhs.hi,
            hi: self.hi - rhs.lo,
        }
    }
}

impl std::ops::Neg for Interval {
    type Output = Interval;
    fn neg(self) -> Self::Output {
        Interval {
            lo: -self.hi,
            hi: -self.lo,
        }
    }
}

impl From<Rational> for Interval {
    fn from(v: Rational) -> Self {
        Interval::point(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int(a: i128, b: i128) -> Interval {
        Interval::new(Rational::from_integer(a), Rational::from_integer(b))
    }

    #[test]
    fn construction_and_accessors() {
        let i = int(-2, 5);
        assert_eq!(i.lo(), Rational::from_integer(-2));
        assert_eq!(i.hi(), Rational::from_integer(5));
        assert_eq!(i.width(), Rational::from_integer(7));
        assert!(!i.is_point());
        assert!(Interval::point(Rational::ONE).is_point());
    }

    #[test]
    #[should_panic(expected = "exceeds upper bound")]
    fn inverted_bounds_panic() {
        let _ = int(3, 2);
    }

    #[test]
    fn hull_of_orders_endpoints() {
        assert_eq!(
            Interval::hull_of(Rational::from_integer(5), Rational::from_integer(-1)),
            int(-1, 5)
        );
    }

    #[test]
    fn containment_and_intersection() {
        let outer = int(-10, 10);
        let inner = int(-1, 1);
        assert!(outer.contains_interval(&inner));
        assert!(!inner.contains_interval(&outer));
        assert!(outer.contains(Rational::ZERO));
        assert!(!inner.contains(Rational::from_integer(5)));
        assert!(outer.intersects(&inner));
        assert!(int(0, 2).intersects(&int(2, 4)));
        assert!(!int(0, 1).intersects(&int(2, 3)));
    }

    #[test]
    fn addition_subtraction_negation() {
        let a = int(-1, 2);
        let b = int(3, 4);
        assert_eq!(a + b, int(2, 6));
        assert_eq!(a - b, int(-5, -1));
        assert_eq!(-a, int(-2, 1));
    }

    #[test]
    fn scaling() {
        let a = int(-1, 2);
        assert_eq!(a.scale(Rational::from_integer(3)), int(-3, 6));
        assert_eq!(a.scale(Rational::from_integer(-2)), int(-4, 2));
        assert_eq!(a.scale(Rational::ZERO), Interval::ZERO);
        assert_eq!(a.shift(Rational::from_integer(10)), int(9, 12));
    }

    #[test]
    fn multiplication_covers_sign_cases() {
        // pos × pos
        assert_eq!(int(1, 2).mul_interval(&int(3, 4)), int(3, 8));
        // neg × pos
        assert_eq!(int(-2, -1).mul_interval(&int(3, 4)), int(-8, -3));
        // mixed × mixed
        assert_eq!(int(-2, 3).mul_interval(&int(-1, 4)), int(-8, 12));
        // symmetric around zero
        assert_eq!(int(-1, 1).mul_interval(&int(-1, 1)), int(-1, 1));
    }

    #[test]
    fn mul_interval_soundness_on_samples() {
        let a = int(-3, 2);
        let b = int(-1, 5);
        let prod = a.mul_interval(&b);
        for x in -3..=2 {
            for y in -1..=5 {
                let v = Rational::from_integer(x * y);
                assert!(prod.contains(v), "{prod:?} should contain {v}");
            }
        }
    }

    #[test]
    fn relu_transformer() {
        assert_eq!(int(-5, -1).relu(), int(0, 0));
        assert_eq!(int(-5, 3).relu(), int(0, 3));
        assert_eq!(int(2, 3).relu(), int(2, 3));
    }

    #[test]
    fn max_transformer() {
        assert_eq!(int(-5, 1).max_interval(&int(0, 2)), int(0, 2));
        assert_eq!(int(3, 4).max_interval(&int(0, 2)), int(3, 4));
        // Overlapping: lo/hi computed pointwise.
        assert_eq!(int(0, 5).max_interval(&int(2, 3)), int(2, 5));
    }

    #[test]
    fn hull_and_midpoint() {
        let a = int(-1, 1);
        let b = int(4, 6);
        assert_eq!(a.hull(&b), int(-1, 6));
        assert_eq!(a.midpoint(), Rational::ZERO);
        assert_eq!(b.midpoint(), Rational::from_integer(5));
    }

    #[test]
    fn bisect_covers() {
        let a = int(0, 10);
        let (l, r) = a.bisect();
        assert_eq!(l.hi(), r.lo());
        assert_eq!(l.lo(), a.lo());
        assert_eq!(r.hi(), a.hi());
    }

    #[test]
    fn bisect_integer_partitions_grid() {
        let a = int(-3, 4);
        let (l, r) = a.bisect_integer().expect("splittable");
        // Halves must not share an integer and must cover all of them.
        assert_eq!(l.hi() + Rational::ONE, r.lo());
        assert_eq!(l.integer_count() + r.integer_count(), a.integer_count());
        assert_eq!(a.integer_count(), 8);
        // Single-integer interval cannot be split.
        assert!(int(2, 2).bisect_integer().is_none());
        // Interval with no integer cannot be split.
        let tiny = Interval::new(Rational::new(1, 3), Rational::new(2, 3));
        assert!(tiny.bisect_integer().is_none());
        assert_eq!(tiny.integer_count(), 0);
    }

    #[test]
    fn from_rational_makes_point() {
        let p: Interval = Rational::new(1, 2).into();
        assert!(p.is_point());
        assert_eq!(p.lo(), Rational::new(1, 2));
    }

    #[test]
    fn display_nonempty() {
        assert_eq!(int(0, 1).to_string(), "[0, 1]");
        assert!(!format!("{:?}", int(0, 1)).is_empty());
    }
}
