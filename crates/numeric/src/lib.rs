//! # fannet-numeric
//!
//! Numeric substrate for the FANNet (DATE 2020) reproduction: exact rational
//! arithmetic, Q32.32 fixed point, rational interval arithmetic, and the
//! [`Scalar`] abstraction that lets the network code run over any of them.
//!
//! FANNet's verdicts ("no noise vector within ±Δ% flips this input") are
//! formal claims, so the entire decision path is carried out in exact
//! [`Rational`] arithmetic — floating point appears only in training and
//! reporting. [`Interval`] provides the abstract domain for the
//! branch-and-bound verifier, [`FloatInterval`] and [`AffineForm`] its
//! outward-rounded `f64` screening counterparts (interval and zonotope
//! tiers), and [`Fixed`] models the quantized datapath a deployed network
//! would use.
//!
//! ## Example
//!
//! ```
//! use fannet_numeric::{Interval, Rational, Scalar};
//!
//! // The paper's relative noise model: x' = x · (100 + p) / 100, exactly.
//! let x = Rational::from_integer(250);
//! let p = Rational::from_percent(-11);
//! assert_eq!(x * (Rational::ONE + p), Rational::new(445, 2));
//!
//! // Interval enclosure of all noise percentages in [-11, 11]:
//! let noise = Interval::new(Rational::from_percent(-11), Rational::from_percent(11));
//! let factor = noise.shift(Rational::ONE);
//! let image = Interval::point(x).mul_interval(&factor);
//! assert!(image.contains(Rational::new(445, 2)));
//! ```

pub mod affine;
pub mod fixed;
pub mod float_interval;
pub mod interval;
pub mod rational;
pub mod scalar;

pub use affine::AffineForm;
pub use fixed::Fixed;
pub use float_interval::lanes;
pub use float_interval::FloatInterval;
pub use interval::Interval;
pub use rational::Rational;
pub use scalar::Scalar;
