//! Outward-rounded `f64` interval arithmetic — the cheapest screening tier
//! of the tiered verifier (DESIGN.md §6; the zonotope tier of §10 builds
//! on the same outward-rounding discipline in [`crate::affine`]).
//!
//! A [`FloatInterval`] `[lo, hi]` is a **conservative enclosure**: every
//! transformer here widens its result outward by at least one ulp in each
//! direction, so for any exact-rational computation enclosed by the inputs,
//! the exact result is enclosed by the output. IEEE-754
//! round-to-nearest guarantees the computed double of `a ∘ b` differs from
//! the real value by strictly less than one ulp, hence stepping one ulp
//! outward ([`f64::next_down`]/[`f64::next_up`]) restores a true bound.
//!
//! This makes float-interval verdicts in `fannet-verify` *sound proofs*,
//! not heuristics: the float enclosure over-approximates the exact
//! [`Interval`](crate::Interval) semantics, so "always correct" /
//! "always wrong" classifications derived from it transfer to the exact
//! network. Only `Unknown` falls back to exact rational propagation.
//!
//! Endpoints may be infinite after overflow (still sound: the enclosure
//! only widens). NaN never escapes: constructors reject it, and every
//! transformer that could produce one from infinite endpoints (`∞ − ∞`,
//! `0 · ∞`, or a poisoned operand) degrades to
//! [`FloatInterval::EVERYTHING`] instead — the conservative top element —
//! so a NaN-bounded interval can never reach `classify_box_float`, where
//! NaN comparisons (always false) would silently read as a decided box.

use crate::affine::enclose_rational;
use crate::rational::Rational;

/// A closed `f64` interval `[lo, hi]` used as an outward-rounded enclosure
/// of exact rational quantities.
///
/// # Examples
///
/// ```
/// use fannet_numeric::{FloatInterval, Rational};
///
/// let x = FloatInterval::from_rational_point(Rational::new(1, 3));
/// assert!(x.lo() <= 1.0 / 3.0 && 1.0 / 3.0 <= x.hi());
/// assert!(x.contains_rational(Rational::new(1, 3)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FloatInterval {
    lo: f64,
    hi: f64,
}

/// Steps `lo` down and `hi` up by one ulp each, recovering sound bounds
/// from round-to-nearest results.
#[inline]
fn widen(lo: f64, hi: f64) -> FloatInterval {
    // `next_down(-inf)` and `next_up(inf)` are identities, so overflowing
    // endpoints stay infinite (sound). A NaN endpoint (∞−∞ from operands
    // that themselves overflowed, or a poisoned input) means the bound is
    // unknowable — degrade to the whole line rather than let a NaN whose
    // comparisons are all false masquerade as a decided interval.
    if lo.is_nan() || hi.is_nan() {
        return FloatInterval::EVERYTHING;
    }
    FloatInterval {
        lo: lo.next_down(),
        hi: hi.next_up(),
    }
}

impl FloatInterval {
    /// The degenerate interval `[0, 0]` (exact — zero is representable).
    pub const ZERO: FloatInterval = FloatInterval { lo: 0.0, hi: 0.0 };

    /// The whole line `[-∞, +∞]`, the top element (always sound).
    pub const EVERYTHING: FloatInterval = FloatInterval {
        lo: f64::NEG_INFINITY,
        hi: f64::INFINITY,
    };

    /// Creates `[lo, hi]` from already-sound endpoints.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either endpoint is NaN.
    #[must_use]
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(!lo.is_nan() && !hi.is_nan(), "NaN interval endpoint");
        assert!(
            lo <= hi,
            "interval lower bound {lo} exceeds upper bound {hi}"
        );
        FloatInterval { lo, hi }
    }

    /// The tightest float enclosure of the exact rational `v`.
    ///
    /// `Rational::to_f64` chains three roundings (numerator, denominator,
    /// quotient), so its result can be several ulps off for values whose
    /// components exceed 2⁵³; [`enclose_rational`] bounds the compound
    /// error, and exactly-convertible values get a **point** interval.
    #[must_use]
    pub fn from_rational_point(v: Rational) -> Self {
        let (c, slack) = enclose_rational(v);
        if slack == 0.0 {
            FloatInterval { lo: c, hi: c }
        } else {
            // `c ± slack` each round once more; one ulp outward restores
            // true bounds.
            widen(c - slack, c + slack)
        }
    }

    /// The float enclosure of the exact rational interval `[lo, hi]`.
    #[must_use]
    pub fn from_rationals(lo: Rational, hi: Rational) -> Self {
        debug_assert!(lo <= hi);
        let lo = Self::from_rational_point(lo);
        let hi = Self::from_rational_point(hi);
        FloatInterval {
            lo: lo.lo,
            hi: hi.hi,
        }
    }

    /// The lower endpoint (a true lower bound of every enclosed quantity).
    #[must_use]
    pub const fn lo(&self) -> f64 {
        self.lo
    }

    /// The upper endpoint (a true upper bound of every enclosed quantity).
    #[must_use]
    pub const fn hi(&self) -> f64 {
        self.hi
    }

    /// `true` if the exact rational `v` *provably* lies within the closed
    /// interval.
    ///
    /// Endpoints whose exact dyadic expansion fits `Rational` are compared
    /// exactly. A finite endpoint outside that range (subnormal-scale or
    /// beyond `i128`) is checked by a *sufficient* `f64` condition
    /// instead: `v.to_f64()` is within `n` neighbour gaps of `v` — one
    /// gap when numerator and denominator fit `f64` exactly (only the
    /// division rounds), four otherwise (three compounded roundings, see
    /// [`enclose_rational`]) — so `lo ≤ step_downⁿ(v_f)` implies `lo ≤ v`
    /// (and dually for `hi`). The function can under-report containment
    /// by a few ulp at such endpoints but never over-reports — it is the
    /// soundness oracle of the enclosure tests, so "unverifiable" must
    /// never read as "contained".
    #[must_use]
    pub fn contains_rational(&self, v: Rational) -> bool {
        fn step_down(mut v: f64, n: u32) -> f64 {
            for _ in 0..n {
                v = v.next_down();
            }
            v
        }
        fn step_up(mut v: f64, n: u32) -> f64 {
            for _ in 0..n {
                v = v.next_up();
            }
            v
        }
        const EXACT: i128 = 1 << 53;
        let steps = if v.numer().unsigned_abs() <= EXACT as u128 && v.denom() <= EXACT {
            1
        } else {
            4
        };
        let lo_ok = self.lo == f64::NEG_INFINITY
            || match Rational::from_f64_exact(self.lo) {
                Some(lo) => lo <= v,
                None => self.lo <= step_down(v.to_f64(), steps),
            };
        let hi_ok = self.hi == f64::INFINITY
            || match Rational::from_f64_exact(self.hi) {
                Some(hi) => v <= hi,
                None => step_up(v.to_f64(), steps) <= self.hi,
            };
        lo_ok && hi_ok
    }

    /// `true` if `other` lies entirely within `self`.
    #[must_use]
    pub fn contains_interval(&self, other: &FloatInterval) -> bool {
        self.lo <= other.lo && other.hi <= self.hi
    }

    /// Outward-rounded addition.
    #[must_use]
    pub fn add(&self, rhs: &FloatInterval) -> Self {
        widen(self.lo + rhs.lo, self.hi + rhs.hi)
    }

    /// Outward-rounded subtraction.
    #[must_use]
    pub fn sub(&self, rhs: &FloatInterval) -> Self {
        widen(self.lo - rhs.hi, self.hi - rhs.lo)
    }

    /// Negation (exact: IEEE negation has no rounding).
    #[must_use]
    pub fn neg(&self) -> Self {
        if self.lo.is_nan() || self.hi.is_nan() {
            return FloatInterval::EVERYTHING;
        }
        FloatInterval {
            lo: -self.hi,
            hi: -self.lo,
        }
    }

    /// Outward-rounded general interval multiplication (min/max over the
    /// four endpoint products) — alias of [`FloatInterval::mul_interval`].
    #[must_use]
    pub fn mul(&self, rhs: &FloatInterval) -> Self {
        self.mul_interval(rhs)
    }

    /// Outward-rounded general interval multiplication, the `f64`
    /// analogue of [`Interval::mul_interval`](crate::Interval::mul_interval).
    ///
    /// Rounding audit (mirroring the exact tier's semantics): each of the
    /// four endpoint products is a **single** round-to-nearest operation,
    /// so its computed value differs from the real product by strictly
    /// less than one ulp; `min`/`max` selection over finite doubles is
    /// exact; the result then steps one ulp outward on each side —
    /// the same per-operation discipline `AffineForm` applies through
    /// [`crate::affine::ulp_gap`]. Hence for any exact rationals enclosed
    /// by the operands, the exact product interval is enclosed by the
    /// result.
    ///
    /// Poisoned or overflowed operands degrade: `0 · ±∞` would produce a
    /// NaN whose comparisons are all false (a `min`/`max` chain over NaN
    /// products could silently select a garbage endpoint), so any
    /// non-finite endpoint — infinite after overflow, or NaN poison —
    /// returns [`FloatInterval::EVERYTHING`], the always-sound top.
    #[must_use]
    pub fn mul_interval(&self, rhs: &FloatInterval) -> Self {
        if !(self.lo.is_finite() && self.hi.is_finite() && rhs.lo.is_finite() && rhs.hi.is_finite())
        {
            return FloatInterval::EVERYTHING;
        }
        let p1 = self.lo * rhs.lo;
        let p2 = self.lo * rhs.hi;
        let p3 = self.hi * rhs.lo;
        let p4 = self.hi * rhs.hi;
        widen(p1.min(p2).min(p3).min(p4), p1.max(p2).max(p3).max(p4))
    }

    /// Outward-rounded ReLU: `[max(lo,0), max(hi,0)]` (the max itself is
    /// exact; no extra widening needed).
    ///
    /// A poisoned (NaN) endpoint degrades to [`FloatInterval::EVERYTHING`]
    /// first: `f64::max` *ignores* NaN operands, so `NaN.max(0.0)` would
    /// otherwise yield the decided-looking point `[0, 0]` from an interval
    /// that actually bounds nothing.
    #[must_use]
    pub fn relu(&self) -> Self {
        if self.lo.is_nan() || self.hi.is_nan() {
            return FloatInterval::EVERYTHING;
        }
        FloatInterval {
            lo: self.lo.max(0.0),
            hi: self.hi.max(0.0),
        }
    }

    /// Pointwise interval max (exact; NaN endpoints degrade to
    /// [`FloatInterval::EVERYTHING`] for the same reason as [`Self::relu`]).
    #[must_use]
    pub fn max_interval(&self, other: &FloatInterval) -> Self {
        if self.lo.is_nan() || self.hi.is_nan() || other.lo.is_nan() || other.hi.is_nan() {
            return FloatInterval::EVERYTHING;
        }
        FloatInterval {
            lo: self.lo.max(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// The width `hi - lo` (∞ if either endpoint is infinite).
    #[must_use]
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }
}

impl From<Rational> for FloatInterval {
    fn from(v: Rational) -> Self {
        FloatInterval::from_rational_point(v)
    }
}

/// Batched ("lane") forms of the interval transformers, operating on
/// parallel `lo`/`hi` endpoint slices — one lane per box of a batch
/// (DESIGN.md §16).
///
/// # Rounding-charge audit
///
/// Every kernel applies, per lane, the **exact same operation sequence**
/// as the scalar [`FloatInterval`] methods — same four endpoint
/// products, same min/max selection, same NaN degradation, same one-ulp
/// outward step per multiply and per add. The batched results are
/// therefore *bitwise equal* to the scalar chain, which is strictly
/// stronger than the enclosure lemma the tier needs (equality implies
/// enclosure) and is what lets batched screening keep verdicts,
/// witnesses and stats bit-identical to the scalar tier. A cheaper
/// audit — accumulate a fused row in round-to-nearest and charge a
/// single `next_down`/`next_up` at the end — is *not* sound without
/// tracking accumulated error bounds: two nearest-roundings can land
/// more than one ulp step from the true value near binade boundaries,
/// so that design was rejected (DESIGN.md §16). The batched win comes
/// from the contiguous lane layout (cache-friendly row sweeps, no
/// per-box allocation), not from weakening the rounding discipline.
///
/// Lanes hold only endpoints produced by the interval transformers, so
/// they are always valid (`lo ≤ hi`, never NaN) — the kernels construct
/// intervals from raw endpoints without re-validation.
pub mod lanes {
    use super::FloatInterval;

    /// Sets every lane of `lo`/`hi` to the interval `v`.
    ///
    /// # Panics
    ///
    /// Panics if the slices' lengths differ.
    pub fn fill_broadcast(lo: &mut [f64], hi: &mut [f64], v: FloatInterval) {
        assert_eq!(lo.len(), hi.len(), "lane slices must have equal length");
        lo.fill(v.lo);
        hi.fill(v.hi);
    }

    /// Lane-wise fused multiply-accumulate into the accumulator:
    /// `z[k] = z[k].add(&a[k].mul_interval(&w))` for every lane `k` —
    /// bitwise identical to the scalar chain per lane.
    ///
    /// # Panics
    ///
    /// Panics if the slices' lengths differ.
    pub fn mul_add_accumulate(
        z_lo: &mut [f64],
        z_hi: &mut [f64],
        a_lo: &[f64],
        a_hi: &[f64],
        w: FloatInterval,
    ) {
        let lanes = z_lo.len();
        assert_eq!(z_hi.len(), lanes, "lane slices must have equal length");
        assert_eq!(a_lo.len(), lanes, "lane slices must have equal length");
        assert_eq!(a_hi.len(), lanes, "lane slices must have equal length");
        for k in 0..lanes {
            let a = FloatInterval {
                lo: a_lo[k],
                hi: a_hi[k],
            };
            let z = FloatInterval {
                lo: z_lo[k],
                hi: z_hi[k],
            };
            let out = z.add(&a.mul_interval(&w));
            z_lo[k] = out.lo;
            z_hi[k] = out.hi;
        }
    }

    /// Lane-wise outward-rounded ReLU, bitwise identical to
    /// [`FloatInterval::relu`] per lane.
    ///
    /// # Panics
    ///
    /// Panics if the slices' lengths differ.
    pub fn relu_lanes(lo: &mut [f64], hi: &mut [f64]) {
        assert_eq!(lo.len(), hi.len(), "lane slices must have equal length");
        for k in 0..lo.len() {
            let v = FloatInterval {
                lo: lo[k],
                hi: hi[k],
            };
            let out = v.relu();
            lo[k] = out.lo;
            hi[k] = out.hi;
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        fn lane_values() -> Vec<FloatInterval> {
            vec![
                FloatInterval::new(-1.5, 2.25),
                FloatInterval::new(0.1, 0.3),
                FloatInterval::ZERO,
                FloatInterval::new(-7.0, -0.125),
                FloatInterval::EVERYTHING,
                FloatInterval::new(f64::MAX / 2.0, f64::MAX),
                FloatInterval::new(-1e-300, 1e-300),
            ]
        }

        #[test]
        fn mul_add_accumulate_is_bitwise_equal_to_the_scalar_chain() {
            let acts = lane_values();
            let weights = [
                FloatInterval::new(0.7, 0.7),
                FloatInterval::new(-2.5, 1.25),
                FloatInterval::ZERO,
                FloatInterval::EVERYTHING,
            ];
            let bias = FloatInterval::new(-0.4, 0.9);
            let lanes = acts.len();

            // Scalar reference: z = bias; z = z.add(a.mul(w)) per weight.
            let mut reference: Vec<FloatInterval> = vec![bias; lanes];
            for w in &weights {
                for (z, a) in reference.iter_mut().zip(&acts) {
                    *z = z.add(&a.mul(w));
                }
            }

            let mut z_lo = vec![0.0; lanes];
            let mut z_hi = vec![0.0; lanes];
            fill_broadcast(&mut z_lo, &mut z_hi, bias);
            let a_lo: Vec<f64> = acts.iter().map(FloatInterval::lo).collect();
            let a_hi: Vec<f64> = acts.iter().map(FloatInterval::hi).collect();
            for w in &weights {
                mul_add_accumulate(&mut z_lo, &mut z_hi, &a_lo, &a_hi, *w);
            }

            for k in 0..lanes {
                assert_eq!(
                    (z_lo[k].to_bits(), z_hi[k].to_bits()),
                    (reference[k].lo().to_bits(), reference[k].hi().to_bits()),
                    "lane {k} must match the scalar chain bit for bit"
                );
            }
        }

        #[test]
        fn relu_lanes_matches_scalar_relu() {
            let values = lane_values();
            let mut lo: Vec<f64> = values.iter().map(FloatInterval::lo).collect();
            let mut hi: Vec<f64> = values.iter().map(FloatInterval::hi).collect();
            relu_lanes(&mut lo, &mut hi);
            for (k, v) in values.iter().enumerate() {
                let want = v.relu();
                assert_eq!(
                    (lo[k].to_bits(), hi[k].to_bits()),
                    (want.lo().to_bits(), want.hi().to_bits()),
                    "lane {k}"
                );
            }
        }

        #[test]
        fn fill_broadcast_sets_every_lane() {
            let mut lo = vec![1.0; 5];
            let mut hi = vec![1.0; 5];
            fill_broadcast(&mut lo, &mut hi, FloatInterval::new(-2.0, 3.0));
            assert!(lo.iter().all(|&v| v == -2.0));
            assert!(hi.iter().all(|&v| v == 3.0));
        }

        #[test]
        #[should_panic(expected = "equal length")]
        fn mismatched_lane_lengths_panic() {
            let mut z_lo = vec![0.0; 3];
            let mut z_hi = vec![0.0; 3];
            mul_add_accumulate(
                &mut z_lo,
                &mut z_hi,
                &[0.0; 2],
                &[0.0; 2],
                FloatInterval::ZERO,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval::Interval;

    fn r(n: i128, d: i128) -> Rational {
        Rational::new(n, d)
    }

    /// The float enclosure of an exact interval must contain it.
    fn encloses(fi: &FloatInterval, exact: &Interval) -> bool {
        fi.contains_rational(exact.lo()) && fi.contains_rational(exact.hi())
    }

    #[test]
    fn point_enclosure_brackets_value() {
        for (n, d) in [(1, 3), (-7, 11), (22, 7), (1, 1_000_000), (-355, 113)] {
            let v = r(n, d);
            let fi = FloatInterval::from_rational_point(v);
            assert!(fi.contains_rational(v), "{fi:?} must contain {v}");
            assert!(fi.lo() < fi.hi(), "outward rounding must widen");
        }
    }

    #[test]
    fn exactly_representable_points_stay_tight() {
        let fi = FloatInterval::from_rational_point(r(1, 2));
        assert_eq!(
            (fi.lo(), fi.hi()),
            (0.5, 0.5),
            "half converts exactly, so the enclosure is a point"
        );
    }

    #[test]
    fn huge_component_rationals_stay_enclosed() {
        // Numerator and denominator both exceed 2^53: `to_f64` compounds
        // three roundings, which a single-ulp widen would not cover.
        let v = Rational::new(i128::MAX / 3, i128::MAX / 7 - 1); // ≈ 7/3
        let fi = FloatInterval::from_rational_point(v);
        assert!(fi.contains_rational(v), "{fi:?} must contain {v}");
        assert!(fi.lo() < fi.hi());
    }

    #[test]
    fn poisoned_endpoints_degrade_to_everything() {
        // NaN endpoints are unreachable through constructors, but release
        // builds must still never let one masquerade as a decided
        // interval; construct the poison directly (in-module access).
        let poisoned = FloatInterval {
            lo: f64::NAN,
            hi: f64::NAN,
        };
        assert_eq!(poisoned.relu(), FloatInterval::EVERYTHING);
        assert_eq!(poisoned.neg(), FloatInterval::EVERYTHING);
        assert_eq!(
            poisoned.max_interval(&FloatInterval::ZERO),
            FloatInterval::EVERYTHING
        );
        assert_eq!(
            FloatInterval::ZERO.max_interval(&poisoned),
            FloatInterval::EVERYTHING
        );
        assert_eq!(
            poisoned.mul(&FloatInterval::ZERO),
            FloatInterval::EVERYTHING,
            "NaN endpoints are non-finite, so mul degrades"
        );
        assert_eq!(
            poisoned.add(&FloatInterval::ZERO),
            FloatInterval::EVERYTHING
        );
        // A NaN interval contains nothing it can prove.
        assert!(!poisoned.contains_rational(r(0, 1)));
    }

    #[test]
    fn infinite_endpoint_arithmetic_never_yields_nan() {
        // [+∞, +∞] is constructible (overflowed bounds are legal); the
        // ∞ − ∞ and ∞ + (−∞) patterns must degrade, not poison.
        let pos = FloatInterval::new(f64::INFINITY, f64::INFINITY);
        assert_eq!(pos.sub(&pos), FloatInterval::EVERYTHING);
        assert_eq!(
            pos.add(&FloatInterval::EVERYTHING),
            FloatInterval::EVERYTHING
        );
        assert_eq!(
            FloatInterval::EVERYTHING.sub(&FloatInterval::EVERYTHING),
            FloatInterval::EVERYTHING
        );
        // ReLU of an overflowed-but-real interval keeps the sound bound.
        let relu = pos.relu();
        assert_eq!(relu.hi(), f64::INFINITY);
    }

    #[test]
    fn add_sub_enclose_exact() {
        let a_exact = Interval::new(r(1, 3), r(2, 3));
        let b_exact = Interval::new(r(-1, 7), r(5, 7));
        let a = FloatInterval::from_rationals(a_exact.lo(), a_exact.hi());
        let b = FloatInterval::from_rationals(b_exact.lo(), b_exact.hi());
        assert!(encloses(&a.add(&b), &(a_exact + b_exact)));
        assert!(encloses(&a.sub(&b), &(a_exact - b_exact)));
        assert!(encloses(&a.neg(), &(-a_exact)));
    }

    #[test]
    fn mul_encloses_exact() {
        let cases = [
            (
                Interval::new(r(1, 3), r(2, 3)),
                Interval::new(r(3, 7), r(9, 7)),
            ),
            (
                Interval::new(r(-5, 3), r(-1, 3)),
                Interval::new(r(1, 9), r(2, 9)),
            ),
            (
                Interval::new(r(-1, 3), r(1, 3)),
                Interval::new(r(-2, 7), r(3, 7)),
            ),
        ];
        for (ae, be) in cases {
            let a = FloatInterval::from_rationals(ae.lo(), ae.hi());
            let b = FloatInterval::from_rationals(be.lo(), be.hi());
            let prod = a.mul(&b);
            let exact = ae.mul_interval(&be);
            assert!(encloses(&prod, &exact), "{prod:?} must enclose {exact:?}");
        }
    }

    #[test]
    fn mul_interval_encloses_exact_general_products() {
        // The same cross-sign matrix the exact tier's mul_interval covers:
        // positive × positive, negative × positive, straddling × straddling.
        let cases = [
            (
                Interval::new(r(1, 3), r(2, 3)),
                Interval::new(r(3, 7), r(9, 7)),
            ),
            (
                Interval::new(r(-5, 3), r(-1, 3)),
                Interval::new(r(-2, 9), r(7, 9)),
            ),
            (
                Interval::new(r(-1, 3), r(1, 3)),
                Interval::new(r(-2, 7), r(3, 7)),
            ),
            (
                Interval::new(r(-11, 13), r(-5, 13)),
                Interval::new(r(-17, 19), r(-1, 19)),
            ),
        ];
        for (ae, be) in cases {
            let a = FloatInterval::from_rationals(ae.lo(), ae.hi());
            let b = FloatInterval::from_rationals(be.lo(), be.hi());
            let prod = a.mul_interval(&b);
            let exact = ae.mul_interval(&be);
            assert!(encloses(&prod, &exact), "{prod:?} must enclose {exact:?}");
            assert_eq!(prod, a.mul(&b), "mul is an alias of mul_interval");
        }
    }

    #[test]
    fn mul_interval_poisoned_and_infinite_endpoints_degrade() {
        // NaN poison (unreachable via constructors; in-module access) must
        // never survive the min/max chain as a decided-looking interval.
        let poisoned = FloatInterval {
            lo: f64::NAN,
            hi: f64::NAN,
        };
        assert_eq!(
            poisoned.mul_interval(&FloatInterval::new(1.0, 2.0)),
            FloatInterval::EVERYTHING
        );
        assert_eq!(
            FloatInterval::new(1.0, 2.0).mul_interval(&poisoned),
            FloatInterval::EVERYTHING
        );
        // 0 · ±∞ is the classic NaN factory; it must degrade instead.
        assert_eq!(
            FloatInterval::ZERO.mul_interval(&FloatInterval::EVERYTHING),
            FloatInterval::EVERYTHING
        );
        assert_eq!(
            FloatInterval::EVERYTHING.mul_interval(&FloatInterval::ZERO),
            FloatInterval::EVERYTHING
        );
        // One overflowed (infinite) endpoint also degrades — the enclosure
        // only ever widens, which stays sound.
        let overflowed = FloatInterval::new(f64::MAX, f64::INFINITY);
        assert_eq!(
            overflowed.mul_interval(&FloatInterval::new(-1.0, 1.0)),
            FloatInterval::EVERYTHING
        );
        // Finite-but-huge products that overflow during multiplication
        // keep infinite bounds without ever producing NaN.
        let huge = FloatInterval::new(f64::MAX / 2.0, f64::MAX);
        let prod = huge.mul_interval(&huge);
        assert!(!prod.lo().is_nan() && !prod.hi().is_nan());
        assert_eq!(prod.hi(), f64::INFINITY);
    }

    #[test]
    fn relu_and_max_enclose_exact() {
        let e = Interval::new(r(-5, 3), r(7, 3));
        let f = FloatInterval::from_rationals(e.lo(), e.hi());
        assert!(encloses(&f.relu(), &e.relu()));
        let e2 = Interval::new(r(-1, 9), r(11, 9));
        let f2 = FloatInterval::from_rationals(e2.lo(), e2.hi());
        assert!(encloses(&f.max_interval(&f2), &e.max_interval(&e2)));
    }

    #[test]
    fn overflow_degrades_to_everything() {
        let huge = FloatInterval::new(f64::MAX / 2.0, f64::MAX);
        let sum = huge.add(&huge);
        assert_eq!(sum.hi(), f64::INFINITY);
        let prod = FloatInterval::EVERYTHING.mul(&FloatInterval::ZERO);
        assert_eq!(prod, FloatInterval::EVERYTHING, "no NaN from 0 · ∞");
    }

    #[test]
    fn contains_rational_is_conservative_on_unrepresentable_endpoints() {
        // 1e-40's exact dyadic expansion needs a denominator ≈ 2^133,
        // beyond i128: the bound cannot be verified, so nothing may be
        // reported as contained — least of all a value far outside.
        let tiny = FloatInterval::new(1e-40, 2e-40);
        assert!(!tiny.contains_rational(r(-1, 1)));
        assert!(!tiny.contains_rational(r(1, 1)));
        // Infinite endpoints still pass unconditionally (always sound).
        assert!(FloatInterval::EVERYTHING.contains_rational(r(-1, 1)));
    }

    #[test]
    fn contains_interval_ordering() {
        let outer = FloatInterval::new(-2.0, 2.0);
        let inner = FloatInterval::new(-1.0, 1.0);
        assert!(outer.contains_interval(&inner));
        assert!(!inner.contains_interval(&outer));
        assert!(FloatInterval::EVERYTHING.contains_interval(&outer));
    }

    #[test]
    #[should_panic(expected = "exceeds upper bound")]
    fn inverted_bounds_panic() {
        let _ = FloatInterval::new(1.0, 0.0);
    }

    #[test]
    fn from_rational_conversion_trait() {
        let fi: FloatInterval = r(4, 9).into();
        assert!(fi.contains_rational(r(4, 9)));
    }
}
