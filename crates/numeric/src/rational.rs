//! Arbitrary-precision-free exact rational arithmetic on `i128`.
//!
//! The FANNet decision procedure ([`fannet-verify`]) must be *sound*: every
//! verdict ("this noise box cannot flip the classification") is a formal
//! claim, so no floating-point rounding may enter the evaluation path. All
//! network parameters are quantized to [`Rational`] values with bounded
//! denominators and all forward evaluations and interval propagations are
//! performed exactly.
//!
//! `i128` is sufficient for the FANNet workloads: quantized weights have
//! denominators ≤ 2^20, relative noise contributes a denominator of 100 and
//! the case-study network has two affine layers, keeping all intermediate
//! denominators ≲ 10^15 — far below the ±1.7·10^38 range of `i128`. All
//! arithmetic is checked: overflow panics with a descriptive message rather
//! than wrapping silently (an overflowing verdict would be unsound).
//!
//! [`fannet-verify`]: ../../fannet_verify/index.html

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};
use std::str::FromStr;

use serde::{Deserialize, Deserializer, Serialize, Serializer};

/// Greatest common divisor of two non-negative `i128` values.
///
/// Uses the binary GCD algorithm; `gcd(0, 0) == 0` by convention.
///
/// # Examples
///
/// ```
/// use fannet_numeric::rational::gcd;
/// assert_eq!(gcd(54, 24), 6);
/// assert_eq!(gcd(0, 7), 7);
/// ```
#[must_use]
pub fn gcd(mut a: i128, mut b: i128) -> i128 {
    debug_assert!(a >= 0 && b >= 0, "gcd operands must be non-negative");
    if a == 0 {
        return b;
    }
    if b == 0 {
        return a;
    }
    let shift = (a | b).trailing_zeros();
    a >>= a.trailing_zeros();
    loop {
        b >>= b.trailing_zeros();
        if a > b {
            std::mem::swap(&mut a, &mut b);
        }
        b -= a;
        if b == 0 {
            break;
        }
    }
    a << shift
}

/// An exact rational number `num / den` with `den > 0` and
/// `gcd(|num|, den) == 1` as maintained invariants.
///
/// `Rational` implements the full set of arithmetic operators plus total
/// ordering. It is `Copy` (two `i128`s) so it can flow through the generic
/// tensor and network code exactly like `f64`.
///
/// # Examples
///
/// ```
/// use fannet_numeric::Rational;
/// let a = Rational::new(1, 3);
/// let b = Rational::new(1, 6);
/// assert_eq!(a + b, Rational::new(1, 2));
/// assert_eq!(a * b, Rational::new(1, 18));
/// assert!(a > b);
/// ```
///
/// # Panics
///
/// All arithmetic panics on `i128` overflow (see module docs for why the
/// FANNet workloads stay far away from that bound). Construction panics on a
/// zero denominator.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rational {
    num: i128,
    den: i128,
}

impl Rational {
    /// The additive identity, `0/1`.
    pub const ZERO: Rational = Rational { num: 0, den: 1 };
    /// The multiplicative identity, `1/1`.
    pub const ONE: Rational = Rational { num: 1, den: 1 };

    /// Creates the rational `num / den`, normalizing sign and reducing to
    /// lowest terms.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    ///
    /// # Examples
    ///
    /// ```
    /// use fannet_numeric::Rational;
    /// assert_eq!(Rational::new(2, -4), Rational::new(-1, 2));
    /// ```
    #[must_use]
    pub fn new(num: i128, den: i128) -> Self {
        assert!(den != 0, "rational denominator must be non-zero");
        let sign = if (num < 0) ^ (den < 0) { -1 } else { 1 };
        // unsigned_abs keeps i128::MIN representable; narrowing back below
        // re-checks that the reduced value fits in i128.
        let (num, den) = (num.unsigned_abs(), den.unsigned_abs());
        let g = gcd_u128(num, den);
        let num = num / g;
        let den = den / g;
        let num = i128::try_from(num).expect("rational numerator overflow");
        let den = i128::try_from(den).expect("rational denominator overflow");
        Rational {
            num: sign * num,
            den,
        }
    }

    /// Creates the integer rational `n / 1`.
    ///
    /// # Examples
    ///
    /// ```
    /// use fannet_numeric::Rational;
    /// assert_eq!(Rational::from_integer(5).to_f64(), 5.0);
    /// ```
    #[must_use]
    pub const fn from_integer(n: i128) -> Self {
        Rational { num: n, den: 1 }
    }

    /// Creates the rational `percent / 100`, the paper's relative-noise unit.
    ///
    /// # Examples
    ///
    /// ```
    /// use fannet_numeric::Rational;
    /// assert_eq!(Rational::from_percent(25), Rational::new(1, 4));
    /// ```
    #[must_use]
    pub fn from_percent(percent: i64) -> Self {
        Rational::new(i128::from(percent), 100)
    }

    /// Converts a finite `f64` to the *exactly equal* rational.
    ///
    /// Every finite IEEE-754 double is a dyadic rational `m · 2^e`, so the
    /// conversion is lossless whenever the value fits in `i128` terms.
    ///
    /// Returns `None` for NaN, infinities, and values whose exact expansion
    /// overflows `i128`.
    ///
    /// # Examples
    ///
    /// ```
    /// use fannet_numeric::Rational;
    /// assert_eq!(Rational::from_f64_exact(0.25), Some(Rational::new(1, 4)));
    /// assert_eq!(Rational::from_f64_exact(f64::NAN), None);
    /// ```
    #[must_use]
    pub fn from_f64_exact(v: f64) -> Option<Self> {
        if !v.is_finite() {
            return None;
        }
        if v == 0.0 {
            return Some(Self::ZERO);
        }
        let bits = v.to_bits();
        let sign: i128 = if bits >> 63 == 1 { -1 } else { 1 };
        let exponent = ((bits >> 52) & 0x7ff) as i64;
        let mantissa = bits & ((1u64 << 52) - 1);
        let (mantissa, exponent) = if exponent == 0 {
            (mantissa, -1074i64) // subnormal
        } else {
            (mantissa | (1u64 << 52), exponent - 1075)
        };
        let m = i128::from(mantissa);
        if exponent >= 0 {
            let shifted = m.checked_shl(u32::try_from(exponent).ok()?)?;
            Some(Rational::new(sign * shifted, 1))
        } else {
            let shift = u32::try_from(-exponent).ok()?;
            if shift >= 127 {
                return None;
            }
            Some(Rational::new(sign * m, 1i128 << shift))
        }
    }

    /// Approximates a finite `f64` by the nearest rational with denominator
    /// `den` (rounding half away from zero).
    ///
    /// This is the quantization primitive used by
    /// `fannet_nn::quantize`: weights become `round(w · den) / den`.
    ///
    /// # Panics
    ///
    /// Panics if `den <= 0` or `v` is not finite.
    ///
    /// # Examples
    ///
    /// ```
    /// use fannet_numeric::Rational;
    /// assert_eq!(Rational::from_f64_approx(0.333, 3), Rational::new(1, 3));
    /// ```
    #[must_use]
    pub fn from_f64_approx(v: f64, den: i128) -> Self {
        assert!(den > 0, "approximation denominator must be positive");
        assert!(v.is_finite(), "cannot approximate a non-finite value");
        let scaled = v * den as f64;
        let rounded = scaled.round();
        assert!(
            rounded.abs() < 1.7e38,
            "value {v} too large to approximate with denominator {den}"
        );
        Rational::new(rounded as i128, den)
    }

    /// The numerator (sign-carrying, lowest terms).
    #[must_use]
    pub const fn numer(&self) -> i128 {
        self.num
    }

    /// The denominator (always positive, lowest terms).
    #[must_use]
    pub const fn denom(&self) -> i128 {
        self.den
    }

    /// Returns `true` if the value is exactly zero.
    #[must_use]
    pub const fn is_zero(&self) -> bool {
        self.num == 0
    }

    /// Returns `true` if the value is strictly positive.
    #[must_use]
    pub const fn is_positive(&self) -> bool {
        self.num > 0
    }

    /// Returns `true` if the value is strictly negative.
    #[must_use]
    pub const fn is_negative(&self) -> bool {
        self.num < 0
    }

    /// Returns `true` if the value is an integer (denominator 1).
    #[must_use]
    pub const fn is_integer(&self) -> bool {
        self.den == 1
    }

    /// The sign of the value: `-1`, `0` or `1`.
    #[must_use]
    pub const fn signum(&self) -> i32 {
        if self.num > 0 {
            1
        } else if self.num < 0 {
            -1
        } else {
            0
        }
    }

    /// Absolute value.
    ///
    /// # Examples
    ///
    /// ```
    /// use fannet_numeric::Rational;
    /// assert_eq!(Rational::new(-3, 4).abs(), Rational::new(3, 4));
    /// ```
    #[must_use]
    pub fn abs(self) -> Self {
        if self.num < 0 {
            -self
        } else {
            self
        }
    }

    /// The multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if the value is zero.
    #[must_use]
    pub fn recip(self) -> Self {
        assert!(self.num != 0, "cannot invert zero");
        Rational::new(self.den, self.num)
    }

    /// Checked addition; `None` on overflow.
    #[must_use]
    pub fn checked_add(self, rhs: Self) -> Option<Self> {
        // Fast paths that keep the `gcd(|num|, den) == 1` invariant without
        // running a gcd — this is the hottest operation of interval
        // propagation (one add per weight per neuron per box).
        if self.den == rhs.den {
            if self.den == 1 {
                // Integer + integer: trivially reduced.
                return Some(Rational {
                    num: self.num.checked_add(rhs.num)?,
                    den: 1,
                });
            }
            // Same denominator: one gcd (inside `new`) instead of two.
            return Some(Rational::new(self.num.checked_add(rhs.num)?, self.den));
        }
        if self.den == 1 {
            // a + b/d = (a·d + b)/d, and gcd(a·d + b, d) = gcd(b, d) = 1
            // because b/d is already reduced — no gcd needed at all.
            let num = self.num.checked_mul(rhs.den)?.checked_add(rhs.num)?;
            return Some(Rational { num, den: rhs.den });
        }
        if rhs.den == 1 {
            let num = rhs.num.checked_mul(self.den)?.checked_add(self.num)?;
            return Some(Rational { num, den: self.den });
        }
        // Knuth 4.5.1: reduce by gcd of denominators first to delay overflow.
        let g = gcd(self.den, rhs.den);
        let lhs_scale = rhs.den / g;
        let rhs_scale = self.den / g;
        let num = self
            .num
            .checked_mul(lhs_scale)?
            .checked_add(rhs.num.checked_mul(rhs_scale)?)?;
        let den = self.den.checked_mul(lhs_scale)?;
        Some(Rational::new(num, den))
    }

    /// Checked subtraction; `None` on overflow.
    #[must_use]
    pub fn checked_sub(self, rhs: Self) -> Option<Self> {
        self.checked_add(Rational {
            num: rhs.num.checked_neg()?,
            den: rhs.den,
        })
    }

    /// Checked multiplication; `None` on overflow.
    #[must_use]
    pub fn checked_mul(self, rhs: Self) -> Option<Self> {
        // Fast paths preserving the reduced-form invariant without gcds.
        if self.num == 0 || rhs.num == 0 {
            return Some(Rational::ZERO);
        }
        if self.den == 1 && rhs.den == 1 {
            // Integer × integer: trivially reduced.
            return Some(Rational {
                num: self.num.checked_mul(rhs.num)?,
                den: 1,
            });
        }
        // Cross-reduce before multiplying to keep intermediates small. When
        // a denominator is 1 its cross-gcd is skipped entirely (gcd(x, 1)
        // is 1 but still costs a binary-gcd loop).
        let g1 = if rhs.den == 1 {
            1
        } else {
            gcd(self.num.unsigned_abs() as i128, rhs.den)
        };
        let g2 = if self.den == 1 {
            1
        } else {
            gcd(rhs.num.unsigned_abs() as i128, self.den)
        };
        let num = (self.num / g1).checked_mul(rhs.num / g2)?;
        let den = (self.den / g2).checked_mul(rhs.den / g1)?;
        Some(Rational { num, den })
    }

    /// Checked division; `None` on overflow or division by zero.
    #[must_use]
    pub fn checked_div(self, rhs: Self) -> Option<Self> {
        if rhs.num == 0 {
            return None;
        }
        self.checked_mul(Rational::new(rhs.den, rhs.num))
    }

    /// Converts to the nearest `f64`.
    ///
    /// The conversion may round; it is used only for reporting and plotting,
    /// never inside the decision procedure.
    #[must_use]
    pub fn to_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// The larger of `self` and `other`.
    #[must_use]
    pub fn max(self, other: Self) -> Self {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The smaller of `self` and `other`.
    #[must_use]
    pub fn min(self, other: Self) -> Self {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Rectified linear unit: `max(self, 0)`.
    ///
    /// # Examples
    ///
    /// ```
    /// use fannet_numeric::Rational;
    /// assert_eq!(Rational::new(-1, 2).relu(), Rational::ZERO);
    /// assert_eq!(Rational::new(1, 2).relu(), Rational::new(1, 2));
    /// ```
    #[must_use]
    pub fn relu(self) -> Self {
        self.max(Self::ZERO)
    }

    /// Raises to a non-negative integer power by repeated squaring.
    ///
    /// # Examples
    ///
    /// ```
    /// use fannet_numeric::Rational;
    /// assert_eq!(Rational::new(2, 3).pow(3), Rational::new(8, 27));
    /// assert_eq!(Rational::new(7, 2).pow(0), Rational::ONE);
    /// ```
    #[must_use]
    pub fn pow(self, mut exp: u32) -> Self {
        let mut base = self;
        let mut acc = Rational::ONE;
        while exp > 0 {
            if exp & 1 == 1 {
                acc *= base;
            }
            exp >>= 1;
            if exp > 0 {
                base = base * base;
            }
        }
        acc
    }

    /// Truncates toward zero, returning the integer part.
    ///
    /// # Examples
    ///
    /// ```
    /// use fannet_numeric::Rational;
    /// assert_eq!(Rational::new(7, 2).trunc(), 3);
    /// assert_eq!(Rational::new(-7, 2).trunc(), -3);
    /// ```
    #[must_use]
    pub const fn trunc(&self) -> i128 {
        self.num / self.den
    }

    /// Floor: the greatest integer ≤ the value.
    #[must_use]
    pub const fn floor(&self) -> i128 {
        let q = self.num / self.den;
        if self.num % self.den < 0 {
            q - 1
        } else {
            q
        }
    }

    /// Ceiling: the smallest integer ≥ the value.
    #[must_use]
    pub const fn ceil(&self) -> i128 {
        let q = self.num / self.den;
        if self.num % self.den > 0 {
            q + 1
        } else {
            q
        }
    }
}

fn gcd_u128(a: u128, b: u128) -> u128 {
    let (mut a, mut b) = (a, b);
    if a == 0 {
        return b.max(1);
    }
    if b == 0 {
        return a.max(1);
    }
    let shift = (a | b).trailing_zeros();
    a >>= a.trailing_zeros();
    loop {
        b >>= b.trailing_zeros();
        if a > b {
            std::mem::swap(&mut a, &mut b);
        }
        b -= a;
        if b == 0 {
            break;
        }
    }
    (a << shift).max(1)
}

impl Default for Rational {
    fn default() -> Self {
        Self::ZERO
    }
}

impl fmt::Debug for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Rational({}/{})", self.num, self.den)
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        // a/b ? c/d  <=>  a*d ? c*b  (b, d > 0). Reduce first to delay
        // overflow; fall back to a continued-fraction comparison (which
        // cannot overflow) when the cross products exceed i128.
        let g = gcd(self.den, other.den);
        match (
            self.num.checked_mul(other.den / g),
            other.num.checked_mul(self.den / g),
        ) {
            (Some(lhs), Some(rhs)) => lhs.cmp(&rhs),
            _ => cmp_continued_fraction(self.num, self.den, other.num, other.den),
        }
    }
}

/// Compares `a_num/a_den` with `b_num/b_den` (positive denominators) by
/// comparing continued-fraction expansions — no intermediate ever exceeds
/// the inputs, so the comparison is total on all of `Rational`.
fn cmp_continued_fraction(
    mut a_num: i128,
    mut a_den: i128,
    mut b_num: i128,
    mut b_den: i128,
) -> Ordering {
    loop {
        let qa = a_num.div_euclid(a_den);
        let qb = b_num.div_euclid(b_den);
        if qa != qb {
            return qa.cmp(&qb);
        }
        // rem_euclid, not `num - q·den`: the product can overflow i128 for
        // numerators near i128::MIN (denominators are positive, so
        // rem_euclid itself cannot overflow).
        let ra = a_num.rem_euclid(a_den); // both in [0, den)
        let rb = b_num.rem_euclid(b_den);
        match (ra == 0, rb == 0) {
            (true, true) => return Ordering::Equal,
            (true, false) => return Ordering::Less, // a == q < q + rb/bd == b
            (false, true) => return Ordering::Greater,
            (false, false) => {
                // Compare ra/ad vs rb/bd (both in (0,1)); equivalently
                // compare bd/rb vs ad/ra. Remainders strictly decrease, so
                // this terminates like the Euclidean algorithm.
                let (na, da, nb, db) = (b_den, rb, a_den, ra);
                a_num = na;
                a_den = da;
                b_num = nb;
                b_den = db;
            }
        }
    }
}

impl Add for Rational {
    type Output = Rational;
    fn add(self, rhs: Self) -> Self::Output {
        self.checked_add(rhs).expect("rational addition overflow")
    }
}

impl Sub for Rational {
    type Output = Rational;
    fn sub(self, rhs: Self) -> Self::Output {
        self.checked_sub(rhs)
            .expect("rational subtraction overflow")
    }
}

impl Mul for Rational {
    type Output = Rational;
    fn mul(self, rhs: Self) -> Self::Output {
        self.checked_mul(rhs)
            .expect("rational multiplication overflow")
    }
}

impl Div for Rational {
    type Output = Rational;
    fn div(self, rhs: Self) -> Self::Output {
        assert!(!rhs.is_zero(), "rational division by zero");
        self.checked_div(rhs).expect("rational division overflow")
    }
}

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Self::Output {
        Rational {
            num: -self.num,
            den: self.den,
        }
    }
}

impl AddAssign for Rational {
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl SubAssign for Rational {
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl MulAssign for Rational {
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl DivAssign for Rational {
    fn div_assign(&mut self, rhs: Self) {
        *self = *self / rhs;
    }
}

impl From<i64> for Rational {
    fn from(n: i64) -> Self {
        Rational::from_integer(i128::from(n))
    }
}

impl From<i32> for Rational {
    fn from(n: i32) -> Self {
        Rational::from_integer(i128::from(n))
    }
}

impl std::iter::Sum for Rational {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Rational::ZERO, |acc, x| acc + x)
    }
}

impl std::iter::Product for Rational {
    fn product<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Rational::ONE, |acc, x| acc * x)
    }
}

/// Error returned when parsing a [`Rational`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRationalError {
    input: String,
}

impl fmt::Display for ParseRationalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid rational literal `{}`", self.input)
    }
}

impl std::error::Error for ParseRationalError {}

impl FromStr for Rational {
    type Err = ParseRationalError;

    /// Parses `"a"`, `"a/b"`, or a decimal such as `"-1.25"`.
    ///
    /// # Examples
    ///
    /// ```
    /// use fannet_numeric::Rational;
    /// let r: Rational = "3/4".parse()?;
    /// assert_eq!(r, Rational::new(3, 4));
    /// let d: Rational = "-1.25".parse()?;
    /// assert_eq!(d, Rational::new(-5, 4));
    /// # Ok::<(), fannet_numeric::rational::ParseRationalError>(())
    /// ```
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseRationalError {
            input: s.to_owned(),
        };
        let s = s.trim();
        if let Some((numer, denom)) = s.split_once('/') {
            let n: i128 = numer.trim().parse().map_err(|_| err())?;
            let d: i128 = denom.trim().parse().map_err(|_| err())?;
            if d == 0 {
                return Err(err());
            }
            return Ok(Rational::new(n, d));
        }
        if let Some((int_part, frac_part)) = s.split_once('.') {
            let negative = int_part.trim_start().starts_with('-');
            let i: i128 = if int_part == "-" {
                0
            } else {
                int_part.parse().map_err(|_| err())?
            };
            if frac_part.is_empty() || !frac_part.bytes().all(|b| b.is_ascii_digit()) {
                return Err(err());
            }
            let scale = 10i128
                .checked_pow(u32::try_from(frac_part.len()).map_err(|_| err())?)
                .ok_or_else(err)?;
            let f: i128 = frac_part.parse().map_err(|_| err())?;
            let magnitude = Rational::new(i.unsigned_abs() as i128, 1) + Rational::new(f, scale);
            return Ok(if negative || i < 0 {
                -magnitude
            } else {
                magnitude
            });
        }
        let n: i128 = s.parse().map_err(|_| err())?;
        Ok(Rational::from_integer(n))
    }
}

impl Serialize for Rational {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        // Serialize as "num/den" for readability and exactness.
        serializer.serialize_str(&format!("{}/{}", self.num, self.den))
    }
}

impl<'de> Deserialize<'de> for Rational {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let s = String::deserialize(deserializer)?;
        s.parse().map_err(serde::de::Error::custom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcd_basic_identities() {
        assert_eq!(gcd(0, 0), 0);
        assert_eq!(gcd(0, 5), 5);
        assert_eq!(gcd(5, 0), 5);
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(17, 13), 1);
        assert_eq!(gcd(1 << 40, 1 << 20), 1 << 20);
    }

    #[test]
    fn new_normalizes_sign_and_reduces() {
        assert_eq!(Rational::new(2, 4), Rational::new(1, 2));
        assert_eq!(Rational::new(-2, 4), Rational::new(1, -2));
        assert_eq!(Rational::new(-2, -4), Rational::new(1, 2));
        assert_eq!(Rational::new(0, 7).numer(), 0);
        assert_eq!(Rational::new(0, 7).denom(), 1);
    }

    #[test]
    #[should_panic(expected = "denominator must be non-zero")]
    fn new_rejects_zero_denominator() {
        let _ = Rational::new(1, 0);
    }

    #[test]
    fn arithmetic_matches_hand_computation() {
        let a = Rational::new(3, 4);
        let b = Rational::new(5, 6);
        assert_eq!(a + b, Rational::new(19, 12));
        assert_eq!(a - b, Rational::new(-1, 12));
        assert_eq!(a * b, Rational::new(5, 8));
        assert_eq!(a / b, Rational::new(9, 10));
        assert_eq!(-a, Rational::new(-3, 4));
    }

    #[test]
    fn assign_operators() {
        let mut x = Rational::new(1, 2);
        x += Rational::new(1, 3);
        assert_eq!(x, Rational::new(5, 6));
        x -= Rational::new(1, 6);
        assert_eq!(x, Rational::new(2, 3));
        x *= Rational::new(3, 2);
        assert_eq!(x, Rational::ONE);
        x /= Rational::new(1, 4);
        assert_eq!(x, Rational::from_integer(4));
    }

    #[test]
    fn ordering_is_total_and_correct() {
        let vals = [
            Rational::new(-3, 2),
            Rational::new(-1, 3),
            Rational::ZERO,
            Rational::new(1, 100),
            Rational::new(1, 3),
            Rational::ONE,
            Rational::new(7, 2),
        ];
        for w in vals.windows(2) {
            assert!(w[0] < w[1], "{:?} should be < {:?}", w[0], w[1]);
        }
    }

    #[test]
    fn from_percent_is_hundredths() {
        assert_eq!(Rational::from_percent(11), Rational::new(11, 100));
        assert_eq!(Rational::from_percent(-40), Rational::new(-2, 5));
        assert_eq!(Rational::from_percent(0), Rational::ZERO);
    }

    #[test]
    fn from_f64_exact_dyadics() {
        assert_eq!(Rational::from_f64_exact(0.5), Some(Rational::new(1, 2)));
        assert_eq!(Rational::from_f64_exact(-0.75), Some(Rational::new(-3, 4)));
        assert_eq!(
            Rational::from_f64_exact(3.0),
            Some(Rational::from_integer(3))
        );
        assert_eq!(Rational::from_f64_exact(0.0), Some(Rational::ZERO));
        assert_eq!(Rational::from_f64_exact(f64::INFINITY), None);
        assert_eq!(Rational::from_f64_exact(f64::NAN), None);
    }

    #[test]
    fn from_f64_exact_roundtrips_to_f64() {
        for v in [0.1, -2.625, 1e-10, 12345.6789, -0.333333] {
            let r = Rational::from_f64_exact(v).expect("finite");
            assert_eq!(r.to_f64(), v, "exact conversion must round-trip for {v}");
        }
    }

    #[test]
    fn from_f64_approx_quantizes() {
        assert_eq!(Rational::from_f64_approx(0.333, 3), Rational::new(1, 3));
        assert_eq!(
            Rational::from_f64_approx(0.5004, 1000),
            Rational::new(500, 1000)
        );
        assert_eq!(Rational::from_f64_approx(-1.5, 2), Rational::new(-3, 2));
        // Half away from zero.
        assert_eq!(Rational::from_f64_approx(0.5, 1), Rational::ONE);
    }

    #[test]
    fn min_max_relu() {
        let a = Rational::new(-1, 2);
        let b = Rational::new(1, 3);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(a.relu(), Rational::ZERO);
        assert_eq!(b.relu(), b);
    }

    #[test]
    fn floor_ceil_trunc() {
        let x = Rational::new(7, 2);
        assert_eq!(x.floor(), 3);
        assert_eq!(x.ceil(), 4);
        assert_eq!(x.trunc(), 3);
        let y = Rational::new(-7, 2);
        assert_eq!(y.floor(), -4);
        assert_eq!(y.ceil(), -3);
        assert_eq!(y.trunc(), -3);
        let z = Rational::from_integer(5);
        assert_eq!(z.floor(), 5);
        assert_eq!(z.ceil(), 5);
    }

    #[test]
    fn pow_small_exponents() {
        assert_eq!(Rational::new(2, 3).pow(0), Rational::ONE);
        assert_eq!(Rational::new(2, 3).pow(1), Rational::new(2, 3));
        assert_eq!(Rational::new(2, 3).pow(4), Rational::new(16, 81));
        assert_eq!(Rational::new(-1, 2).pow(3), Rational::new(-1, 8));
    }

    #[test]
    fn recip_and_signum() {
        assert_eq!(Rational::new(3, 4).recip(), Rational::new(4, 3));
        assert_eq!(Rational::new(-3, 4).recip(), Rational::new(-4, 3));
        assert_eq!(Rational::new(-3, 4).signum(), -1);
        assert_eq!(Rational::ZERO.signum(), 0);
        assert_eq!(Rational::ONE.signum(), 1);
    }

    #[test]
    #[should_panic(expected = "cannot invert zero")]
    fn recip_zero_panics() {
        let _ = Rational::ZERO.recip();
    }

    #[test]
    fn parse_forms() {
        assert_eq!("3/4".parse::<Rational>().unwrap(), Rational::new(3, 4));
        assert_eq!("-6/8".parse::<Rational>().unwrap(), Rational::new(-3, 4));
        assert_eq!(
            "42".parse::<Rational>().unwrap(),
            Rational::from_integer(42)
        );
        assert_eq!("-1.25".parse::<Rational>().unwrap(), Rational::new(-5, 4));
        assert_eq!("0.04".parse::<Rational>().unwrap(), Rational::new(1, 25));
        assert!("1/0".parse::<Rational>().is_err());
        assert!("abc".parse::<Rational>().is_err());
        assert!("1.".parse::<Rational>().is_err());
    }

    #[test]
    fn display_and_debug() {
        assert_eq!(Rational::new(3, 4).to_string(), "3/4");
        assert_eq!(Rational::from_integer(-7).to_string(), "-7");
        assert_eq!(format!("{:?}", Rational::new(1, 2)), "Rational(1/2)");
        assert!(!format!("{:?}", Rational::ZERO).is_empty());
    }

    #[test]
    fn serde_round_trip() {
        let r = Rational::new(-355, 113);
        let json = serde_json::to_string(&r).unwrap();
        assert_eq!(json, "\"-355/113\"");
        let back: Rational = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn sum_and_product() {
        let vals = [
            Rational::new(1, 2),
            Rational::new(1, 3),
            Rational::new(1, 6),
        ];
        assert_eq!(vals.iter().copied().sum::<Rational>(), Rational::ONE);
        assert_eq!(
            vals.iter().copied().product::<Rational>(),
            Rational::new(1, 36)
        );
    }

    /// The reduced-form invariant `gcd(|num|, den) == 1`, `den > 0`.
    fn assert_reduced(r: Rational) {
        assert!(r.denom() > 0, "{r:?} has non-positive denominator");
        if r.is_zero() {
            assert_eq!(r.denom(), 1, "{r:?}: zero must be 0/1");
        } else {
            assert_eq!(
                gcd(r.numer().unsigned_abs() as i128, r.denom()),
                1,
                "{r:?} is not in lowest terms"
            );
        }
    }

    #[test]
    fn fast_path_add_keeps_invariant() {
        // Every branch of checked_add: equal integer dens, equal non-1
        // dens (with and without reduction), one integer operand on each
        // side, and the general path.
        let cases = [
            (Rational::from_integer(3), Rational::from_integer(-7)),
            (Rational::new(1, 4), Rational::new(1, 4)), // 2/4 → 1/2
            (Rational::new(1, 4), Rational::new(3, 4)), // 4/4 → 1
            (Rational::new(-1, 6), Rational::new(1, 6)), // 0
            (Rational::from_integer(2), Rational::new(3, 5)),
            (Rational::new(3, 5), Rational::from_integer(2)),
            (Rational::from_integer(-2), Rational::new(-3, 5)),
            (Rational::new(1, 6), Rational::new(1, 10)), // general path
        ];
        for (a, b) in cases {
            let sum = a.checked_add(b).expect("no overflow");
            assert_reduced(sum);
            // Cross-check against the naive formula evaluated via `new`.
            let naive = Rational::new(
                a.numer() * b.denom() + b.numer() * a.denom(),
                a.denom() * b.denom(),
            );
            assert_eq!(sum, naive, "fast path must agree for {a} + {b}");
        }
    }

    #[test]
    fn fast_path_mul_keeps_invariant() {
        let cases = [
            (Rational::from_integer(6), Rational::from_integer(-4)),
            (Rational::ZERO, Rational::new(3, 7)),
            (Rational::new(3, 7), Rational::ZERO),
            (Rational::from_integer(14), Rational::new(3, 7)), // cross-reduce
            (Rational::new(3, 7), Rational::from_integer(14)),
            (Rational::new(2, 9), Rational::new(3, 4)), // general path
        ];
        for (a, b) in cases {
            let prod = a.checked_mul(b).expect("no overflow");
            assert_reduced(prod);
            let naive = Rational::new(a.numer() * b.numer(), a.denom() * b.denom());
            assert_eq!(prod, naive, "fast path must agree for {a} * {b}");
        }
    }

    #[test]
    fn cmp_survives_cross_product_overflow() {
        // Dyadic with a 2^100 denominator vs a small fraction: the naive
        // cross-multiplication overflows i128; the continued-fraction slow
        // path must still order them correctly.
        let tiny = Rational::new(1, 1i128 << 100);
        let small = Rational::new(1, 1_000_000);
        assert!(tiny < small);
        assert!(small > tiny);
        assert!(-tiny > -small);
        let close_a = Rational::new((1i128 << 100) + 1, 1i128 << 100);
        let close_b = Rational::new(1_000_001, 1_000_000);
        assert!(close_a < close_b);
        assert_eq!(close_a.cmp(&close_a), std::cmp::Ordering::Equal);
        // Mixed-sign never reaches the slow path's subtleties.
        assert!(Rational::new(-1, 1i128 << 100) < Rational::new(1, 1i128 << 100));
        // Numerators near i128::MIN with equal quotients: the remainder
        // must come from rem_euclid, or `num - q·den` overflows. With
        // q = ⌊(MIN+1)/5⌋, a = q + 3/5 (MIN+1 ≡ 3 mod 5) and b = q + 1/4,
        // so a > b — too close for f64 to distinguish, hence the exact
        // slow path is the only way to order them.
        let q = (i128::MIN + 1).div_euclid(5);
        let a = Rational::new(i128::MIN + 1, 5);
        let b = Rational::new(4 * q + 1, 4);
        assert_eq!(a.cmp(&b), std::cmp::Ordering::Greater);
        assert_eq!(b.cmp(&a), std::cmp::Ordering::Less);
        assert_eq!(a.cmp(&a), std::cmp::Ordering::Equal);
    }

    #[test]
    fn checked_ops_detect_overflow() {
        let huge = Rational::new(i128::MAX / 2, 1);
        assert!(huge.checked_mul(huge).is_none());
        assert!(huge.checked_add(huge).is_some()); // i128::MAX/2 * 2 still fits
        let max = Rational::new(i128::MAX, 1);
        assert!(max.checked_add(Rational::ONE).is_none());
    }

    #[test]
    fn noise_application_is_exact() {
        // x' = x * (100 + p) / 100 — the paper's relative noise model.
        let x = Rational::from_integer(1234);
        let p = -11i64;
        let noisy = x * (Rational::ONE + Rational::from_percent(p));
        assert_eq!(noisy, Rational::new(1234 * 89, 100));
    }
}
