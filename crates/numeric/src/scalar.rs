//! The [`Scalar`] abstraction: one numeric interface for `f64`, [`Rational`]
//! and [`Fixed`].
//!
//! The network code in `fannet-nn` is generic over `Scalar`, so the *same*
//! forward-pass implementation serves three roles:
//!
//! * `f64` — fast training and floating-point reference inference;
//! * [`Rational`] — the exact semantics verified by `fannet-verify`;
//! * [`Fixed`] — the as-deployed Q32.32 datapath used in examples/benches.

use std::fmt::{Debug, Display};
use std::ops::{Add, Mul, Neg, Sub};

use crate::fixed::Fixed;
use crate::rational::Rational;

/// A numeric type usable as the element type of tensors and networks.
///
/// Implementors must form an ordered commutative ring (up to the usual
/// caveats for saturating/floating arithmetic). The trait is deliberately
/// small: only what the forward pass, training loop and verifier need.
///
/// This trait is sealed-by-convention: it is implemented for exactly `f64`,
/// [`Rational`] and [`Fixed`], and downstream crates are not expected to add
/// implementations (nothing enforces this; the FANNet crates simply make no
/// compatibility promises for foreign scalars).
///
/// # Examples
///
/// ```
/// use fannet_numeric::{Scalar, Rational};
///
/// fn dot<S: Scalar>(a: &[S], b: &[S]) -> S {
///     a.iter().zip(b).fold(S::zero(), |acc, (x, y)| acc + *x * *y)
/// }
///
/// let a = [Rational::new(1, 2), Rational::new(1, 3)];
/// let b = [Rational::from_integer(2), Rational::from_integer(3)];
/// assert_eq!(dot(&a, &b), Rational::from_integer(2));
/// assert_eq!(dot(&[0.5f64, 1.0], &[2.0, 3.0]), 4.0);
/// ```
pub trait Scalar:
    Copy
    + PartialOrd
    + Debug
    + Display
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Neg<Output = Self>
    + Send
    + Sync
    + 'static
{
    /// The additive identity.
    fn zero() -> Self;
    /// The multiplicative identity.
    fn one() -> Self;
    /// Lossy conversion from `f64` (exact where the format permits).
    fn from_f64(v: f64) -> Self;
    /// Lossy conversion to `f64` (exact where the format permits).
    fn to_f64(self) -> f64;
    /// The larger of two values.
    #[must_use]
    fn max_val(self, other: Self) -> Self {
        if self >= other {
            self
        } else {
            other
        }
    }
    /// The smaller of two values.
    #[must_use]
    fn min_val(self, other: Self) -> Self {
        if self <= other {
            self
        } else {
            other
        }
    }
    /// Rectified linear unit, `max(self, 0)`.
    #[must_use]
    fn relu(self) -> Self {
        self.max_val(Self::zero())
    }
    /// `true` if the value is strictly greater than zero.
    fn is_positive(self) -> bool {
        self > Self::zero()
    }
    /// Absolute value.
    #[must_use]
    fn abs_val(self) -> Self {
        if self < Self::zero() {
            -self
        } else {
            self
        }
    }
}

impl Scalar for f64 {
    fn zero() -> Self {
        0.0
    }
    fn one() -> Self {
        1.0
    }
    fn from_f64(v: f64) -> Self {
        v
    }
    fn to_f64(self) -> f64 {
        self
    }
}

impl Scalar for Rational {
    fn zero() -> Self {
        Rational::ZERO
    }
    fn one() -> Self {
        Rational::ONE
    }
    fn from_f64(v: f64) -> Self {
        Rational::from_f64_exact(v)
            .unwrap_or_else(|| panic!("cannot represent {v} as an exact rational"))
    }
    fn to_f64(self) -> f64 {
        Rational::to_f64(&self)
    }
}

impl Scalar for Fixed {
    fn zero() -> Self {
        Fixed::ZERO
    }
    fn one() -> Self {
        Fixed::ONE
    }
    fn from_f64(v: f64) -> Self {
        Fixed::from_f64(v)
    }
    fn to_f64(self) -> f64 {
        Fixed::to_f64(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise<S: Scalar>() {
        let two = S::from_f64(2.0);
        let three = S::from_f64(3.0);
        assert_eq!((two + three).to_f64(), 5.0);
        assert_eq!((three - two).to_f64(), 1.0);
        assert_eq!((two * three).to_f64(), 6.0);
        assert_eq!((-two).to_f64(), -2.0);
        assert_eq!(S::zero().to_f64(), 0.0);
        assert_eq!(S::one().to_f64(), 1.0);
        assert_eq!(two.max_val(three).to_f64(), 3.0);
        assert_eq!(two.min_val(three).to_f64(), 2.0);
        assert_eq!((-two).relu().to_f64(), 0.0);
        assert_eq!(three.relu().to_f64(), 3.0);
        assert!(three.is_positive());
        assert!(!(-three).is_positive());
        assert!(!S::zero().is_positive());
        assert_eq!((-three).abs_val().to_f64(), 3.0);
    }

    #[test]
    fn f64_scalar() {
        exercise::<f64>();
    }

    #[test]
    fn rational_scalar() {
        exercise::<Rational>();
    }

    #[test]
    fn fixed_scalar() {
        exercise::<Fixed>();
    }

    #[test]
    fn generic_dot_product_agrees_across_scalars() {
        fn dot<S: Scalar>(a: &[f64], b: &[f64]) -> f64 {
            let a: Vec<S> = a.iter().map(|&v| S::from_f64(v)).collect();
            let b: Vec<S> = b.iter().map(|&v| S::from_f64(v)).collect();
            a.iter()
                .zip(&b)
                .fold(S::zero(), |acc, (x, y)| acc + *x * *y)
                .to_f64()
        }
        let a = [1.0, -2.5, 0.5];
        let b = [4.0, 2.0, -8.0];
        let expected = -5.0;
        assert_eq!(dot::<f64>(&a, &b), expected);
        assert_eq!(dot::<Rational>(&a, &b), expected);
        assert_eq!(dot::<Fixed>(&a, &b), expected);
    }
}
