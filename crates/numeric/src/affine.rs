//! Outward-rounded `f64` affine forms — the zonotope abstract domain's
//! numeric substrate (DESIGN.md §10).
//!
//! An [`AffineForm`] represents the set of reals
//!
//! ```text
//! γ(f) = { center + Σᵢ coeffsᵢ·εᵢ + err·e  :  εᵢ ∈ [-1,1], e ∈ [-1,1] }
//! ```
//!
//! where the *noise symbols* `εᵢ` are **shared** between forms (symbol `i`
//! means the same unknown everywhere) and `e` is an anonymous per-form
//! error symbol. Sharing is the whole point: `x − x` cancels its
//! coefficients exactly and concretizes to a tiny interval around zero,
//! where plain interval arithmetic would return `[lo−hi, hi−lo]`. The
//! verifier exploits this by classifying noise boxes on *pairwise output
//! differences*, whose input correlations cancel zonotope-side.
//!
//! # Soundness contract
//!
//! Every transformer maintains the invariant that makes zonotope verdicts
//! proofs: if each operand `fⱼ` *encloses* an exact real `vⱼ` — meaning
//! there is one shared valuation `ε` and per-form `eⱼ` with
//! `vⱼ = fⱼ(ε, eⱼ)` — then the result encloses the exact result of the
//! same operation **under the same shared `ε`**. Floating-point rounding
//! is absorbed into `err`: after every rounded operation the result's
//! [`ulp_gap`] (an upper bound on a single round-to-nearest error) is
//! added to `err`, and all `err` arithmetic itself rounds upward
//! ([`f64::next_up`]). Overflow or NaN poisoning degrades conservatively:
//! [`AffineForm::range`] returns `(-∞, +∞)` whenever any component is
//! non-finite, so a poisoned form can never certify anything.

use crate::rational::Rational;

/// The largest distance from `v` to an adjacent `f64` — a sound bound on
/// the error of any single round-to-nearest operation that produced `v`
/// (the true result lies within half the gap on the side it rounded
/// from, hence within one full neighbour gap either way).
///
/// Infinite `v` (overflow) and NaN both yield `+∞`, which poisons any
/// error term they feed — the conservative outcome.
#[must_use]
pub fn ulp_gap(v: f64) -> f64 {
    if v.is_nan() {
        return f64::INFINITY;
    }
    // For ±∞ one of the differences is NaN; `f64::max` ignores NaN
    // operands, and the other difference is +∞.
    (v.next_up() - v).max(v - v.next_down())
}

/// Upward-rounded addition of non-negative error magnitudes.
#[inline]
fn add_up(a: f64, b: f64) -> f64 {
    (a + b).next_up()
}

/// Upward-rounded multiplication of non-negative error magnitudes,
/// guarding the `0 · ∞` NaN case (zero slack times an infinite magnitude
/// is zero slack).
#[inline]
fn mul_up(a: f64, b: f64) -> f64 {
    if a == 0.0 || b == 0.0 {
        0.0
    } else {
        (a * b).next_up()
    }
}

/// The tightest `(center, slack)` enclosure of an exact rational:
/// `|v − center| ≤ slack`, with `slack = 0` iff the conversion is exact.
///
/// [`Rational::to_f64`] chains **three** roundings (numerator → `f64`,
/// denominator → `f64`, then the division), each with relative error at
/// most `u = 2⁻⁵³`, so the compound relative error is below `3.01·u` —
/// strictly less than four neighbour gaps of the result. When the result
/// round-trips exactly ([`Rational::from_f64_exact`]) the slack is zero.
#[must_use]
pub fn enclose_rational(v: Rational) -> (f64, f64) {
    let f = v.to_f64();
    if Rational::from_f64_exact(f) == Some(v) {
        (f, 0.0)
    } else {
        (f, mul_up(4.0, ulp_gap(f)))
    }
}

/// An outward-rounded affine form over shared noise symbols `εᵢ ∈ [-1,1]`
/// plus an anonymous error term `err·[-1,1]`.
///
/// # Examples
///
/// ```
/// use fannet_numeric::AffineForm;
///
/// // x = 3 + 2ε₀: the symbol is shared, so x − x is (almost) exactly 0.
/// let x = AffineForm::with_symbol(3.0, 0, 2.0);
/// let d = x.sub(&x);
/// let (lo, hi) = d.range();
/// assert!(lo <= 0.0 && 0.0 <= hi);
/// assert!(hi - lo < 1e-12, "correlation must cancel: [{lo}, {hi}]");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AffineForm {
    /// The midpoint.
    center: f64,
    /// `coeffs[i]` multiplies the shared noise symbol `εᵢ`; trailing
    /// symbols a form does not mention are implicitly zero.
    coeffs: Vec<f64>,
    /// Magnitude of the anonymous error term (accumulated rounding,
    /// conversion slack and relaxation residue); always `≥ 0` or NaN
    /// (poisoned, treated as `+∞` by [`AffineForm::range`]).
    err: f64,
}

impl AffineForm {
    /// The exact constant `c` (no symbols, no error).
    #[must_use]
    pub fn constant(c: f64) -> Self {
        AffineForm {
            center: c,
            coeffs: Vec::new(),
            err: 0.0,
        }
    }

    /// The enclosure of an exact rational constant (conversion slack goes
    /// into the error term).
    #[must_use]
    pub fn from_rational(v: Rational) -> Self {
        let (center, slack) = enclose_rational(v);
        AffineForm {
            center,
            coeffs: Vec::new(),
            err: slack,
        }
    }

    /// `center + coeff·ε_symbol`, both taken as exact `f64` values.
    #[must_use]
    pub fn with_symbol(center: f64, symbol: usize, coeff: f64) -> Self {
        let mut form = AffineForm::constant(center);
        form.set_coeff(symbol, coeff);
        form
    }

    /// The top element: concretizes to the whole line (always sound).
    #[must_use]
    pub fn top() -> Self {
        AffineForm {
            center: 0.0,
            coeffs: Vec::new(),
            err: f64::INFINITY,
        }
    }

    /// The midpoint.
    #[must_use]
    pub fn center(&self) -> f64 {
        self.center
    }

    /// The shared-symbol coefficients (trailing zeros elided).
    #[must_use]
    pub fn coeffs(&self) -> &[f64] {
        &self.coeffs
    }

    /// The anonymous error magnitude.
    #[must_use]
    pub fn err(&self) -> f64 {
        self.err
    }

    /// Sets the coefficient of `symbol` (growing the form as needed).
    /// Used to attach the fresh noise symbol of a `ReLU` relaxation.
    pub fn set_coeff(&mut self, symbol: usize, coeff: f64) {
        if self.coeffs.len() <= symbol {
            self.coeffs.resize(symbol + 1, 0.0);
        }
        self.coeffs[symbol] = coeff;
    }

    /// Widens the error term by `extra ≥ 0` (upward-rounded).
    pub fn add_err(&mut self, extra: f64) {
        self.err = add_up(self.err, extra);
    }

    /// Upper bound on the total deviation from the center:
    /// `Σ|coeffsᵢ| + err`, rounded upward.
    #[must_use]
    pub fn radius(&self) -> f64 {
        let mut r = self.err;
        for &c in &self.coeffs {
            r = add_up(r, c.abs());
        }
        r
    }

    /// Sound concretization bounds `[lo, hi] ⊇ γ(self)`.
    ///
    /// Any non-finite component (overflow or NaN poisoning) degrades to
    /// `(-∞, +∞)` — a poisoned form can never decide anything.
    #[must_use]
    pub fn range(&self) -> (f64, f64) {
        let rad = self.radius();
        if !self.center.is_finite() || !rad.is_finite() {
            return (f64::NEG_INFINITY, f64::INFINITY);
        }
        (
            (self.center - rad).next_down(),
            (self.center + rad).next_up(),
        )
    }

    /// Upper bound on `|v|` over every enclosed value `v`.
    #[must_use]
    pub fn magnitude(&self) -> f64 {
        add_up(self.center.abs(), self.radius())
    }

    /// `self + offset` for an exact `f64` constant (one rounded addition,
    /// its [`ulp_gap`] charged to the error term).
    #[must_use]
    pub fn translate(&self, offset: f64) -> Self {
        let mut out = self.clone();
        out.center += offset;
        out.err = add_up(out.err, ulp_gap(out.center));
        out
    }

    /// Sound sum (shared symbols add coefficient-wise).
    #[must_use]
    pub fn add(&self, rhs: &AffineForm) -> Self {
        affine_combination([(1.0, 0.0, self), (1.0, 0.0, rhs)], 0.0, 0.0)
    }

    /// Sound difference — the operation the zonotope tier classifies on:
    /// coefficients of shared symbols cancel instead of decorrelating.
    #[must_use]
    pub fn sub(&self, rhs: &AffineForm) -> Self {
        affine_combination([(1.0, 0.0, self), (-1.0, 0.0, rhs)], 0.0, 0.0)
    }

    /// Sound scaling by an uncertain constant `w ± w_slack`: the exact
    /// multiplier `ŵ` may be any real with `|ŵ − w| ≤ w_slack` (how
    /// rational network weights enter the `f64` domain).
    #[must_use]
    pub fn scale(&self, w: f64, w_slack: f64) -> Self {
        affine_combination([(w, w_slack, self)], 0.0, 0.0)
    }
}

/// The workhorse transformer: `Σᵢ (wᵢ ± sᵢ)·formᵢ + (bias ± bias_slack)`
/// in one accumulation pass — a neuron's pre-activation in a single call.
///
/// Soundness per the module contract: writing the exact multiplier as
/// `ŵᵢ = wᵢ + δᵢ` (`|δᵢ| ≤ sᵢ`), the exact term `ŵᵢ·vᵢ` decomposes into
/// `wᵢ·vᵢ` (propagated through center and coefficients, every rounded
/// operation's [`ulp_gap`] absorbed into the error term) plus `δᵢ·vᵢ`,
/// bounded by `sᵢ·`[`AffineForm::magnitude`] and likewise absorbed. The
/// shared symbols are never rescaled inconsistently, so one valuation
/// `ε` continues to witness every operand and the result simultaneously.
#[must_use]
pub fn affine_combination<'a, I>(terms: I, bias: f64, bias_slack: f64) -> AffineForm
where
    I: IntoIterator<Item = (f64, f64, &'a AffineForm)>,
{
    let mut center = bias;
    let mut err = bias_slack;
    let mut coeffs: Vec<f64> = Vec::new();
    for (w, w_slack, form) in terms {
        // Center contribution: two rounded operations.
        let t = w * form.center;
        err = add_up(err, ulp_gap(t));
        center += t;
        err = add_up(err, ulp_gap(center));
        // Coefficient contributions (shared symbols, index-aligned).
        if coeffs.len() < form.coeffs.len() {
            coeffs.resize(form.coeffs.len(), 0.0);
        }
        for (acc, &a) in coeffs.iter_mut().zip(&form.coeffs) {
            if a == 0.0 {
                continue;
            }
            let p = w * a;
            err = add_up(err, ulp_gap(p));
            *acc += p;
            err = add_up(err, ulp_gap(*acc));
        }
        // Inherited error term and multiplier uncertainty.
        err = add_up(err, mul_up(w.abs(), form.err));
        if w_slack > 0.0 {
            err = add_up(err, mul_up(w_slack, form.magnitude()));
        }
    }
    AffineForm {
        center,
        coeffs,
        err,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i128, d: i128) -> Rational {
        Rational::new(n, d)
    }

    /// Evaluates the exact affine expression `c + Σ aᵢεᵢ` at `ε` in
    /// rational arithmetic and checks it lies inside the form's range.
    fn assert_encloses(form: &AffineForm, exact: Rational) {
        let (lo, hi) = form.range();
        let v = exact.to_f64();
        // One-ulp guard around the conversion of the exact witness.
        assert!(
            lo <= v.next_up() && v.next_down() <= hi,
            "{exact} (≈{v}) escapes [{lo}, {hi}]"
        );
    }

    #[test]
    fn constant_and_rational_enclosures() {
        let c = AffineForm::constant(2.5);
        assert_eq!(c.range(), (2.5_f64.next_down(), 2.5_f64.next_up()));
        let third = AffineForm::from_rational(r(1, 3));
        assert!(third.err() > 0.0, "1/3 is inexact, slack must be positive");
        assert_encloses(&third, r(1, 3));
        let half = AffineForm::from_rational(r(1, 2));
        assert_eq!(half.err(), 0.0, "1/2 converts exactly");
    }

    #[test]
    fn enclose_rational_exactness_split() {
        assert_eq!(enclose_rational(r(3, 4)), (0.75, 0.0));
        let (c, s) = enclose_rational(r(1, 3));
        assert!(s > 0.0 && (c - 1.0 / 3.0).abs() < 1e-15);
        // Huge numerator/denominator: three roundings, slack still bounds.
        let v = Rational::new(i128::MAX / 3, i128::MAX / 7 - 1);
        let (c, s) = enclose_rational(v);
        assert!(s > 0.0);
        assert!((c - 7.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn correlation_cancels_in_differences() {
        let x = AffineForm::with_symbol(10.0, 0, 3.0);
        let y = affine_combination([(2.0, 0.0, &x)], 1.0, 0.0); // y = 2x + 1
        let d = y.sub(&x).sub(&x); // = 1 exactly, all ε₀ cancelled
        let (lo, hi) = d.range();
        assert!(lo <= 1.0 && 1.0 <= hi);
        assert!(hi - lo < 1e-10, "shared symbols must cancel: [{lo}, {hi}]");
        // Interval arithmetic on the same quantities cannot do this:
        // x ∈ [7,13], y ∈ [15,27] ⇒ y−2x ∈ [15−26, 27−14] = [−11, 13].
    }

    #[test]
    fn add_sub_scale_enclose_exact_endpoints() {
        // x = 1/3 + (1/7)ε₀, y = −2/5 + (3/11)ε₁, checked at ε corners.
        let mut x = AffineForm::from_rational(r(1, 3));
        x.set_coeff(0, enclose_rational(r(1, 7)).0);
        x.add_err(enclose_rational(r(1, 7)).1);
        let mut y = AffineForm::from_rational(r(-2, 5));
        y.set_coeff(1, enclose_rational(r(3, 11)).0);
        y.add_err(enclose_rational(r(3, 11)).1);

        let sum = x.add(&y);
        let diff = x.sub(&y);
        let scaled = x.scale(2.0, 0.0);
        for e0 in [-1i128, 1] {
            for e1 in [-1i128, 1] {
                let xe = r(1, 3) + r(e0, 7);
                let ye = r(-2, 5) + r(3 * e1, 11);
                assert_encloses(&sum, xe + ye);
                assert_encloses(&diff, xe - ye);
                assert_encloses(&scaled, Rational::from_integer(2) * xe);
            }
        }
    }

    #[test]
    fn uncertain_scale_widens_by_multiplier_slack() {
        let x = AffineForm::with_symbol(1.0, 0, 1.0); // x ∈ [0, 2]
        let tight = x.scale(3.0, 0.0);
        let loose = x.scale(3.0, 0.5); // ŵ ∈ [2.5, 3.5]
        assert!(loose.err() >= 0.5 * 2.0, "slack·magnitude must be charged");
        let (tl, th) = tight.range();
        let (ll, lh) = loose.range();
        assert!(ll <= tl && th <= lh);
        // ŵ·x at the extreme ŵ = 3.5, x = 2 must be enclosed.
        assert!(lh >= 7.0);
    }

    #[test]
    fn combination_matches_manual_fold() {
        let a = AffineForm::with_symbol(1.0, 0, 0.5);
        let b = AffineForm::with_symbol(-2.0, 1, 0.25);
        let combo = affine_combination([(2.0, 0.0, &a), (-3.0, 0.0, &b)], 0.125, 0.0);
        // 2a − 3b + 0.125 = 2 + ε₀ + 6 − 0.75ε₁ + 0.125.
        assert!((combo.center() - 8.125).abs() < 1e-12);
        assert!((combo.coeffs()[0] - 1.0).abs() < 1e-12);
        assert!((combo.coeffs()[1] + 0.75).abs() < 1e-12);
        let (lo, hi) = combo.range();
        assert!(lo <= 8.125 - 1.75 && 8.125 + 1.75 <= hi);
    }

    #[test]
    fn rounding_error_is_tracked_not_ignored() {
        // Repeated inexact operations must keep charging rounding slack:
        // after ten upscalings the error term exceeds the original (it was
        // multiplied through) yet stays ulp-scale relative to the value.
        let mut f = AffineForm::from_rational(r(1, 3));
        let e0 = f.err();
        assert!(e0 > 0.0);
        for _ in 0..10 {
            f = f.scale(3.0, 0.0);
        }
        assert!(f.err() > e0);
        assert!(f.err() < 1e-9, "err stays ulp-scale: {}", f.err());
        assert_encloses(&f, r(3i128.pow(10), 3));
    }

    #[test]
    fn overflow_and_nan_degrade_to_everything() {
        assert_eq!(
            AffineForm::top().range(),
            (f64::NEG_INFINITY, f64::INFINITY)
        );
        let huge = AffineForm::constant(f64::MAX);
        let sum = huge.add(&huge); // center overflows to +∞
        assert_eq!(sum.range(), (f64::NEG_INFINITY, f64::INFINITY));
        // 0 · top is a point at zero (an *exact* zero multiplier sends
        // every enclosed real to 0) — and crucially not a NaN from 0 · ∞.
        let z = AffineForm::top().scale(0.0, 0.0);
        let (zl, zh) = z.range();
        assert!(zl.is_finite() && zh.is_finite() && zl <= 0.0 && 0.0 <= zh);
        // An *uncertain* zero multiplier must charge slack · magnitude,
        // which against top's infinite magnitude degrades to everything.
        let zu = AffineForm::top().scale(0.0, 1e-9);
        assert_eq!(zu.range(), (f64::NEG_INFINITY, f64::INFINITY));
        // A NaN center poisons conservatively.
        let poisoned = AffineForm::constant(f64::NAN);
        assert_eq!(poisoned.range(), (f64::NEG_INFINITY, f64::INFINITY));
    }

    #[test]
    fn ulp_gap_edge_cases() {
        assert!(ulp_gap(1.0) > 0.0 && ulp_gap(1.0) < 1e-15);
        assert_eq!(ulp_gap(f64::INFINITY), f64::INFINITY);
        assert_eq!(ulp_gap(f64::NEG_INFINITY), f64::INFINITY);
        assert_eq!(ulp_gap(f64::NAN), f64::INFINITY);
        assert!(ulp_gap(0.0) > 0.0, "zero's neighbours are subnormals");
    }

    #[test]
    fn set_coeff_grows_and_radius_counts_everything() {
        let mut f = AffineForm::constant(0.0);
        f.set_coeff(3, -2.0);
        assert_eq!(f.coeffs().len(), 4);
        f.add_err(0.5);
        assert!(f.radius() >= 2.5);
        let (lo, hi) = f.range();
        assert!(lo <= -2.5 && 2.5 <= hi);
    }
}
