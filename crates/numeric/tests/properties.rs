//! Property-based tests for the numeric substrate.
//!
//! These pin down the algebraic laws the verifier's soundness argument
//! relies on: field axioms for [`Rational`], order compatibility, exactness
//! of conversions, and the *enclosure* property of interval transformers.

use fannet_numeric::{Fixed, FloatInterval, Interval, Rational, Scalar};
use proptest::prelude::*;

/// Rationals with numerator/denominator small enough that products of a few
/// of them stay far from `i128` overflow.
fn small_rational() -> impl Strategy<Value = Rational> {
    (-1_000_000i128..=1_000_000, 1i128..=1_000_000).prop_map(|(n, d)| Rational::new(n, d))
}

/// Integer-percent values as used by the FANNet noise model.
fn percent() -> impl Strategy<Value = i64> {
    -100i64..=100
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn rational_add_commutative(a in small_rational(), b in small_rational()) {
        prop_assert_eq!(a + b, b + a);
    }

    #[test]
    fn rational_add_associative(a in small_rational(), b in small_rational(), c in small_rational()) {
        prop_assert_eq!((a + b) + c, a + (b + c));
    }

    #[test]
    fn rational_mul_commutative(a in small_rational(), b in small_rational()) {
        prop_assert_eq!(a * b, b * a);
    }

    #[test]
    fn rational_mul_associative(a in small_rational(), b in small_rational(), c in small_rational()) {
        prop_assert_eq!((a * b) * c, a * (b * c));
    }

    #[test]
    fn rational_distributive(a in small_rational(), b in small_rational(), c in small_rational()) {
        prop_assert_eq!(a * (b + c), a * b + a * c);
    }

    #[test]
    fn rational_additive_inverse(a in small_rational()) {
        prop_assert_eq!(a + (-a), Rational::ZERO);
        prop_assert_eq!(a - a, Rational::ZERO);
    }

    #[test]
    fn rational_multiplicative_inverse(a in small_rational()) {
        prop_assume!(!a.is_zero());
        prop_assert_eq!(a * a.recip(), Rational::ONE);
        prop_assert_eq!(a / a, Rational::ONE);
    }

    #[test]
    fn rational_always_reduced(n in -1_000_000i128..=1_000_000, d in 1i128..=1_000_000) {
        let r = Rational::new(n, d);
        prop_assert!(r.denom() > 0);
        if !r.is_zero() {
            prop_assert_eq!(
                fannet_numeric::rational::gcd(r.numer().unsigned_abs() as i128, r.denom()),
                1
            );
        } else {
            prop_assert_eq!(r.denom(), 1);
        }
    }

    #[test]
    fn rational_order_translation_invariant(
        a in small_rational(), b in small_rational(), c in small_rational()
    ) {
        prop_assert_eq!(a < b, a + c < b + c);
    }

    #[test]
    fn rational_order_matches_f64(a in small_rational(), b in small_rational()) {
        // f64 has 53 bits of mantissa; our strategy values are ~2e12 ratios,
        // so equal f64s may hide unequal rationals — only check strict order.
        if a.to_f64() < b.to_f64() - 1e-6 {
            prop_assert!(a < b);
        }
    }

    #[test]
    fn rational_parse_display_round_trip(a in small_rational()) {
        let s = a.to_string();
        let back: Rational = s.parse().expect("display output must parse");
        prop_assert_eq!(back, a);
    }

    #[test]
    fn rational_f64_exact_round_trip(v in -1.0e12f64..1.0e12) {
        let r = Rational::from_f64_exact(v).expect("finite");
        prop_assert_eq!(r.to_f64(), v);
    }

    #[test]
    fn noise_factor_exact(p in percent()) {
        // (100 + p)/100 must equal 1 + p/100 exactly.
        let lhs = Rational::new(100 + i128::from(p), 100);
        let rhs = Rational::ONE + Rational::from_percent(p);
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn fixed_add_matches_rational_when_unsaturated(
        a in -1.0e6f64..1.0e6, b in -1.0e6f64..1.0e6
    ) {
        let fa = Fixed::from_f64(a);
        let fb = Fixed::from_f64(b);
        let exact = fa.to_rational() + fb.to_rational();
        prop_assert_eq!((fa + fb).to_rational(), exact);
    }

    #[test]
    fn fixed_mul_error_within_half_ulp(a in -1.0e3f64..1.0e3, b in -1.0e3f64..1.0e3) {
        let fa = Fixed::from_f64(a);
        let fb = Fixed::from_f64(b);
        let approx = (fa * fb).to_rational();
        let exact = fa.to_rational() * fb.to_rational();
        let ulp = Rational::new(1, 1i128 << 32);
        prop_assert!((approx - exact).abs() <= ulp * Rational::new(1, 2) + ulp);
    }

    #[test]
    fn fixed_order_embedding(a in -1.0e6f64..1.0e6, b in -1.0e6f64..1.0e6) {
        let fa = Fixed::from_f64(a);
        let fb = Fixed::from_f64(b);
        prop_assert_eq!(fa.cmp(&fb), fa.to_rational().cmp(&fb.to_rational()));
    }

    #[test]
    fn interval_add_encloses(
        (al, aw) in (small_rational(), small_rational()),
        (bl, bw) in (small_rational(), small_rational()),
        t in 0.0f64..=1.0, u in 0.0f64..=1.0,
    ) {
        let a = Interval::new(al, al + aw.abs());
        let b = Interval::new(bl, bl + bw.abs());
        // Pick interior sample points via rational interpolation.
        let ts = Rational::from_f64_approx(t, 1000);
        let us = Rational::from_f64_approx(u, 1000);
        let x = a.lo() + a.width() * ts;
        let y = b.lo() + b.width() * us;
        prop_assert!((a + b).contains(x + y));
        prop_assert!((a - b).contains(x - y));
        prop_assert!(a.mul_interval(&b).contains(x * y));
    }

    #[test]
    fn interval_relu_encloses(l in small_rational(), w in small_rational(), t in 0.0f64..=1.0) {
        let a = Interval::new(l, l + w.abs());
        let ts = Rational::from_f64_approx(t, 1000);
        let x = a.lo() + a.width() * ts;
        prop_assert!(a.relu().contains(x.relu()));
    }

    #[test]
    fn interval_max_encloses(
        l1 in small_rational(), w1 in small_rational(),
        l2 in small_rational(), w2 in small_rational(),
        t in 0.0f64..=1.0,
    ) {
        let a = Interval::new(l1, l1 + w1.abs());
        let b = Interval::new(l2, l2 + w2.abs());
        let ts = Rational::from_f64_approx(t, 1000);
        let x = a.lo() + a.width() * ts;
        let y = b.lo() + b.width() * ts;
        prop_assert!(a.max_interval(&b).contains(x.max(y)));
    }

    #[test]
    fn interval_scale_encloses(l in small_rational(), w in small_rational(), k in small_rational(), t in 0.0f64..=1.0) {
        let a = Interval::new(l, l + w.abs());
        let ts = Rational::from_f64_approx(t, 1000);
        let x = a.lo() + a.width() * ts;
        prop_assert!(a.scale(k).contains(x * k));
    }

    #[test]
    fn interval_bisect_integer_partitions(lo in -50i128..50, len in 1i128..100) {
        let iv = Interval::new(Rational::from_integer(lo), Rational::from_integer(lo + len));
        if let Some((a, b)) = iv.bisect_integer() {
            prop_assert_eq!(a.integer_count() + b.integer_count(), iv.integer_count());
            prop_assert!(a.hi() < b.lo());
            prop_assert_eq!(a.lo(), iv.lo());
            prop_assert_eq!(b.hi(), iv.hi());
        } else {
            prop_assert!(iv.integer_count() <= 1);
        }
    }

    #[test]
    fn float_interval_encloses_exact_transformers(
        (al, aw) in (small_rational(), small_rational()),
        (bl, bw) in (small_rational(), small_rational()),
        t in 0.0f64..=1.0, u in 0.0f64..=1.0,
    ) {
        // The screening tier's soundness lemma: the outward-rounded float
        // image of an exact interval operation encloses the exact image.
        let a = Interval::new(al, al + aw.abs());
        let b = Interval::new(bl, bl + bw.abs());
        let fa = FloatInterval::from_rationals(a.lo(), a.hi());
        let fb = FloatInterval::from_rationals(b.lo(), b.hi());
        // Interior sample points of the exact boxes.
        let ts = Rational::from_f64_approx(t, 1000);
        let us = Rational::from_f64_approx(u, 1000);
        let x = a.lo() + a.width() * ts;
        let y = b.lo() + b.width() * us;

        prop_assert!(fa.contains_rational(x), "input enclosure");
        prop_assert!(fa.add(&fb).contains_rational(x + y));
        prop_assert!(fa.sub(&fb).contains_rational(x - y));
        prop_assert!(fa.neg().contains_rational(-x));
        prop_assert!(fa.mul(&fb).contains_rational(x * y));
        prop_assert!(fa.relu().contains_rational(x.relu()));
        prop_assert!(fa.max_interval(&fb).contains_rational(x.max(y)));
    }

    #[test]
    fn float_interval_point_enclosure(n in -1_000_000i128..=1_000_000, d in 1i128..=1_000_000) {
        let v = Rational::new(n, d);
        let fi = FloatInterval::from_rational_point(v);
        prop_assert!(fi.contains_rational(v), "{:?} must contain {}", fi, v);
    }

    #[test]
    fn scalar_generic_relu_consistent(v in -1.0e6f64..1.0e6) {
        let expected = v.max(0.0);
        prop_assert_eq!(Scalar::relu(v), expected);
        prop_assert_eq!(Rational::from_f64_exact(v).unwrap().relu().to_f64(), expected);
        let fx = Fixed::from_f64(v);
        prop_assert_eq!(Scalar::relu(fx), fx.max(Fixed::ZERO));
    }
}
