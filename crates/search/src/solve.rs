//! The branch-and-bound loops: serial DFS, work-stealing parallel
//! exploration with deterministic first-witness semantics, budgeted
//! parallel search via speculative decision memoization, and the
//! single-pass witness collector (DESIGN.md §7/§12/§16).

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering as AtomicOrdering};
use std::sync::{Condvar, Mutex};

use crate::domain::{BoxDecision, SearchDomain, SearchOutcome};
use crate::stats::SearchStats;

/// Gathers `head` plus the topmost unprepared frontier boxes into one
/// [`SearchDomain::prepare_batch`] call, returning the head's prepared
/// value and the values for the gathered frontier boxes (aligned with
/// `rest`). `None` when the domain declines the batch.
fn prepare_group<D: SearchDomain>(
    domain: &D,
    head: &D::Region,
    rest: &[&D::Region],
    scratch: &mut D::Scratch,
    stats: &mut SearchStats,
) -> Option<(D::Prepared, Vec<D::Prepared>)> {
    let mut group: Vec<&D::Region> = Vec::with_capacity(1 + rest.len());
    group.push(head);
    group.extend_from_slice(rest);
    let mut prepared = domain.prepare_batch(&group, scratch, stats);
    if prepared.is_empty() {
        return None;
    }
    assert_eq!(
        prepared.len(),
        group.len(),
        "prepare_batch must return one prepared value per region"
    );
    let others: Vec<D::Prepared> = prepared.drain(1..).collect();
    Some((prepared.pop().expect("head prepared"), others))
}

/// Serial depth-first search over `root`, LIFO so memory stays at
/// `O(depth · box size)`.
///
/// `max_boxes` bounds how many boxes may be taken off the stack; when
/// it runs out the outcome degrades to [`SearchOutcome::Undecided`]
/// with `budget_exhausted` set (pass `None` for complete domains —
/// they terminate by splitting to unsplittable boxes).
///
/// Domains with [`SearchDomain::batch_width`] > 1 get their frontier
/// drained in batches: when an unprepared box is popped, the topmost
/// unprepared stack entries join it in one `prepare_batch` call, and
/// each box consumes its prepared screening when (and only when) it is
/// actually visited — visit order, verdicts, witnesses and every stat
/// counter stay bit-identical to the scalar path.
#[must_use]
pub fn search_serial<D: SearchDomain>(
    domain: &D,
    root: D::Region,
    max_boxes: Option<u64>,
) -> (SearchOutcome<D::Witness>, SearchStats) {
    let mut stats = SearchStats::default();
    let mut scratch = D::Scratch::default();
    let mut stack: Vec<(D::Region, u32, Option<D::Prepared>)> = vec![(root, 0u32, None)];
    let mut undecided = false;
    let batch_width = domain.batch_width();

    while let Some((region, depth, prepared)) = stack.pop() {
        if let Some(max) = max_boxes {
            if stats.boxes_visited >= max {
                stats.budget_exhausted = true;
                undecided = true;
                break;
            }
        }
        stats.boxes_visited += 1;
        stats.note_depth(depth);
        let prepared = match prepared {
            Some(p) => Some(p),
            None if batch_width > 1 => {
                // Batch the popped box with the topmost unprepared
                // frontier entries (the boxes the DFS visits next).
                let mut idxs: Vec<usize> = Vec::new();
                for i in (0..stack.len()).rev() {
                    if 1 + idxs.len() >= batch_width {
                        break;
                    }
                    if stack[i].2.is_none() {
                        idxs.push(i);
                    }
                }
                let rest: Vec<&D::Region> = idxs.iter().map(|&i| &stack[i].0).collect();
                match prepare_group(domain, &region, &rest, &mut scratch, &mut stats) {
                    Some((head, others)) => {
                        for (&i, p) in idxs.iter().zip(others) {
                            stack[i].2 = Some(p);
                        }
                        Some(head)
                    }
                    None => None,
                }
            }
            None => None,
        };
        match domain.decide_prepared(&region, prepared, depth, &mut scratch, &mut stats) {
            BoxDecision::Pruned => {}
            BoxDecision::Witness(w) | BoxDecision::UniformWitness(w) => {
                return (SearchOutcome::Witness(w), stats);
            }
            BoxDecision::Split(a, b) => {
                // Push the right half first so the left (canonically
                // first) half is explored first — deterministic witness
                // order.
                stack.push((b, depth + 1, None));
                stack.push((a, depth + 1, None));
            }
            BoxDecision::Abandon => undecided = true,
            BoxDecision::AbandonAll => {
                undecided = true;
                break;
            }
        }
    }
    let outcome = if undecided {
        SearchOutcome::Undecided
    } else {
        SearchOutcome::Proven
    };
    (outcome, stats)
}

/// Dispatches on `threads` and `max_boxes`: serial for one thread,
/// [`search_parallel`] for unbudgeted multi-thread runs, and
/// [`search_budgeted`] when a box budget meets multiple threads — the
/// budgeted parallel search returns the *bit-identical* outcome and
/// stats of the serial budgeted search (resident caches replay them bit
/// for bit), so every combination is deterministic.
#[must_use]
pub fn search_with_threads<D: SearchDomain>(
    domain: &D,
    root: D::Region,
    threads: usize,
    max_boxes: Option<u64>,
) -> (SearchOutcome<D::Witness>, SearchStats) {
    if threads <= 1 {
        search_serial(domain, root, max_boxes)
    } else {
        match max_boxes {
            None => search_parallel(domain, root, threads),
            Some(max) => search_budgeted(domain, root, max, threads),
        }
    }
}

// ---------------------------------------------------------------------------
// Witness collection
// ---------------------------------------------------------------------------

/// Collects up to `cap` distinct witnesses in a **single** DFS pass.
///
/// Semantically equivalent to restarting the search `cap` times with
/// growing exclusion sets, but each proven-safe box is pruned once
/// instead of once per restart — the asymptotic difference between
/// `O(search)` and `O(cap · search)`.
///
/// `expand_uniform` handles a [`BoxDecision::UniformWitness`] box: it
/// receives the box and its first witness and must push *every* witness
/// of the box (first included, canonical order) into the sink,
/// returning `false` as soon as the sink reaches the cap (collection
/// stops immediately). The hook exists because only the domain knows
/// how to enumerate a box's concretization.
///
/// Returns `(witnesses, exhausted, stats)` — `exhausted` is `true` when
/// the whole root was explored (every witness found before the cap and
/// no box abandoned).
#[must_use]
pub fn collect_witnesses<D: SearchDomain>(
    domain: &D,
    root: D::Region,
    cap: usize,
    mut expand_uniform: impl FnMut(
        &D::Region,
        D::Witness,
        &mut Vec<D::Witness>,
        &mut SearchStats,
    ) -> bool,
) -> (Vec<D::Witness>, bool, SearchStats) {
    assert!(cap > 0, "cap must be positive");
    let mut stats = SearchStats::default();
    let mut scratch = D::Scratch::default();
    let mut found = Vec::new();
    let mut stack = vec![(root, 0u32)];
    let mut complete = true;

    while let Some((region, depth)) = stack.pop() {
        stats.boxes_visited += 1;
        stats.note_depth(depth);
        match domain.decide(&region, depth, &mut scratch, &mut stats) {
            BoxDecision::Pruned => {}
            BoxDecision::Witness(w) => {
                found.push(w);
                if found.len() == cap {
                    return (found, false, stats);
                }
            }
            BoxDecision::UniformWitness(first) => {
                if !expand_uniform(&region, first, &mut found, &mut stats) {
                    return (found, false, stats);
                }
            }
            BoxDecision::Split(a, b) => {
                stack.push((b, depth + 1));
                stack.push((a, depth + 1));
            }
            BoxDecision::Abandon => complete = false,
            BoxDecision::AbandonAll => {
                complete = false;
                break;
            }
        }
    }
    (found, complete, stats)
}

// ---------------------------------------------------------------------------
// Parallel engine (DESIGN.md §7)
// ---------------------------------------------------------------------------

/// A box plus its DFS path from the root (`0` = left child, `1` =
/// right).
///
/// Decided boxes are leaves of the explored tree, so their paths are
/// prefix-free and lexicographic path order is exactly serial DFS
/// pre-order — the key to deterministic first-witness semantics.
struct Work<R> {
    region: R,
    path: Vec<u8>,
}

/// A worker's private stack entry: a box plus its tier-0 screen result
/// if a batched `prepare_group` pass already covered it.
type PreparedWork<D> = (
    Work<<D as SearchDomain>::Region>,
    Option<<D as SearchDomain>::Prepared>,
);

/// Shared state of one parallel search.
struct ParallelSearch<R, W> {
    /// Steal pool: idle workers pop from here; busy workers donate the
    /// sibling of every split while the pool runs low.
    pool: Mutex<Vec<Work<R>>>,
    /// Parks idle workers; notified when work arrives, when the last
    /// box completes, and when a sibling worker panics.
    available: Condvar,
    /// Boxes queued or in flight; `0` means the whole tree is explored.
    pending: AtomicUsize,
    /// Set when a worker panics, so its siblings stop instead of
    /// waiting forever on `pending`.
    abort: AtomicBool,
    /// Best (lexicographically-first-path) witness found so far.
    best: Mutex<Option<(Vec<u8>, W)>>,
    /// Per-worker stats, merged once at each worker's exit.
    stats: Mutex<SearchStats>,
}

impl<R, W> ParallelSearch<R, W> {
    /// Records a candidate witness; keeps the smaller path on conflict.
    fn offer(&self, path: Vec<u8>, witness: W) {
        let mut best = self.best.lock().expect("search mutex poisoned");
        match &*best {
            Some((existing, _)) if *existing <= path => {}
            _ => *best = Some((path, witness)),
        }
    }

    /// `true` once `path` can no longer influence the outcome: a
    /// candidate with a smaller (or equal-prefix) path already exists.
    ///
    /// A candidate only *loses* to boxes with strictly smaller paths,
    /// so anything ≥ the current best path is dead work.
    fn is_dead(&self, path: &[u8]) -> bool {
        let best = self.best.lock().expect("search mutex poisoned");
        matches!(&*best, Some((winning, _)) if winning.as_slice() <= path)
    }

    /// Marks one box fully processed; wakes every parked worker when it
    /// was the last (taking the pool lock first so no waiter can miss
    /// the notification between its predicate check and its `wait`).
    fn finish_box(&self) {
        if self.pending.fetch_sub(1, AtomicOrdering::AcqRel) == 1 {
            let _pool = self.pool.lock().expect("search mutex poisoned");
            self.available.notify_all();
        }
    }
}

/// Raises the search's abort flag if the owning worker unwinds, so
/// sibling workers exit their idle wait instead of hanging on a
/// `pending` count that can no longer reach zero; `std::thread::scope`
/// then joins everyone and propagates the original panic.
struct AbortOnPanic<'a, R, W>(&'a ParallelSearch<R, W>);

impl<R, W> Drop for AbortOnPanic<'_, R, W> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.abort.store(true, AtomicOrdering::Release);
            self.0.available.notify_all();
        }
    }
}

/// Work-stealing parallel search: workers keep a private LIFO stack and
/// overflow halves into a shared steal pool. Each box carries its DFS
/// *path key*, and a found witness only wins if no candidate with a
/// lexicographically smaller path exists — which reproduces the serial
/// first-witness order exactly, so serial and parallel runs return the
/// identical witness (DESIGN.md §7).
///
/// Requires a **complete** domain: every box resolves to
/// `Pruned`/`Witness`/`Split`. Abandoning decisions make the verdict
/// depend on exploration order, so a worker that receives one panics
/// (budgeted/incomplete domains belong on [`search_serial`] or
/// [`search_budgeted`], which [`search_with_threads`] routes to for box
/// budgets).
///
/// Batching domains drain their *private* stacks in batches exactly as
/// [`search_serial`] does; stolen boxes arrive unprepared and join the
/// thief's next batch.
///
/// # Panics
///
/// Panics if the domain returns [`BoxDecision::Abandon`] or
/// [`BoxDecision::AbandonAll`].
#[must_use]
pub fn search_parallel<D: SearchDomain>(
    domain: &D,
    root: D::Region,
    threads: usize,
) -> (SearchOutcome<D::Witness>, SearchStats) {
    let search = ParallelSearch {
        pool: Mutex::new(vec![Work {
            region: root,
            path: Vec::new(),
        }]),
        available: Condvar::new(),
        pending: AtomicUsize::new(1),
        abort: AtomicBool::new(false),
        best: Mutex::new(None),
        stats: Mutex::new(SearchStats::default()),
    };
    // Keep roughly two stealable boxes per worker in the pool; beyond
    // that splits stay in the worker's private stack.
    let pool_target = threads * 2;

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| worker(domain, &search, pool_target));
        }
    });

    let stats = *search.stats.lock().expect("search mutex poisoned");
    let best = search.best.into_inner().expect("search mutex poisoned");
    let outcome = match best {
        Some((_, witness)) => SearchOutcome::Witness(witness),
        // Complete domains never abandon (enforced by the worker), so
        // an empty best is a full proof.
        None => SearchOutcome::Proven,
    };
    (outcome, stats)
}

fn worker<D: SearchDomain>(
    domain: &D,
    search: &ParallelSearch<D::Region, D::Witness>,
    pool_target: usize,
) {
    let _abort_guard = AbortOnPanic(search);
    let mut local: Vec<PreparedWork<D>> = Vec::new();
    let mut scratch = D::Scratch::default();
    let mut stats = SearchStats::default();
    let batch_width = domain.batch_width();
    'work: loop {
        let (work, prepared) = match local.pop() {
            Some(entry) => entry,
            None => {
                // Park on the pool until work, completion, or abort.
                let mut pool = search.pool.lock().expect("search mutex poisoned");
                loop {
                    if search.abort.load(AtomicOrdering::Acquire) {
                        break 'work;
                    }
                    if let Some(w) = pool.pop() {
                        break (w, None);
                    }
                    if search.pending.load(AtomicOrdering::Acquire) == 0 {
                        break 'work;
                    }
                    pool = search.available.wait(pool).expect("search mutex poisoned");
                }
            }
        };

        if search.abort.load(AtomicOrdering::Acquire) {
            break;
        }
        if search.is_dead(&work.path) {
            // Nothing in this subtree can beat the current best witness.
            search.finish_box();
            continue;
        }

        stats.boxes_visited += 1;
        let depth = u32::try_from(work.path.len()).expect("split depth fits u32");
        stats.note_depth(depth);
        let prepared = match prepared {
            Some(p) => Some(p),
            None if batch_width > 1 => {
                let mut idxs: Vec<usize> = Vec::new();
                for i in (0..local.len()).rev() {
                    if 1 + idxs.len() >= batch_width {
                        break;
                    }
                    if local[i].1.is_none() {
                        idxs.push(i);
                    }
                }
                let rest: Vec<&D::Region> = idxs.iter().map(|&i| &local[i].0.region).collect();
                match prepare_group(domain, &work.region, &rest, &mut scratch, &mut stats) {
                    Some((head, others)) => {
                        for (&i, p) in idxs.iter().zip(others) {
                            local[i].1 = Some(p);
                        }
                        Some(head)
                    }
                    None => None,
                }
            }
            None => None,
        };
        match domain.decide_prepared(&work.region, prepared, depth, &mut scratch, &mut stats) {
            BoxDecision::Pruned => {}
            BoxDecision::Witness(w) | BoxDecision::UniformWitness(w) => {
                search.offer(work.path.clone(), w);
            }
            BoxDecision::Abandon | BoxDecision::AbandonAll => {
                // An abandoning domain makes the verdict depend on the
                // exploration order (serial stops at the first
                // `AbandonAll`; concurrent workers may race a witness
                // against the abort flag), so the deterministic
                // first-witness contract cannot hold — refuse loudly
                // instead of returning a scheduling-dependent answer.
                panic!(
                    "incomplete domains (Abandon/AbandonAll) must use the \
                     serial search"
                );
            }
            BoxDecision::Split(a, b) => {
                let mut left_path = work.path.clone();
                left_path.push(0);
                let mut right_path = work.path;
                right_path.push(1);
                search.pending.fetch_add(1, AtomicOrdering::AcqRel);
                let right = Work {
                    region: b,
                    path: right_path,
                };
                // Donate the right half when the pool runs low so idle
                // workers always find food; keep it local otherwise.
                {
                    let mut pool = search.pool.lock().expect("search mutex poisoned");
                    if pool.len() < pool_target {
                        pool.push(right);
                        search.available.notify_one();
                    } else {
                        drop(pool);
                        local.push((right, None));
                    }
                }
                local.push((
                    Work {
                        region: a,
                        path: left_path,
                    },
                    None,
                ));
                // The parent box is consumed but two children were
                // added: net pending change is +1, done above.
                continue;
            }
        }
        search.finish_box();
    }
    search
        .stats
        .lock()
        .expect("search mutex poisoned")
        .merge(&stats);
}

// ---------------------------------------------------------------------------
// Budgeted parallel search (DESIGN.md §16)
// ---------------------------------------------------------------------------

/// One speculatively-decided box: the decision plus the stat counters
/// the `decide` call booked (its *delta* against a fresh
/// [`SearchStats`]).
struct Speculated<D: SearchDomain> {
    decision: BoxDecision<D::Region, D::Witness>,
    delta: SearchStats,
}

type Memo<D> = HashMap<Vec<u8>, Speculated<D>>;

/// An unexplored subtree awaiting speculation: its root box, the DFS
/// path of that box, and the subtree's deterministic box allowance.
struct SpecItem<R> {
    region: R,
    path: Vec<u8>,
    allowance: u64,
}

/// Shared state of one speculation phase.
struct Speculation<D: SearchDomain> {
    pool: Mutex<Vec<SpecItem<D::Region>>>,
    available: Condvar,
    pending: AtomicUsize,
    abort: AtomicBool,
    memo: Mutex<Memo<D>>,
    /// Lexicographically smallest path whose decision stops the serial
    /// replay (a witness or `AbandonAll`): the replay visits boxes in
    /// DFS pre-order — lexicographic path order over the prefix-free
    /// decided set — so every box ordered after it is unreachable and
    /// speculating on it is wasted work.
    stop: Mutex<Option<Vec<u8>>>,
}

impl<D: SearchDomain> Speculation<D> {
    fn note_stop(&self, path: &[u8]) {
        let mut stop = self.stop.lock().expect("search mutex poisoned");
        match &*stop {
            Some(existing) if existing.as_slice() <= path => {}
            _ => *stop = Some(path.to_vec()),
        }
    }

    fn past_stop(&self, path: &[u8]) -> bool {
        let stop = self.stop.lock().expect("search mutex poisoned");
        matches!(&*stop, Some(s) if s.as_slice() <= path)
    }

    fn finish_item(&self) {
        if self.pending.fetch_sub(1, AtomicOrdering::AcqRel) == 1 {
            let _pool = self.pool.lock().expect("search mutex poisoned");
            self.available.notify_all();
        }
    }
}

/// [`AbortOnPanic`] for the speculation phase.
struct SpecAbortOnPanic<'a, D: SearchDomain>(&'a Speculation<D>);

impl<D: SearchDomain> Drop for SpecAbortOnPanic<'_, D> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.abort.store(true, AtomicOrdering::Release);
            self.0.available.notify_all();
        }
    }
}

/// Budgeted search with parallel speculation: **bit-identical to
/// [`search_serial`] with the same `max_boxes` at every thread count**
/// — same outcome, same witness, same visited-box set, same stats.
///
/// The identity holds by construction rather than by scheduling
/// discipline. Worker threads only *pre-compute* box decisions — pure
/// functions of `(region, depth)` per the [`SearchDomain`] contract —
/// into a path-keyed memo, and a final serial replay of the exact
/// [`search_serial`] loop (budget check, LIFO order, first-witness and
/// `AbandonAll` stops) consumes the memo, falling back to a live
/// `decide` for any box speculation did not reach. Each memo entry
/// carries the stat delta its `decide` booked, merged at replay time,
/// so even the counters match the serial run bit for bit.
///
/// Speculation is bounded by a **per-subtree box allowance split at
/// fork points**: the root subtree carries the whole budget, and every
/// split divides the remainder between the children (left gets the
/// ceiling — the serial DFS leans left), so at most `max_boxes` boxes
/// are ever decided speculatively no matter how large the tree is.
/// Subtrees whose allowance is spent, and subtrees ordered after the
/// lexicographically-first known witness/`AbandonAll` path, are left
/// for the replay (which usually never reaches them). The allowance is
/// a pure function of `(domain, root, max_boxes)`, so the *useful*
/// visit set is scheduling-independent; scheduling only decides how
/// much of it was precomputed in parallel versus recomputed serially.
///
/// Unlike [`search_parallel`], abandoning (incomplete) domains are fine
/// here: `Abandon`/`AbandonAll` are memoized like any other decision
/// and replayed in serial order.
#[must_use]
pub fn search_budgeted<D: SearchDomain>(
    domain: &D,
    root: D::Region,
    max_boxes: u64,
    threads: usize,
) -> (SearchOutcome<D::Witness>, SearchStats) {
    let memo = if threads > 1 && max_boxes > 1 {
        speculate(domain, &root, max_boxes, threads)
    } else {
        Memo::<D>::new()
    };
    replay(domain, root, max_boxes, memo)
}

/// The speculation phase: workers drain subtree items, decide each
/// item's root box once, and split the item's allowance between the
/// children of a `Split`.
fn speculate<D: SearchDomain>(
    domain: &D,
    root: &D::Region,
    max_boxes: u64,
    threads: usize,
) -> Memo<D> {
    let search = Speculation::<D> {
        pool: Mutex::new(vec![SpecItem {
            region: root.clone(),
            path: Vec::new(),
            allowance: max_boxes,
        }]),
        available: Condvar::new(),
        pending: AtomicUsize::new(1),
        abort: AtomicBool::new(false),
        memo: Mutex::new(HashMap::new()),
        stop: Mutex::new(None),
    };
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| spec_worker(domain, &search));
        }
    });
    search.memo.into_inner().expect("search mutex poisoned")
}

fn spec_worker<D: SearchDomain>(domain: &D, search: &Speculation<D>) {
    let _abort_guard = SpecAbortOnPanic(search);
    let mut scratch = D::Scratch::default();
    'work: loop {
        let item = {
            let mut pool = search.pool.lock().expect("search mutex poisoned");
            loop {
                if search.abort.load(AtomicOrdering::Acquire) {
                    break 'work;
                }
                // Serve the lexicographically smallest path first: the
                // replay consumes boxes in exactly that order, so
                // early-path items are the most likely to be useful.
                let min = (0..pool.len()).min_by(|&a, &b| pool[a].path.cmp(&pool[b].path));
                if let Some(i) = min {
                    break pool.swap_remove(i);
                }
                if search.pending.load(AtomicOrdering::Acquire) == 0 {
                    break 'work;
                }
                pool = search.available.wait(pool).expect("search mutex poisoned");
            }
        };

        if search.past_stop(&item.path) {
            search.finish_item();
            continue;
        }

        let depth = u32::try_from(item.path.len()).expect("split depth fits u32");
        let mut delta = SearchStats::default();
        let decision = domain.decide(&item.region, depth, &mut scratch, &mut delta);
        match &decision {
            BoxDecision::Split(a, b) => {
                // One box of the allowance was just spent on this item's
                // root; split the remainder, ceiling to the left child —
                // the serial DFS explores left subtrees first (and
                // usually deepest).
                let rest = item.allowance.saturating_sub(1);
                let right_allowance = rest / 2;
                let left_allowance = rest - right_allowance;
                let mut spawned = 0usize;
                let mut pool = search.pool.lock().expect("search mutex poisoned");
                if left_allowance > 0 {
                    let mut path = item.path.clone();
                    path.push(0);
                    pool.push(SpecItem {
                        region: a.clone(),
                        path,
                        allowance: left_allowance,
                    });
                    spawned += 1;
                }
                if right_allowance > 0 {
                    let mut path = item.path.clone();
                    path.push(1);
                    pool.push(SpecItem {
                        region: b.clone(),
                        path,
                        allowance: right_allowance,
                    });
                    spawned += 1;
                }
                if spawned > 0 {
                    search.pending.fetch_add(spawned, AtomicOrdering::AcqRel);
                    search.available.notify_all();
                }
            }
            BoxDecision::Witness(_) | BoxDecision::UniformWitness(_) | BoxDecision::AbandonAll => {
                search.note_stop(&item.path);
            }
            BoxDecision::Pruned | BoxDecision::Abandon => {}
        }
        search
            .memo
            .lock()
            .expect("search mutex poisoned")
            .insert(item.path, Speculated { decision, delta });
        search.finish_item();
    }
}

/// The replay phase: [`search_serial`]'s exact loop with path tracking,
/// consuming memoized decisions (and their stat deltas) where
/// speculation reached, deciding live where it did not.
fn replay<D: SearchDomain>(
    domain: &D,
    root: D::Region,
    max_boxes: u64,
    mut memo: Memo<D>,
) -> (SearchOutcome<D::Witness>, SearchStats) {
    let mut stats = SearchStats::default();
    let mut scratch = D::Scratch::default();
    let mut stack: Vec<(D::Region, Vec<u8>)> = vec![(root, Vec::new())];
    let mut undecided = false;

    while let Some((region, path)) = stack.pop() {
        if stats.boxes_visited >= max_boxes {
            stats.budget_exhausted = true;
            undecided = true;
            break;
        }
        let depth = u32::try_from(path.len()).expect("split depth fits u32");
        stats.boxes_visited += 1;
        stats.note_depth(depth);
        let decision = match memo.remove(&path) {
            Some(hit) => {
                // The delta holds only what `decide` booked (no
                // boxes_visited/depth, which this loop books itself), so
                // a plain merge reproduces the serial booking exactly.
                stats.merge(&hit.delta);
                hit.decision
            }
            None => domain.decide(&region, depth, &mut scratch, &mut stats),
        };
        match decision {
            BoxDecision::Pruned => {}
            BoxDecision::Witness(w) | BoxDecision::UniformWitness(w) => {
                return (SearchOutcome::Witness(w), stats);
            }
            BoxDecision::Split(a, b) => {
                let mut left = path.clone();
                left.push(0);
                let mut right = path;
                right.push(1);
                stack.push((b, right));
                stack.push((a, left));
            }
            BoxDecision::Abandon => undecided = true,
            BoxDecision::AbandonAll => {
                undecided = true;
                break;
            }
        }
    }
    let outcome = if undecided {
        SearchOutcome::Undecided
    } else {
        SearchOutcome::Proven
    };
    (outcome, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::BoxDecision;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// A toy domain over integer ranges: witnesses are the members of a
    /// fixed "bad" set; a range splits until it is a single integer.
    struct RangeDomain {
        bad: Vec<i64>,
        /// Ranges at least this wide prune immediately if they contain
        /// no bad point (models a screening tier).
        abandon_at_depth: Option<u32>,
    }

    impl RangeDomain {
        fn decide_impl(
            &self,
            (lo, hi): (i64, i64),
            depth: u32,
            stats: &mut SearchStats,
        ) -> BoxDecision<(i64, i64), i64> {
            if !self.bad.iter().any(|&b| lo <= b && b <= hi) {
                stats.pruned_correct += 1;
                return BoxDecision::Pruned;
            }
            if lo == hi {
                stats.exact_evals += 1;
                return BoxDecision::Witness(lo);
            }
            if self.bad.iter().all(|&b| lo <= b && b <= hi) && self.bad.len() as i64 == hi - lo + 1
            {
                stats.proved_wrong += 1;
                return BoxDecision::UniformWitness(lo);
            }
            if let Some(cap) = self.abandon_at_depth {
                if depth >= cap {
                    return BoxDecision::Abandon;
                }
            }
            stats.splits += 1;
            let mid = lo + (hi - lo) / 2;
            BoxDecision::Split((lo, mid), (mid + 1, hi))
        }
    }

    impl SearchDomain for RangeDomain {
        type Region = (i64, i64);
        type Witness = i64;
        type Prepared = ();
        type Scratch = ();

        fn decide(
            &self,
            &(lo, hi): &(i64, i64),
            depth: u32,
            _scratch: &mut (),
            stats: &mut SearchStats,
        ) -> BoxDecision<(i64, i64), i64> {
            self.decide_impl((lo, hi), depth, stats)
        }
    }

    /// [`RangeDomain`] with batched frontier screening: `prepare_batch`
    /// hands every box its own region back, and `decide_prepared`
    /// asserts the alignment — a prepared value arriving at the wrong
    /// box would trip it immediately.
    struct BatchRangeDomain {
        inner: RangeDomain,
        width: usize,
        prepare_calls: AtomicUsize,
        prepared_boxes: AtomicUsize,
    }

    impl SearchDomain for BatchRangeDomain {
        type Region = (i64, i64);
        type Witness = i64;
        type Prepared = (i64, i64);
        type Scratch = ();

        fn batch_width(&self) -> usize {
            self.width
        }

        fn prepare_batch(
            &self,
            regions: &[&(i64, i64)],
            _scratch: &mut (),
            _stats: &mut SearchStats,
        ) -> Vec<(i64, i64)> {
            self.prepare_calls.fetch_add(1, Ordering::Relaxed);
            regions.iter().map(|&&r| r).collect()
        }

        fn decide(
            &self,
            &(lo, hi): &(i64, i64),
            depth: u32,
            _scratch: &mut (),
            stats: &mut SearchStats,
        ) -> BoxDecision<(i64, i64), i64> {
            self.inner.decide_impl((lo, hi), depth, stats)
        }

        fn decide_prepared(
            &self,
            region: &(i64, i64),
            prepared: Option<(i64, i64)>,
            depth: u32,
            _scratch: &mut (),
            stats: &mut SearchStats,
        ) -> BoxDecision<(i64, i64), i64> {
            if let Some(p) = prepared {
                assert_eq!(p, *region, "prepared value delivered to the wrong box");
                self.prepared_boxes.fetch_add(1, Ordering::Relaxed);
            }
            self.inner.decide_impl(*region, depth, stats)
        }
    }

    #[test]
    fn serial_finds_first_witness_or_proves() {
        let domain = RangeDomain {
            bad: vec![17, 40],
            abandon_at_depth: None,
        };
        let (outcome, stats) = search_serial(&domain, (0, 63), None);
        assert_eq!(outcome, SearchOutcome::Witness(17), "canonical first");
        assert!(stats.boxes_visited > 0);
        let clean = RangeDomain {
            bad: vec![],
            abandon_at_depth: None,
        };
        let (outcome, stats) = search_serial(&clean, (0, 63), None);
        assert!(outcome.is_proven());
        assert_eq!(stats.pruned_correct, 1);
        assert_eq!(outcome.witness(), None);
    }

    #[test]
    fn parallel_reproduces_the_serial_witness() {
        let domain = RangeDomain {
            bad: vec![55, 9, 33],
            abandon_at_depth: None,
        };
        let (serial, _) = search_serial(&domain, (0, 63), None);
        for threads in [2, 4] {
            let (parallel, _) = search_parallel(&domain, (0, 63), threads);
            assert_eq!(parallel, serial, "{threads} threads");
        }
        let (dispatched, _) = search_with_threads(&domain, (0, 63), 4, None);
        assert_eq!(dispatched, serial);
    }

    #[test]
    fn batched_frontier_matches_the_scalar_search() {
        for (bad, budget) in [
            (vec![], None),
            (vec![55, 9, 33], None),
            (vec![63], Some(7)),
            (vec![4, 5, 6, 7], None),
        ] {
            let plain = RangeDomain {
                bad: bad.clone(),
                abandon_at_depth: None,
            };
            let batched = BatchRangeDomain {
                inner: RangeDomain {
                    bad,
                    abandon_at_depth: None,
                },
                width: 4,
                prepare_calls: AtomicUsize::new(0),
                prepared_boxes: AtomicUsize::new(0),
            };
            let (want, want_stats) = search_serial(&plain, (0, 63), budget);
            let (got, got_stats) = search_serial(&batched, (0, 63), budget);
            assert_eq!(got, want, "batched serial must match scalar");
            assert_eq!(got_stats, want_stats, "batched stats must match scalar");
            assert!(
                batched.prepare_calls.load(Ordering::Relaxed) > 0,
                "batching must actually run"
            );
            if budget.is_none() {
                let (par, _) = search_parallel(&batched, (0, 63), 3);
                assert_eq!(par, want, "batched parallel must match scalar");
            }
        }
    }

    #[test]
    fn budget_exhaustion_degrades_to_undecided() {
        let domain = RangeDomain {
            bad: vec![63],
            abandon_at_depth: None,
        };
        let (outcome, stats) = search_serial(&domain, (0, 63), Some(2));
        assert_eq!(outcome, SearchOutcome::Undecided);
        assert!(stats.budget_exhausted);
        assert_eq!(stats.boxes_visited, 2);
    }

    #[test]
    fn depth_abandon_degrades_to_undecided_without_budget_flag() {
        let domain = RangeDomain {
            bad: vec![63],
            abandon_at_depth: Some(1),
        };
        let (outcome, stats) = search_serial(&domain, (0, 63), None);
        assert_eq!(outcome, SearchOutcome::Undecided);
        assert!(!stats.budget_exhausted);
    }

    #[test]
    fn budgeted_search_is_bit_identical_to_serial_at_every_thread_count() {
        // Witness, proof, budget-exhaustion and abandoning cases — the
        // budgeted parallel search must reproduce the serial outcome
        // *and stats* exactly at every thread count.
        let cases: Vec<RangeDomain> = vec![
            RangeDomain {
                bad: vec![],
                abandon_at_depth: None,
            },
            RangeDomain {
                bad: vec![17, 40],
                abandon_at_depth: None,
            },
            RangeDomain {
                bad: vec![63],
                abandon_at_depth: None,
            },
            RangeDomain {
                bad: vec![55, 9, 33],
                abandon_at_depth: Some(3),
            },
            RangeDomain {
                bad: vec![21],
                abandon_at_depth: Some(2),
            },
        ];
        for domain in &cases {
            for budget in [1u64, 2, 5, 13, 64, 1000] {
                let (want, want_stats) = search_serial(domain, (0, 63), Some(budget));
                for threads in [1usize, 2, 4] {
                    let (got, got_stats) = search_budgeted(domain, (0, 63), budget, threads);
                    assert_eq!(
                        got, want,
                        "outcome must match serial (bad={:?}, budget={budget}, {threads} threads)",
                        domain.bad
                    );
                    assert_eq!(
                        got_stats, want_stats,
                        "stats must match serial (bad={:?}, budget={budget}, {threads} threads)",
                        domain.bad
                    );
                }
            }
        }
    }

    #[test]
    fn budget_with_threads_dispatches_to_the_budgeted_search() {
        let domain = RangeDomain {
            bad: vec![63],
            abandon_at_depth: None,
        };
        let (want, want_stats) = search_serial(&domain, (0, 63), Some(8));
        let (got, got_stats) = search_with_threads(&domain, (0, 63), 4, Some(8));
        assert_eq!(got, want);
        assert_eq!(got_stats, want_stats);
    }

    #[test]
    #[should_panic(expected = "scoped thread panicked")]
    fn abandoning_domain_in_parallel_is_rejected() {
        // An abandoning decision would make the unbudgeted parallel
        // verdict scheduling-dependent; the worker panics instead and
        // the scope propagates it.
        let domain = RangeDomain {
            bad: vec![63],
            abandon_at_depth: Some(1),
        };
        let _ = search_parallel(&domain, (0, 63), 2);
    }

    #[test]
    fn collector_enumerates_with_cap_and_exhaustion() {
        let domain = RangeDomain {
            bad: vec![4, 5, 6, 7],
            abandon_at_depth: None,
        };
        let expand = |region: &(i64, i64),
                      first: i64,
                      sink: &mut Vec<i64>,
                      _stats: &mut SearchStats|
         -> bool {
            let cap = 3;
            for v in first..=region.1 {
                sink.push(v);
                if sink.len() == cap {
                    return false;
                }
            }
            true
        };
        // The (4,7) box is uniformly bad once the search narrows to it.
        let (found, exhausted, _) = collect_witnesses(&domain, (0, 7), 3, expand);
        assert_eq!(found, vec![4, 5, 6]);
        assert!(!exhausted, "cap reached before the region was exhausted");

        let all = |region: &(i64, i64),
                   first: i64,
                   sink: &mut Vec<i64>,
                   _stats: &mut SearchStats|
         -> bool {
            sink.extend(first..=region.1);
            true
        };
        let (found, exhausted, _) = collect_witnesses(&domain, (0, 7), usize::MAX, all);
        assert_eq!(found, vec![4, 5, 6, 7]);
        assert!(exhausted);
    }

    #[test]
    #[should_panic(expected = "cap must be positive")]
    fn collector_rejects_zero_cap() {
        let domain = RangeDomain {
            bad: vec![],
            abandon_at_depth: None,
        };
        let _ = collect_witnesses(&domain, (0, 7), 0, |_, _, _, _| true);
    }
}
