//! The branch-and-bound loops: serial DFS, work-stealing parallel
//! exploration with deterministic first-witness semantics, and the
//! single-pass witness collector (DESIGN.md §7/§12).

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering as AtomicOrdering};
use std::sync::{Condvar, Mutex};

use crate::domain::{BoxDecision, SearchDomain, SearchOutcome};
use crate::stats::SearchStats;

/// Serial depth-first search over `root`, LIFO so memory stays at
/// `O(depth · box size)`.
///
/// `max_boxes` bounds how many boxes may be taken off the stack; when
/// it runs out the outcome degrades to [`SearchOutcome::Undecided`]
/// with `budget_exhausted` set (pass `None` for complete domains —
/// they terminate by splitting to unsplittable boxes).
#[must_use]
pub fn search_serial<D: SearchDomain>(
    domain: &D,
    root: D::Region,
    max_boxes: Option<u64>,
) -> (SearchOutcome<D::Witness>, SearchStats) {
    let mut stats = SearchStats::default();
    let mut stack = vec![(root, 0u32)];
    let mut undecided = false;

    while let Some((region, depth)) = stack.pop() {
        if let Some(max) = max_boxes {
            if stats.boxes_visited >= max {
                stats.budget_exhausted = true;
                undecided = true;
                break;
            }
        }
        stats.boxes_visited += 1;
        stats.note_depth(depth);
        match domain.decide(&region, depth, &mut stats) {
            BoxDecision::Pruned => {}
            BoxDecision::Witness(w) | BoxDecision::UniformWitness(w) => {
                return (SearchOutcome::Witness(w), stats);
            }
            BoxDecision::Split(a, b) => {
                // Push the right half first so the left (canonically
                // first) half is explored first — deterministic witness
                // order.
                stack.push((b, depth + 1));
                stack.push((a, depth + 1));
            }
            BoxDecision::Abandon => undecided = true,
            BoxDecision::AbandonAll => {
                undecided = true;
                break;
            }
        }
    }
    let outcome = if undecided {
        SearchOutcome::Undecided
    } else {
        SearchOutcome::Proven
    };
    (outcome, stats)
}

/// Dispatches to [`search_serial`] or [`search_parallel`] on `threads`.
///
/// # Panics
///
/// Panics if a box budget is combined with `threads > 1`: budgeted
/// searches must stay serial so the set of visited boxes — and with it
/// the verdict — is deterministic (resident caches replay them bit for
/// bit).
#[must_use]
pub fn search_with_threads<D: SearchDomain>(
    domain: &D,
    root: D::Region,
    threads: usize,
    max_boxes: Option<u64>,
) -> (SearchOutcome<D::Witness>, SearchStats) {
    if threads <= 1 {
        search_serial(domain, root, max_boxes)
    } else {
        assert!(
            max_boxes.is_none(),
            "box budgets require the serial search (deterministic visit set)"
        );
        search_parallel(domain, root, threads)
    }
}

// ---------------------------------------------------------------------------
// Witness collection
// ---------------------------------------------------------------------------

/// Collects up to `cap` distinct witnesses in a **single** DFS pass.
///
/// Semantically equivalent to restarting the search `cap` times with
/// growing exclusion sets, but each proven-safe box is pruned once
/// instead of once per restart — the asymptotic difference between
/// `O(search)` and `O(cap · search)`.
///
/// `expand_uniform` handles a [`BoxDecision::UniformWitness`] box: it
/// receives the box and its first witness and must push *every* witness
/// of the box (first included, canonical order) into the sink,
/// returning `false` as soon as the sink reaches the cap (collection
/// stops immediately). The hook exists because only the domain knows
/// how to enumerate a box's concretization.
///
/// Returns `(witnesses, exhausted, stats)` — `exhausted` is `true` when
/// the whole root was explored (every witness found before the cap and
/// no box abandoned).
#[must_use]
pub fn collect_witnesses<D: SearchDomain>(
    domain: &D,
    root: D::Region,
    cap: usize,
    mut expand_uniform: impl FnMut(
        &D::Region,
        D::Witness,
        &mut Vec<D::Witness>,
        &mut SearchStats,
    ) -> bool,
) -> (Vec<D::Witness>, bool, SearchStats) {
    assert!(cap > 0, "cap must be positive");
    let mut stats = SearchStats::default();
    let mut found = Vec::new();
    let mut stack = vec![(root, 0u32)];
    let mut complete = true;

    while let Some((region, depth)) = stack.pop() {
        stats.boxes_visited += 1;
        stats.note_depth(depth);
        match domain.decide(&region, depth, &mut stats) {
            BoxDecision::Pruned => {}
            BoxDecision::Witness(w) => {
                found.push(w);
                if found.len() == cap {
                    return (found, false, stats);
                }
            }
            BoxDecision::UniformWitness(first) => {
                if !expand_uniform(&region, first, &mut found, &mut stats) {
                    return (found, false, stats);
                }
            }
            BoxDecision::Split(a, b) => {
                stack.push((b, depth + 1));
                stack.push((a, depth + 1));
            }
            BoxDecision::Abandon => complete = false,
            BoxDecision::AbandonAll => {
                complete = false;
                break;
            }
        }
    }
    (found, complete, stats)
}

// ---------------------------------------------------------------------------
// Parallel engine (DESIGN.md §7)
// ---------------------------------------------------------------------------

/// A box plus its DFS path from the root (`0` = left child, `1` =
/// right).
///
/// Decided boxes are leaves of the explored tree, so their paths are
/// prefix-free and lexicographic path order is exactly serial DFS
/// pre-order — the key to deterministic first-witness semantics.
struct Work<R> {
    region: R,
    path: Vec<u8>,
}

/// Shared state of one parallel search.
struct ParallelSearch<R, W> {
    /// Steal pool: idle workers pop from here; busy workers donate the
    /// sibling of every split while the pool runs low.
    pool: Mutex<Vec<Work<R>>>,
    /// Parks idle workers; notified when work arrives, when the last
    /// box completes, and when a sibling worker panics.
    available: Condvar,
    /// Boxes queued or in flight; `0` means the whole tree is explored.
    pending: AtomicUsize,
    /// Set when a worker panics, so its siblings stop instead of
    /// waiting forever on `pending`.
    abort: AtomicBool,
    /// Best (lexicographically-first-path) witness found so far.
    best: Mutex<Option<(Vec<u8>, W)>>,
    /// Per-worker stats, merged once at each worker's exit.
    stats: Mutex<SearchStats>,
}

impl<R, W> ParallelSearch<R, W> {
    /// Records a candidate witness; keeps the smaller path on conflict.
    fn offer(&self, path: Vec<u8>, witness: W) {
        let mut best = self.best.lock().expect("search mutex poisoned");
        match &*best {
            Some((existing, _)) if *existing <= path => {}
            _ => *best = Some((path, witness)),
        }
    }

    /// `true` once `path` can no longer influence the outcome: a
    /// candidate with a smaller (or equal-prefix) path already exists.
    ///
    /// A candidate only *loses* to boxes with strictly smaller paths,
    /// so anything ≥ the current best path is dead work.
    fn is_dead(&self, path: &[u8]) -> bool {
        let best = self.best.lock().expect("search mutex poisoned");
        matches!(&*best, Some((winning, _)) if winning.as_slice() <= path)
    }

    /// Marks one box fully processed; wakes every parked worker when it
    /// was the last (taking the pool lock first so no waiter can miss
    /// the notification between its predicate check and its `wait`).
    fn finish_box(&self) {
        if self.pending.fetch_sub(1, AtomicOrdering::AcqRel) == 1 {
            let _pool = self.pool.lock().expect("search mutex poisoned");
            self.available.notify_all();
        }
    }
}

/// Raises the search's abort flag if the owning worker unwinds, so
/// sibling workers exit their idle wait instead of hanging on a
/// `pending` count that can no longer reach zero; `std::thread::scope`
/// then joins everyone and propagates the original panic.
struct AbortOnPanic<'a, R, W>(&'a ParallelSearch<R, W>);

impl<R, W> Drop for AbortOnPanic<'_, R, W> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.abort.store(true, AtomicOrdering::Release);
            self.0.available.notify_all();
        }
    }
}

/// Work-stealing parallel search: workers keep a private LIFO stack and
/// overflow halves into a shared steal pool. Each box carries its DFS
/// *path key*, and a found witness only wins if no candidate with a
/// lexicographically smaller path exists — which reproduces the serial
/// first-witness order exactly, so serial and parallel runs return the
/// identical witness (DESIGN.md §7).
///
/// Requires a **complete** domain: every box resolves to
/// `Pruned`/`Witness`/`Split`. Abandoning decisions make the verdict
/// depend on exploration order, so a worker that receives one panics
/// (budgeted/incomplete domains belong on [`search_serial`], which
/// [`search_with_threads`] enforces for box budgets).
///
/// # Panics
///
/// Panics if the domain returns [`BoxDecision::Abandon`] or
/// [`BoxDecision::AbandonAll`].
#[must_use]
pub fn search_parallel<D: SearchDomain>(
    domain: &D,
    root: D::Region,
    threads: usize,
) -> (SearchOutcome<D::Witness>, SearchStats) {
    let search = ParallelSearch {
        pool: Mutex::new(vec![Work {
            region: root,
            path: Vec::new(),
        }]),
        available: Condvar::new(),
        pending: AtomicUsize::new(1),
        abort: AtomicBool::new(false),
        best: Mutex::new(None),
        stats: Mutex::new(SearchStats::default()),
    };
    // Keep roughly two stealable boxes per worker in the pool; beyond
    // that splits stay in the worker's private stack.
    let pool_target = threads * 2;

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| worker(domain, &search, pool_target));
        }
    });

    let stats = *search.stats.lock().expect("search mutex poisoned");
    let best = search.best.into_inner().expect("search mutex poisoned");
    let outcome = match best {
        Some((_, witness)) => SearchOutcome::Witness(witness),
        // Complete domains never abandon (enforced by the worker), so
        // an empty best is a full proof.
        None => SearchOutcome::Proven,
    };
    (outcome, stats)
}

fn worker<D: SearchDomain>(
    domain: &D,
    search: &ParallelSearch<D::Region, D::Witness>,
    pool_target: usize,
) {
    let _abort_guard = AbortOnPanic(search);
    let mut local: Vec<Work<D::Region>> = Vec::new();
    let mut stats = SearchStats::default();
    'work: loop {
        let work = match local.pop() {
            Some(w) => w,
            None => {
                // Park on the pool until work, completion, or abort.
                let mut pool = search.pool.lock().expect("search mutex poisoned");
                loop {
                    if search.abort.load(AtomicOrdering::Acquire) {
                        break 'work;
                    }
                    if let Some(w) = pool.pop() {
                        break w;
                    }
                    if search.pending.load(AtomicOrdering::Acquire) == 0 {
                        break 'work;
                    }
                    pool = search.available.wait(pool).expect("search mutex poisoned");
                }
            }
        };

        if search.abort.load(AtomicOrdering::Acquire) {
            break;
        }
        if search.is_dead(&work.path) {
            // Nothing in this subtree can beat the current best witness.
            search.finish_box();
            continue;
        }

        stats.boxes_visited += 1;
        let depth = u32::try_from(work.path.len()).expect("split depth fits u32");
        stats.note_depth(depth);
        match domain.decide(&work.region, depth, &mut stats) {
            BoxDecision::Pruned => {}
            BoxDecision::Witness(w) | BoxDecision::UniformWitness(w) => {
                search.offer(work.path.clone(), w);
            }
            BoxDecision::Abandon | BoxDecision::AbandonAll => {
                // An abandoning domain makes the verdict depend on the
                // exploration order (serial stops at the first
                // `AbandonAll`; concurrent workers may race a witness
                // against the abort flag), so the deterministic
                // first-witness contract cannot hold — refuse loudly
                // instead of returning a scheduling-dependent answer.
                panic!(
                    "incomplete domains (Abandon/AbandonAll) must use the \
                     serial search"
                );
            }
            BoxDecision::Split(a, b) => {
                let mut left_path = work.path.clone();
                left_path.push(0);
                let mut right_path = work.path;
                right_path.push(1);
                search.pending.fetch_add(1, AtomicOrdering::AcqRel);
                let right = Work {
                    region: b,
                    path: right_path,
                };
                // Donate the right half when the pool runs low so idle
                // workers always find food; keep it local otherwise.
                {
                    let mut pool = search.pool.lock().expect("search mutex poisoned");
                    if pool.len() < pool_target {
                        pool.push(right);
                        search.available.notify_one();
                    } else {
                        drop(pool);
                        local.push(right);
                    }
                }
                local.push(Work {
                    region: a,
                    path: left_path,
                });
                // The parent box is consumed but two children were
                // added: net pending change is +1, done above.
                continue;
            }
        }
        search.finish_box();
    }
    search
        .stats
        .lock()
        .expect("search mutex poisoned")
        .merge(&stats);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::BoxDecision;

    /// A toy domain over integer ranges: witnesses are the members of a
    /// fixed "bad" set; a range splits until it is a single integer.
    struct RangeDomain {
        bad: Vec<i64>,
        /// Ranges at least this wide prune immediately if they contain
        /// no bad point (models a screening tier).
        abandon_at_depth: Option<u32>,
    }

    impl SearchDomain for RangeDomain {
        type Region = (i64, i64);
        type Witness = i64;

        fn decide(
            &self,
            &(lo, hi): &(i64, i64),
            depth: u32,
            stats: &mut SearchStats,
        ) -> BoxDecision<(i64, i64), i64> {
            if !self.bad.iter().any(|&b| lo <= b && b <= hi) {
                stats.pruned_correct += 1;
                return BoxDecision::Pruned;
            }
            if lo == hi {
                stats.exact_evals += 1;
                return BoxDecision::Witness(lo);
            }
            if self.bad.iter().all(|&b| lo <= b && b <= hi) && self.bad.len() as i64 == hi - lo + 1
            {
                stats.proved_wrong += 1;
                return BoxDecision::UniformWitness(lo);
            }
            if let Some(cap) = self.abandon_at_depth {
                if depth >= cap {
                    return BoxDecision::Abandon;
                }
            }
            stats.splits += 1;
            let mid = lo + (hi - lo) / 2;
            BoxDecision::Split((lo, mid), (mid + 1, hi))
        }
    }

    #[test]
    fn serial_finds_first_witness_or_proves() {
        let domain = RangeDomain {
            bad: vec![17, 40],
            abandon_at_depth: None,
        };
        let (outcome, stats) = search_serial(&domain, (0, 63), None);
        assert_eq!(outcome, SearchOutcome::Witness(17), "canonical first");
        assert!(stats.boxes_visited > 0);
        let clean = RangeDomain {
            bad: vec![],
            abandon_at_depth: None,
        };
        let (outcome, stats) = search_serial(&clean, (0, 63), None);
        assert!(outcome.is_proven());
        assert_eq!(stats.pruned_correct, 1);
        assert_eq!(outcome.witness(), None);
    }

    #[test]
    fn parallel_reproduces_the_serial_witness() {
        let domain = RangeDomain {
            bad: vec![55, 9, 33],
            abandon_at_depth: None,
        };
        let (serial, _) = search_serial(&domain, (0, 63), None);
        for threads in [2, 4] {
            let (parallel, _) = search_parallel(&domain, (0, 63), threads);
            assert_eq!(parallel, serial, "{threads} threads");
        }
        let (dispatched, _) = search_with_threads(&domain, (0, 63), 4, None);
        assert_eq!(dispatched, serial);
    }

    #[test]
    fn budget_exhaustion_degrades_to_undecided() {
        let domain = RangeDomain {
            bad: vec![63],
            abandon_at_depth: None,
        };
        let (outcome, stats) = search_serial(&domain, (0, 63), Some(2));
        assert_eq!(outcome, SearchOutcome::Undecided);
        assert!(stats.budget_exhausted);
        assert_eq!(stats.boxes_visited, 2);
    }

    #[test]
    fn depth_abandon_degrades_to_undecided_without_budget_flag() {
        let domain = RangeDomain {
            bad: vec![63],
            abandon_at_depth: Some(1),
        };
        let (outcome, stats) = search_serial(&domain, (0, 63), None);
        assert_eq!(outcome, SearchOutcome::Undecided);
        assert!(!stats.budget_exhausted);
    }

    #[test]
    #[should_panic(expected = "serial search")]
    fn budget_with_threads_is_rejected() {
        let domain = RangeDomain {
            bad: vec![],
            abandon_at_depth: None,
        };
        let _ = search_with_threads(&domain, (0, 7), 2, Some(8));
    }

    #[test]
    #[should_panic(expected = "scoped thread panicked")]
    fn abandoning_domain_in_parallel_is_rejected() {
        // An abandoning decision would make the parallel verdict
        // scheduling-dependent; the worker panics instead and the
        // scope propagates it.
        let domain = RangeDomain {
            bad: vec![63],
            abandon_at_depth: Some(1),
        };
        let _ = search_parallel(&domain, (0, 63), 2);
    }

    #[test]
    fn collector_enumerates_with_cap_and_exhaustion() {
        let domain = RangeDomain {
            bad: vec![4, 5, 6, 7],
            abandon_at_depth: None,
        };
        let expand = |region: &(i64, i64),
                      first: i64,
                      sink: &mut Vec<i64>,
                      _stats: &mut SearchStats|
         -> bool {
            let cap = 3;
            for v in first..=region.1 {
                sink.push(v);
                if sink.len() == cap {
                    return false;
                }
            }
            true
        };
        // The (4,7) box is uniformly bad once the search narrows to it.
        let (found, exhausted, _) = collect_witnesses(&domain, (0, 7), 3, expand);
        assert_eq!(found, vec![4, 5, 6]);
        assert!(!exhausted, "cap reached before the region was exhausted");

        let all = |region: &(i64, i64),
                   first: i64,
                   sink: &mut Vec<i64>,
                   _stats: &mut SearchStats|
         -> bool {
            sink.extend(first..=region.1);
            true
        };
        let (found, exhausted, _) = collect_witnesses(&domain, (0, 7), usize::MAX, all);
        assert_eq!(found, vec![4, 5, 6, 7]);
        assert!(exhausted);
    }

    #[test]
    #[should_panic(expected = "cap must be positive")]
    fn collector_rejects_zero_cap() {
        let domain = RangeDomain {
            bad: vec![],
            abandon_at_depth: None,
        };
        let _ = collect_witnesses(&domain, (0, 7), 0, |_, _, _, _| true);
    }
}
