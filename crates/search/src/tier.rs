//! Which screening tiers run before the domain's exact decision
//! procedure — shared by the input-noise, weight-fault and joint
//! checkers.

use serde::{Deserialize, Serialize};

/// Which screening tiers route each box before exact work runs.
///
/// Every tier is a sound over-approximation, so the *verdict and
/// witness* are identical across all four settings (enforced by
/// `tests/checker_cross_validation.rs`); only which tier pays for each
/// box changes. Cheapest-first is the design invariant: an interval
/// pass is one `f64` multiply-add per weight, a zonotope pass is one
/// per weight *per tracked symbol*, exact rational propagation is
/// gcd-heavy `i128` arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ScreeningTier {
    /// Exact propagation only (the seed baseline).
    None,
    /// Outward-rounded `f64` interval screen (DESIGN.md §6).
    Interval,
    /// Affine-form zonotope screen classifying on output differences
    /// (DESIGN.md §10).
    Zonotope,
    /// Interval first, zonotope on interval-`Unknown`, exact last —
    /// cheapest tier that can decide each box pays for it.
    Cascade,
}

impl ScreeningTier {
    /// Every variant, in CLI listing order.
    pub const ALL: [ScreeningTier; 4] = [
        ScreeningTier::None,
        ScreeningTier::Interval,
        ScreeningTier::Zonotope,
        ScreeningTier::Cascade,
    ];

    /// `true` if the float-interval screen runs.
    #[must_use]
    pub fn uses_interval(self) -> bool {
        matches!(self, ScreeningTier::Interval | ScreeningTier::Cascade)
    }

    /// `true` if the zonotope screen runs.
    #[must_use]
    pub fn uses_zonotope(self) -> bool {
        matches!(self, ScreeningTier::Zonotope | ScreeningTier::Cascade)
    }

    /// `true` unless every box goes straight to exact propagation.
    #[must_use]
    pub fn is_active(self) -> bool {
        self != ScreeningTier::None
    }

    /// The CLI spelling (`--screening=<name>`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ScreeningTier::None => "none",
            ScreeningTier::Interval => "interval",
            ScreeningTier::Zonotope => "zonotope",
            ScreeningTier::Cascade => "cascade",
        }
    }

    /// Parses the CLI spelling, case-insensitively and ignoring
    /// surrounding whitespace (`--screening=Cascade` is accepted).
    ///
    /// # Errors
    ///
    /// Returns a message listing every valid variant.
    pub fn parse(text: &str) -> Result<Self, String> {
        let lowered = text.trim().to_ascii_lowercase();
        ScreeningTier::ALL
            .into_iter()
            .find(|tier| tier.name() == lowered)
            .ok_or_else(|| {
                let names: Vec<&str> = ScreeningTier::ALL.iter().map(|t| t.name()).collect();
                format!(
                    "unknown screening tier `{text}` (expected one of: {})",
                    names.join(", ")
                )
            })
    }
}

impl std::str::FromStr for ScreeningTier {
    type Err = String;

    /// [`ScreeningTier::parse`] under the standard trait, so
    /// `text.parse::<ScreeningTier>()` works wherever `FromStr` is
    /// expected.
    fn from_str(text: &str) -> Result<Self, Self::Err> {
        ScreeningTier::parse(text)
    }
}

impl std::fmt::Display for ScreeningTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip_through_parse_and_from_str() {
        for tier in ScreeningTier::ALL {
            assert_eq!(ScreeningTier::parse(tier.name()), Ok(tier));
            assert_eq!(tier.name().parse::<ScreeningTier>(), Ok(tier));
            assert_eq!(tier.to_string(), tier.name());
        }
    }

    #[test]
    fn parse_is_case_insensitive_and_trims() {
        assert_eq!(
            ScreeningTier::parse(" Cascade "),
            Ok(ScreeningTier::Cascade)
        );
        assert_eq!(
            "ZONOTOPE".parse::<ScreeningTier>(),
            Ok(ScreeningTier::Zonotope)
        );
        assert_eq!("None".parse::<ScreeningTier>(), Ok(ScreeningTier::None));
    }

    #[test]
    fn errors_list_every_variant() {
        let err = "frobnicate".parse::<ScreeningTier>().unwrap_err();
        for tier in ScreeningTier::ALL {
            assert!(err.contains(tier.name()), "{err} lacks {}", tier.name());
        }
        assert!(err.contains("frobnicate"), "{err} must echo the input");
    }

    #[test]
    fn tier_activity_flags() {
        assert!(ScreeningTier::Cascade.uses_interval());
        assert!(ScreeningTier::Cascade.uses_zonotope());
        assert!(!ScreeningTier::Interval.uses_zonotope());
        assert!(!ScreeningTier::Zonotope.uses_interval());
        assert!(!ScreeningTier::None.is_active());
        assert!(ScreeningTier::Interval.is_active());
    }
}
