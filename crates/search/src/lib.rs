//! # fannet-search
//!
//! The domain-generic branch-and-bound core behind every FANNet analysis
//! (DESIGN.md §12). Input-noise verification (`fannet-verify`),
//! weight-fault verification (`fannet-faults`) and the joint
//! input×weight product domain are all instances of one algorithm:
//!
//! 1. route each box through a **cascade** of sound classifiers,
//!    cheapest first ([`Cascade`], [`Classifier`]);
//! 2. prune boxes proven uniformly correct, stop on boxes proven
//!    uniformly wrong (with a concrete witness), split the rest
//!    ([`SearchDomain::decide`], [`BoxDecision`]);
//! 3. explore the box tree serially ([`search_serial`]) or with
//!    work-stealing workers whose path keys reproduce the serial
//!    first-witness order exactly ([`search_parallel`]);
//! 4. bound the answer from below with a verdict-driven bisection
//!    ([`tolerance_search`]).
//!
//! The crate owns no abstract domain of its own: a `SearchDomain`
//! supplies the region type, the split policy and the per-box decision,
//! and discharges the soundness obligations documented on each trait.
//! [`SearchStats`] is the single counter block shared by every
//! instantiation — per-tier hits/fallbacks, boxes, splits, budgets.

pub mod bisect;
pub mod cascade;
pub mod domain;
pub mod solve;
pub mod stats;
pub mod tier;

pub use bisect::{tolerance_search, ToleranceResult, ToleranceSearch};
pub use cascade::{BoxVerdict, Cascade, Classifier, TierKind, TierTimer};
pub use domain::{BoxDecision, SearchDomain, SearchOutcome};
pub use solve::{
    collect_witnesses, search_budgeted, search_parallel, search_serial, search_with_threads,
};
pub use stats::SearchStats;
pub use tier::ScreeningTier;
