//! The screening cascade: a sequence of sound box classifiers, cheapest
//! first, with per-tier accounting (DESIGN.md §12).

use crate::stats::SearchStats;

/// An opt-in monotonic clock for per-tier cost attribution
/// (DESIGN.md §14).
///
/// Disabled (the default) it is a no-op — `time` runs the closure and
/// reports zero nanoseconds, so untraced queries never pay for a clock
/// read and their stats stay bit-identical to pre-timer builds. Enabled
/// it brackets the closure with [`std::time::Instant`] reads.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TierTimer {
    enabled: bool,
}

impl TierTimer {
    /// The no-op timer (every untraced query).
    #[must_use]
    pub fn disabled() -> Self {
        TierTimer { enabled: false }
    }

    /// A live timer (queries answering a `"trace": true` request or a
    /// slow-query threshold).
    #[must_use]
    pub fn enabled() -> Self {
        TierTimer { enabled: true }
    }

    /// Whether this timer reads the clock.
    #[must_use]
    pub fn is_enabled(self) -> bool {
        self.enabled
    }

    /// Runs `f` and returns its result plus the elapsed nanoseconds
    /// (zero when disabled).
    pub fn time<T>(self, f: impl FnOnce() -> T) -> (T, u64) {
        if !self.enabled {
            return (f(), 0);
        }
        let start = std::time::Instant::now();
        let out = f();
        let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        (out, ns)
    }
}

/// Sound classification verdict for a whole box.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BoxVerdict {
    /// Every point of the box keeps the predicted label equal to the
    /// expected one.
    AlwaysCorrect,
    /// Every point of the box produces a different label.
    AlwaysWrong,
    /// The classifier cannot decide; the box must be split, enumerated
    /// or handed to a stronger tier.
    Unknown,
}

/// Which [`SearchStats`] counters a classifier's verdicts land in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TierKind {
    /// Outward-rounded `f64` interval propagation
    /// (`interval_hits`/`interval_fallbacks`).
    Interval,
    /// Affine-form zonotope propagation
    /// (`zonotope_hits`/`zonotope_fallbacks`).
    Zonotope,
    /// Exact rational interval propagation
    /// (`exact_decisions`/`exact_fallbacks`).
    Exact,
}

/// One screening tier over regions of type `R`.
///
/// # Soundness obligations
///
/// A classifier's verdicts must be **proofs** over the domain's
/// concretization γ(R) (every concrete point the search's top-level
/// claim quantifies over — noise grid points, faulted networks, or
/// noise×fault pairs):
///
/// * [`BoxVerdict::AlwaysCorrect`] ⇒ every point of γ(R) classifies as
///   the expected label;
/// * [`BoxVerdict::AlwaysWrong`] ⇒ every point of γ(R) classifies as
///   some other label;
/// * [`BoxVerdict::Unknown`] is always sound.
///
/// Incompleteness is free (a weaker tier just falls through); a single
/// unsound verdict breaks the whole search, so each implementation
/// carries its own enclosure proof (DESIGN.md §6/§10/§11).
pub trait Classifier<R: ?Sized>: Sync {
    /// Which counters this tier's verdicts feed.
    fn tier(&self) -> TierKind;

    /// Classifies one box.
    fn classify(&self, region: &R) -> BoxVerdict;
}

/// An ordered sequence of classifiers, consulted cheapest-first until
/// one decides.
///
/// Every tier that *runs* books either a hit (it decided) or a fallback
/// (it returned `Unknown` and handed the box on) into its
/// [`TierKind`]'s counters — the per-tier accounting both legacy stat
/// blocks exposed.
pub struct Cascade<'a, R: ?Sized> {
    tiers: Vec<&'a (dyn Classifier<R> + 'a)>,
    timer: TierTimer,
}

impl<'a, R: ?Sized> Cascade<'a, R> {
    /// Builds a cascade from the tiers that are active for this query,
    /// in consultation order (timer disabled).
    #[must_use]
    pub fn new(tiers: Vec<&'a (dyn Classifier<R> + 'a)>) -> Self {
        Cascade {
            tiers,
            timer: TierTimer::disabled(),
        }
    }

    /// The empty cascade: every box falls through undecided.
    #[must_use]
    pub fn empty() -> Self {
        Cascade {
            tiers: Vec::new(),
            timer: TierTimer::disabled(),
        }
    }

    /// Attaches a per-tier timer; [`Cascade::classify`] then books each
    /// tier's elapsed nanoseconds next to its hit/fallback counters.
    #[must_use]
    pub fn with_timer(mut self, timer: TierTimer) -> Self {
        self.timer = timer;
        self
    }

    /// The attached timer (domains reuse it to clock their exact
    /// fallback work with the same enablement).
    #[must_use]
    pub fn timer(&self) -> TierTimer {
        self.timer
    }

    /// `true` when no tier is active.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tiers.is_empty()
    }

    /// Number of active tiers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tiers.len()
    }

    /// Runs the tiers in order and returns the first decided verdict
    /// (`Unknown` if every tier gives up), booking per-tier counters.
    pub fn classify(&self, region: &R, stats: &mut SearchStats) -> BoxVerdict {
        self.classify_inner(region, None, stats)
    }

    /// [`Cascade::classify`] with the *first* tier's verdict supplied by
    /// the caller — the batched-screening entry point. The first tier
    /// books its hit or fallback exactly as if it had run here, but with
    /// zero additional nanoseconds (the batched pass booked its elapsed
    /// time when it ran); the remaining tiers run normally, so counters
    /// stay bit-identical to the scalar [`Cascade::classify`] whenever
    /// `first` equals what tier 0 would have returned.
    pub fn classify_with_first(
        &self,
        region: &R,
        first: BoxVerdict,
        stats: &mut SearchStats,
    ) -> BoxVerdict {
        self.classify_inner(region, Some(first), stats)
    }

    fn classify_inner(
        &self,
        region: &R,
        mut first: Option<BoxVerdict>,
        stats: &mut SearchStats,
    ) -> BoxVerdict {
        for tier in &self.tiers {
            let (verdict, ns) = match first.take() {
                Some(precomputed) => (precomputed, 0),
                None => self.timer.time(|| tier.classify(region)),
            };
            let (hits, fallbacks, elapsed) = match tier.tier() {
                TierKind::Interval => (
                    &mut stats.interval_hits,
                    &mut stats.interval_fallbacks,
                    &mut stats.interval_ns,
                ),
                TierKind::Zonotope => (
                    &mut stats.zonotope_hits,
                    &mut stats.zonotope_fallbacks,
                    &mut stats.zonotope_ns,
                ),
                TierKind::Exact => (
                    &mut stats.exact_decisions,
                    &mut stats.exact_fallbacks,
                    &mut stats.exact_ns,
                ),
            };
            *elapsed = elapsed.saturating_add(ns);
            if verdict == BoxVerdict::Unknown {
                *fallbacks += 1;
            } else {
                *hits += 1;
                return verdict;
            }
        }
        BoxVerdict::Unknown
    }
}

impl<R: ?Sized> std::fmt::Debug for Cascade<'_, R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cascade")
            .field("tiers", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A classifier deciding iff the region value clears a threshold.
    struct Threshold {
        kind: TierKind,
        decides_at: i64,
        verdict: BoxVerdict,
    }

    impl Classifier<i64> for Threshold {
        fn tier(&self) -> TierKind {
            self.kind
        }
        fn classify(&self, region: &i64) -> BoxVerdict {
            if *region >= self.decides_at {
                self.verdict
            } else {
                BoxVerdict::Unknown
            }
        }
    }

    #[test]
    fn cheapest_deciding_tier_wins_and_books_counters() {
        let interval = Threshold {
            kind: TierKind::Interval,
            decides_at: 10,
            verdict: BoxVerdict::AlwaysCorrect,
        };
        let zonotope = Threshold {
            kind: TierKind::Zonotope,
            decides_at: 5,
            verdict: BoxVerdict::AlwaysWrong,
        };
        let exact = Threshold {
            kind: TierKind::Exact,
            decides_at: 0,
            verdict: BoxVerdict::AlwaysCorrect,
        };
        let cascade = Cascade::new(vec![&interval, &zonotope, &exact]);
        assert_eq!(cascade.len(), 3);
        assert!(!cascade.is_empty());

        let mut stats = SearchStats::default();
        // 12 ≥ 10: the interval tier decides alone.
        assert_eq!(cascade.classify(&12, &mut stats), BoxVerdict::AlwaysCorrect);
        assert_eq!((stats.interval_hits, stats.interval_fallbacks), (1, 0));
        assert_eq!(stats.zonotope_hits + stats.zonotope_fallbacks, 0);

        // 7: interval falls back, zonotope decides.
        assert_eq!(cascade.classify(&7, &mut stats), BoxVerdict::AlwaysWrong);
        assert_eq!((stats.interval_hits, stats.interval_fallbacks), (1, 1));
        assert_eq!((stats.zonotope_hits, stats.zonotope_fallbacks), (1, 0));

        // 2: both screens fall back, the exact tier decides.
        assert_eq!(cascade.classify(&2, &mut stats), BoxVerdict::AlwaysCorrect);
        assert_eq!((stats.exact_decisions, stats.exact_fallbacks), (1, 0));
        assert_eq!(stats.interval_fallbacks, 2);
        assert_eq!(stats.zonotope_fallbacks, 1);
    }

    #[test]
    fn timer_books_nanoseconds_without_changing_counters() {
        let slow = Threshold {
            kind: TierKind::Interval,
            decides_at: 0,
            verdict: BoxVerdict::AlwaysCorrect,
        };
        // Untimed: counters book, nanoseconds stay zero.
        let cascade = Cascade::new(vec![&slow]);
        assert_eq!(cascade.timer(), TierTimer::disabled());
        let mut untimed = SearchStats::default();
        assert_eq!(
            cascade.classify(&1, &mut untimed),
            BoxVerdict::AlwaysCorrect
        );
        assert_eq!(untimed.interval_hits, 1);
        assert_eq!(untimed.interval_ns, 0);

        // Timed: identical counters, nonzero interval time.
        let busy = Threshold {
            kind: TierKind::Interval,
            decides_at: 0,
            verdict: BoxVerdict::AlwaysCorrect,
        };
        let timed_cascade = Cascade::new(vec![&busy]).with_timer(TierTimer::enabled());
        assert!(timed_cascade.timer().is_enabled());
        let mut timed = SearchStats::default();
        // A few classify calls so even a coarse clock ticks.
        for _ in 0..1000 {
            let _ = timed_cascade.classify(&1, &mut timed);
        }
        assert_eq!(timed.interval_hits, 1000);
        assert!(timed.interval_ns > 0, "enabled timer must record time");
        assert_eq!(timed.zonotope_ns, 0);
        assert_eq!(timed.exact_ns, 0);
    }

    #[test]
    fn disabled_timer_reports_zero_elapsed() {
        let (value, ns) = TierTimer::disabled().time(|| 7);
        assert_eq!((value, ns), (7, 0));
        let (value, _) = TierTimer::enabled().time(|| "ran");
        assert_eq!(value, "ran");
    }

    #[test]
    fn empty_cascade_is_always_unknown() {
        let cascade: Cascade<'_, i64> = Cascade::empty();
        let mut stats = SearchStats::default();
        assert_eq!(cascade.classify(&100, &mut stats), BoxVerdict::Unknown);
        assert_eq!(stats, SearchStats::default());
        assert!(cascade.is_empty());
        assert_eq!(cascade.len(), 0);
    }

    #[test]
    fn precomputed_first_tier_verdict_books_identically() {
        let interval = Threshold {
            kind: TierKind::Interval,
            decides_at: 10,
            verdict: BoxVerdict::AlwaysCorrect,
        };
        let zonotope = Threshold {
            kind: TierKind::Zonotope,
            decides_at: 5,
            verdict: BoxVerdict::AlwaysWrong,
        };
        let cascade = Cascade::new(vec![&interval, &zonotope]);

        // Supplying the verdict tier 0 would have produced must book the
        // same counters as running it.
        for region in [12i64, 7, 2] {
            let mut live = SearchStats::default();
            let want = cascade.classify(&region, &mut live);
            let mut supplied = SearchStats::default();
            let first = interval.classify(&region);
            let got = cascade.classify_with_first(&region, first, &mut supplied);
            assert_eq!(got, want, "region {region}");
            assert_eq!(supplied, live, "region {region}");
        }
    }

    #[test]
    fn all_tiers_unknown_books_every_fallback() {
        let never = Threshold {
            kind: TierKind::Exact,
            decides_at: i64::MAX,
            verdict: BoxVerdict::AlwaysCorrect,
        };
        let cascade = Cascade::new(vec![&never]);
        let mut stats = SearchStats::default();
        assert_eq!(cascade.classify(&3, &mut stats), BoxVerdict::Unknown);
        assert_eq!((stats.exact_decisions, stats.exact_fallbacks), (0, 1));
    }
}
