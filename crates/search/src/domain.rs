//! The domain contract of the generic branch-and-bound search
//! (DESIGN.md §12).

use crate::stats::SearchStats;

/// How one box was resolved by [`SearchDomain::decide`].
#[derive(Debug)]
pub enum BoxDecision<R, W> {
    /// Proven free of (fresh) witnesses — pruned from the search.
    Pruned,
    /// A single concrete witness (e.g. a misclassifying grid point).
    Witness(W),
    /// The *whole box* is proven uniformly witnessing; carries the
    /// canonically-first witness. The search treats it like
    /// [`BoxDecision::Witness`]; [`crate::collect_witnesses`]
    /// additionally enumerates the rest of the box.
    UniformWitness(W),
    /// Undecided: the two halves to recurse into.
    Split(R, R),
    /// Undecided and not refinable (depth cap, unsplittable box);
    /// siblings keep exploring — a witness elsewhere still decides.
    Abandon,
    /// Undecided and the *whole search* is pinned undecided (e.g. an
    /// over-approximate lift whose uniformly-wrong boxes prove nothing);
    /// exploring further cannot change the outcome, so stop.
    AbandonAll,
}

/// Outcome of a generic search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SearchOutcome<W> {
    /// Every box was pruned: the property holds over the whole root —
    /// a proof.
    Proven,
    /// The canonically-first witness found — a proof by witness.
    Witness(W),
    /// Some box was abandoned or a budget ran out before a witness
    /// appeared: sound in neither direction (complete domains never
    /// return this).
    Undecided,
}

impl<W> SearchOutcome<W> {
    /// `true` for [`SearchOutcome::Proven`].
    #[must_use]
    pub fn is_proven(&self) -> bool {
        matches!(self, SearchOutcome::Proven)
    }

    /// The witness, if any.
    #[must_use]
    pub fn witness(&self) -> Option<&W> {
        match self {
            SearchOutcome::Witness(w) => Some(w),
            _ => None,
        }
    }
}

/// One abstract domain the generic branch-and-bound can search.
///
/// # Contract
///
/// The search decides the claim *"no point of the root region's
/// concretization is a witness"*. `decide` must uphold, for every box
/// it is handed:
///
/// * **Soundness of pruning** — [`BoxDecision::Pruned`] only for boxes
///   provably free of fresh witnesses (screening-tier proofs discharge
///   this via the [`crate::Classifier`] obligations).
/// * **Genuine witnesses** — a returned witness is a *concrete, in-model*
///   point, re-checkable by exact evaluation.
/// * **Canonical first witness** — within one box, the witness returned
///   is the canonically (lexicographically) first one; combined with
///   left-before-right splits this pins the global witness across
///   serial, screened and parallel runs.
/// * **Conservative splits** — [`BoxDecision::Split`] halves must cover
///   the parent's concretization exactly, left half canonically first.
///   Termination is the domain's duty: splits must strictly shrink
///   boxes toward unsplittable ones (grid domains terminate at points;
///   continuous domains must cap depth via [`BoxDecision::Abandon`]).
/// * **Depth honesty** — `depth` is the number of splits from the root;
///   domains with depth caps compare against it *before* splitting so
///   abandoned boxes never book a split.
/// * **Purity** — the decision (and every counter it books) is a pure
///   function of `(region, depth)`; `scratch` is reusable buffer space
///   only and must never influence the result. The budgeted parallel
///   search relies on this to replay speculatively-computed decisions
///   bit for bit ([`crate::search_budgeted`]).
pub trait SearchDomain: Sync {
    /// The box type explored (clone-cheap: splits clone the parent).
    type Region: Clone + Send;
    /// The witness type produced (e.g. an exact counterexample record).
    type Witness: Send;
    /// Screening work precomputed for a whole *batch* of frontier boxes
    /// at once ([`SearchDomain::prepare_batch`]); `()` for domains that
    /// never batch.
    type Prepared;
    /// Reusable per-worker workspace threaded through every `decide`
    /// call so hot propagation paths stop allocating per box; `()` for
    /// domains without one. Each search loop (and each parallel worker)
    /// owns exactly one, created via `Default`.
    type Scratch: Default;

    /// How many frontier boxes [`SearchDomain::prepare_batch`] wants per
    /// call. `1` (the default) disables batching entirely — the search
    /// loops then never gather a batch and never call `prepare_batch`.
    fn batch_width(&self) -> usize {
        1
    }

    /// Screens `regions` (up to [`SearchDomain::batch_width`] of them)
    /// in one batched pass, returning one prepared value per region in
    /// order. Returning an empty vector declines the batch (every box
    /// then takes the scalar path).
    ///
    /// Per-box *counters* must not be booked here — they are booked by
    /// [`SearchDomain::decide_prepared`] when the box is actually
    /// visited, which keeps stats bit-identical to the scalar path even
    /// when the search stops before consuming the whole batch. Only the
    /// never-serialized `*_ns` timing fields may accumulate here.
    fn prepare_batch(
        &self,
        _regions: &[&Self::Region],
        _scratch: &mut Self::Scratch,
        _stats: &mut SearchStats,
    ) -> Vec<Self::Prepared> {
        Vec::new()
    }

    /// Decides one box at `depth` splits from the root, booking any
    /// counters it consumes (screen passes, exact evaluations, splits)
    /// into `stats`. The search loop books `boxes_visited` itself.
    fn decide(
        &self,
        region: &Self::Region,
        depth: u32,
        scratch: &mut Self::Scratch,
        stats: &mut SearchStats,
    ) -> BoxDecision<Self::Region, Self::Witness>;

    /// [`SearchDomain::decide`] for a box whose batched screening ran at
    /// [`SearchDomain::prepare_batch`] time. The verdict and every
    /// booked counter must be bit-identical to the scalar `decide`; the
    /// default ignores `prepared` and delegates.
    fn decide_prepared(
        &self,
        region: &Self::Region,
        _prepared: Option<Self::Prepared>,
        depth: u32,
        scratch: &mut Self::Scratch,
        stats: &mut SearchStats,
    ) -> BoxDecision<Self::Region, Self::Witness> {
        self.decide(region, depth, scratch, stats)
    }
}
