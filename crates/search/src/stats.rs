//! The unified search-statistics block shared by every branch-and-bound
//! instantiation (DESIGN.md §12).
//!
//! Before the `fannet-search` extraction the input-noise checker
//! (`BabStats`) and the fault checker (`FaultStats`) each carried their
//! own counter struct with overlapping fields. This is the union: one
//! domain never touches every counter (the grid-complete input-noise
//! search has no budget, the budgeted fault search tracks exact-tier
//! decisions instead of aggregate screen hits), but the meaning of each
//! field is identical wherever it is incremented. The JSONL protocol
//! serializes the block under the legacy per-domain keys *and* the
//! unified form (see `fannet-engine`'s protocol module).

use serde::{Deserialize, Serialize};

/// Counters of one branch-and-bound run (or the merge of several —
/// tolerance bisections merge their probes' counters).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SearchStats {
    /// Boxes taken off the work stack.
    pub boxes_visited: u64,
    /// Splits performed.
    pub splits: u64,
    /// Boxes proven uniformly correct and pruned.
    pub pruned_correct: u64,
    /// Boxes proven uniformly wrong (a witness proof).
    pub proved_wrong: u64,
    /// Singleton grid points decided by exact evaluation (input-noise
    /// domain: the ground-truth fallback below every screen).
    pub exact_evals: u64,
    /// Boxes some screening tier decided on its own, making the exact
    /// fallback unnecessary (aggregate over every active screen).
    pub screen_hits: u64,
    /// Boxes where every active screen returned `Unknown` and exact work
    /// still had to run.
    pub screen_fallbacks: u64,
    /// Boxes the float-interval tier classified.
    pub interval_hits: u64,
    /// Boxes the float-interval tier handed to the next tier.
    pub interval_fallbacks: u64,
    /// Boxes the zonotope tier classified.
    pub zonotope_hits: u64,
    /// Boxes the zonotope tier handed to the next tier.
    pub zonotope_fallbacks: u64,
    /// Boxes the exact interval tier classified (budgeted domains, where
    /// the exact tier is a cascade member rather than a grid fallback).
    pub exact_decisions: u64,
    /// Boxes no cascade tier could classify (split or abandoned).
    pub exact_fallbacks: u64,
    /// Concrete candidate evaluations (fault domains: faulted networks
    /// evaluated for probes and witnesses).
    pub concrete_evals: u64,
    /// `true` when a box budget ran out before the search finished.
    pub budget_exhausted: bool,
}

impl SearchStats {
    /// Accumulates another run's counters into `self`.
    pub fn merge(&mut self, other: &SearchStats) {
        self.boxes_visited += other.boxes_visited;
        self.splits += other.splits;
        self.pruned_correct += other.pruned_correct;
        self.proved_wrong += other.proved_wrong;
        self.exact_evals += other.exact_evals;
        self.screen_hits += other.screen_hits;
        self.screen_fallbacks += other.screen_fallbacks;
        self.interval_hits += other.interval_hits;
        self.interval_fallbacks += other.interval_fallbacks;
        self.zonotope_hits += other.zonotope_hits;
        self.zonotope_fallbacks += other.zonotope_fallbacks;
        self.exact_decisions += other.exact_decisions;
        self.exact_fallbacks += other.exact_fallbacks;
        self.concrete_evals += other.concrete_evals;
        self.budget_exhausted |= other.budget_exhausted;
    }

    /// Fraction of screened boxes some screening tier decided on its
    /// own; `None` when screening never ran.
    #[must_use]
    pub fn screen_hit_rate(&self) -> Option<f64> {
        Self::rate(self.screen_hits, self.screen_fallbacks)
    }

    /// Fraction of interval-tier passes that classified their box;
    /// `None` when the interval tier never ran.
    #[must_use]
    pub fn interval_hit_rate(&self) -> Option<f64> {
        Self::rate(self.interval_hits, self.interval_fallbacks)
    }

    /// Fraction of zonotope-tier passes that classified their box (in a
    /// cascade these are exactly the boxes the interval tier gave up
    /// on); `None` when the zonotope tier never ran.
    #[must_use]
    pub fn zonotope_hit_rate(&self) -> Option<f64> {
        Self::rate(self.zonotope_hits, self.zonotope_fallbacks)
    }

    fn rate(hits: u64, fallbacks: u64) -> Option<f64> {
        let total = hits + fallbacks;
        if total == 0 {
            None
        } else {
            Some(hits as f64 / total as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled() -> SearchStats {
        SearchStats {
            boxes_visited: 1,
            splits: 2,
            pruned_correct: 3,
            proved_wrong: 4,
            exact_evals: 5,
            screen_hits: 6,
            screen_fallbacks: 7,
            interval_hits: 8,
            interval_fallbacks: 9,
            zonotope_hits: 10,
            zonotope_fallbacks: 11,
            exact_decisions: 12,
            exact_fallbacks: 13,
            concrete_evals: 14,
            budget_exhausted: false,
        }
    }

    #[test]
    fn merge_accumulates_every_counter() {
        let mut a = filled();
        let b = SearchStats {
            budget_exhausted: true,
            ..filled()
        };
        a.merge(&b);
        assert_eq!(
            a,
            SearchStats {
                boxes_visited: 2,
                splits: 4,
                pruned_correct: 6,
                proved_wrong: 8,
                exact_evals: 10,
                screen_hits: 12,
                screen_fallbacks: 14,
                interval_hits: 16,
                interval_fallbacks: 18,
                zonotope_hits: 20,
                zonotope_fallbacks: 22,
                exact_decisions: 24,
                exact_fallbacks: 26,
                concrete_evals: 28,
                budget_exhausted: true,
            }
        );
        assert_eq!(a.interval_hit_rate(), Some(16.0 / 34.0));
        assert_eq!(a.zonotope_hit_rate(), Some(20.0 / 42.0));
        assert_eq!(a.screen_hit_rate(), Some(12.0 / 26.0));
    }

    #[test]
    fn empty_rates_are_none() {
        let s = SearchStats::default();
        assert_eq!(s.screen_hit_rate(), None);
        assert_eq!(s.interval_hit_rate(), None);
        assert_eq!(s.zonotope_hit_rate(), None);
        assert!(!s.budget_exhausted);
    }
}
