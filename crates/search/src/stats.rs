//! The unified search-statistics block shared by every branch-and-bound
//! instantiation (DESIGN.md §12).
//!
//! Before the `fannet-search` extraction the input-noise checker
//! (`BabStats`) and the fault checker (`FaultStats`) each carried their
//! own counter struct with overlapping fields. This is the union: one
//! domain never touches every counter (the grid-complete input-noise
//! search has no budget, the budgeted fault search tracks exact-tier
//! decisions instead of aggregate screen hits), but the meaning of each
//! field is identical wherever it is incremented. The JSONL protocol
//! serializes the block under the legacy per-domain keys *and* the
//! unified form (see `fannet-engine`'s protocol module).
//!
//! ## Timing fields stay off the wire
//!
//! The per-tier nanosecond totals and the split-depth high-water mark
//! (DESIGN.md §14) are **not serialized**: the wire shape of every
//! cached, replayed or golden-tested stats block must stay bit-identical
//! whether a query was timed or not, and wall-clock numbers can never
//! be. The `Serialize`/`Deserialize` impls below are hand-written to
//! emit exactly the fifteen legacy counters; deserialization accepts
//! the same fifteen and zeroes the rest. Traced responses surface the
//! timing fields through the separate `trace` object instead.

use serde::de::Error as _;
use serde::ser::SerializeStruct as _;
use serde::{Deserialize, Deserializer, Serialize, Serializer, Value};

/// Counters of one branch-and-bound run (or the merge of several —
/// tolerance bisections merge their probes' counters).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Boxes taken off the work stack.
    pub boxes_visited: u64,
    /// Splits performed.
    pub splits: u64,
    /// Boxes proven uniformly correct and pruned.
    pub pruned_correct: u64,
    /// Boxes proven uniformly wrong (a witness proof).
    pub proved_wrong: u64,
    /// Singleton grid points decided by exact evaluation (input-noise
    /// domain: the ground-truth fallback below every screen).
    pub exact_evals: u64,
    /// Boxes some screening tier decided on its own, making the exact
    /// fallback unnecessary (aggregate over every active screen).
    pub screen_hits: u64,
    /// Boxes where every active screen returned `Unknown` and exact work
    /// still had to run.
    pub screen_fallbacks: u64,
    /// Boxes the float-interval tier classified.
    pub interval_hits: u64,
    /// Boxes the float-interval tier handed to the next tier.
    pub interval_fallbacks: u64,
    /// Boxes the zonotope tier classified.
    pub zonotope_hits: u64,
    /// Boxes the zonotope tier handed to the next tier.
    pub zonotope_fallbacks: u64,
    /// Boxes the exact interval tier classified (budgeted domains, where
    /// the exact tier is a cascade member rather than a grid fallback).
    pub exact_decisions: u64,
    /// Boxes no cascade tier could classify (split or abandoned).
    pub exact_fallbacks: u64,
    /// Concrete candidate evaluations (fault domains: faulted networks
    /// evaluated for probes and witnesses).
    pub concrete_evals: u64,
    /// `true` when a box budget ran out before the search finished.
    pub budget_exhausted: bool,
    /// Nanoseconds spent in the float-interval tier (zero unless the
    /// query ran with an enabled [`crate::TierTimer`]; never serialized).
    pub interval_ns: u64,
    /// Nanoseconds spent in the zonotope tier (timed queries only;
    /// never serialized).
    pub zonotope_ns: u64,
    /// Nanoseconds spent in exact rational work — the exact cascade
    /// tier plus the domain's exact fallback (timed queries only; never
    /// serialized).
    pub exact_ns: u64,
    /// Deepest split depth any visited box reached (recorded
    /// unconditionally — it costs no clock read; never serialized).
    pub depth_high_water: u64,
}

/// The fifteen legacy wire fields, in declaration order. Timing fields
/// are deliberately absent (module docs).
const WIRE_FIELDS: [&str; 15] = [
    "boxes_visited",
    "splits",
    "pruned_correct",
    "proved_wrong",
    "exact_evals",
    "screen_hits",
    "screen_fallbacks",
    "interval_hits",
    "interval_fallbacks",
    "zonotope_hits",
    "zonotope_fallbacks",
    "exact_decisions",
    "exact_fallbacks",
    "concrete_evals",
    "budget_exhausted",
];

impl Serialize for SearchStats {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut st = serializer.serialize_struct("SearchStats", WIRE_FIELDS.len())?;
        st.serialize_field("boxes_visited", &self.boxes_visited)?;
        st.serialize_field("splits", &self.splits)?;
        st.serialize_field("pruned_correct", &self.pruned_correct)?;
        st.serialize_field("proved_wrong", &self.proved_wrong)?;
        st.serialize_field("exact_evals", &self.exact_evals)?;
        st.serialize_field("screen_hits", &self.screen_hits)?;
        st.serialize_field("screen_fallbacks", &self.screen_fallbacks)?;
        st.serialize_field("interval_hits", &self.interval_hits)?;
        st.serialize_field("interval_fallbacks", &self.interval_fallbacks)?;
        st.serialize_field("zonotope_hits", &self.zonotope_hits)?;
        st.serialize_field("zonotope_fallbacks", &self.zonotope_fallbacks)?;
        st.serialize_field("exact_decisions", &self.exact_decisions)?;
        st.serialize_field("exact_fallbacks", &self.exact_fallbacks)?;
        st.serialize_field("concrete_evals", &self.concrete_evals)?;
        st.serialize_field("budget_exhausted", &self.budget_exhausted)?;
        st.end()
    }
}

impl<'de> Deserialize<'de> for SearchStats {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let value = deserializer.take_value()?;
        let Value::Map(mut m) = value else {
            return Err(D::Error::custom("expected a map for struct `SearchStats`"));
        };
        let mut take = |field: &'static str| -> Result<Value, D::Error> {
            serde::de::take_entry(&mut m, field).ok_or_else(|| {
                D::Error::custom(format!("missing field `{field}` in `SearchStats`"))
            })
        };
        let number = |value: Value| serde::de::from_value::<u64>(value).map_err(D::Error::custom);
        Ok(SearchStats {
            boxes_visited: number(take("boxes_visited")?)?,
            splits: number(take("splits")?)?,
            pruned_correct: number(take("pruned_correct")?)?,
            proved_wrong: number(take("proved_wrong")?)?,
            exact_evals: number(take("exact_evals")?)?,
            screen_hits: number(take("screen_hits")?)?,
            screen_fallbacks: number(take("screen_fallbacks")?)?,
            interval_hits: number(take("interval_hits")?)?,
            interval_fallbacks: number(take("interval_fallbacks")?)?,
            zonotope_hits: number(take("zonotope_hits")?)?,
            zonotope_fallbacks: number(take("zonotope_fallbacks")?)?,
            exact_decisions: number(take("exact_decisions")?)?,
            exact_fallbacks: number(take("exact_fallbacks")?)?,
            concrete_evals: number(take("concrete_evals")?)?,
            budget_exhausted: serde::de::from_value(take("budget_exhausted")?)
                .map_err(D::Error::custom)?,
            interval_ns: 0,
            zonotope_ns: 0,
            exact_ns: 0,
            depth_high_water: 0,
        })
    }
}

impl SearchStats {
    /// Accumulates another run's counters into `self`. Counters and
    /// nanosecond totals add; the depth high-water takes the maximum
    /// (parallel workers merge disjoint subtree explorations).
    pub fn merge(&mut self, other: &SearchStats) {
        self.boxes_visited += other.boxes_visited;
        self.splits += other.splits;
        self.pruned_correct += other.pruned_correct;
        self.proved_wrong += other.proved_wrong;
        self.exact_evals += other.exact_evals;
        self.screen_hits += other.screen_hits;
        self.screen_fallbacks += other.screen_fallbacks;
        self.interval_hits += other.interval_hits;
        self.interval_fallbacks += other.interval_fallbacks;
        self.zonotope_hits += other.zonotope_hits;
        self.zonotope_fallbacks += other.zonotope_fallbacks;
        self.exact_decisions += other.exact_decisions;
        self.exact_fallbacks += other.exact_fallbacks;
        self.concrete_evals += other.concrete_evals;
        self.budget_exhausted |= other.budget_exhausted;
        self.interval_ns = self.interval_ns.saturating_add(other.interval_ns);
        self.zonotope_ns = self.zonotope_ns.saturating_add(other.zonotope_ns);
        self.exact_ns = self.exact_ns.saturating_add(other.exact_ns);
        self.depth_high_water = self.depth_high_water.max(other.depth_high_water);
    }

    /// Records a visited box's split depth into the high-water mark.
    pub fn note_depth(&mut self, depth: u32) {
        self.depth_high_water = self.depth_high_water.max(u64::from(depth));
    }

    /// Fraction of screened boxes some screening tier decided on its
    /// own; `None` when screening never ran.
    #[must_use]
    pub fn screen_hit_rate(&self) -> Option<f64> {
        Self::rate(self.screen_hits, self.screen_fallbacks)
    }

    /// Fraction of interval-tier passes that classified their box;
    /// `None` when the interval tier never ran.
    #[must_use]
    pub fn interval_hit_rate(&self) -> Option<f64> {
        Self::rate(self.interval_hits, self.interval_fallbacks)
    }

    /// Fraction of zonotope-tier passes that classified their box (in a
    /// cascade these are exactly the boxes the interval tier gave up
    /// on); `None` when the zonotope tier never ran.
    #[must_use]
    pub fn zonotope_hit_rate(&self) -> Option<f64> {
        Self::rate(self.zonotope_hits, self.zonotope_fallbacks)
    }

    fn rate(hits: u64, fallbacks: u64) -> Option<f64> {
        let total = hits + fallbacks;
        if total == 0 {
            None
        } else {
            Some(hits as f64 / total as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled() -> SearchStats {
        SearchStats {
            boxes_visited: 1,
            splits: 2,
            pruned_correct: 3,
            proved_wrong: 4,
            exact_evals: 5,
            screen_hits: 6,
            screen_fallbacks: 7,
            interval_hits: 8,
            interval_fallbacks: 9,
            zonotope_hits: 10,
            zonotope_fallbacks: 11,
            exact_decisions: 12,
            exact_fallbacks: 13,
            concrete_evals: 14,
            budget_exhausted: false,
            interval_ns: 15,
            zonotope_ns: 16,
            exact_ns: 17,
            depth_high_water: 18,
        }
    }

    #[test]
    fn merge_accumulates_every_counter() {
        let mut a = filled();
        let b = SearchStats {
            budget_exhausted: true,
            depth_high_water: 7,
            ..filled()
        };
        a.merge(&b);
        assert_eq!(
            a,
            SearchStats {
                boxes_visited: 2,
                splits: 4,
                pruned_correct: 6,
                proved_wrong: 8,
                exact_evals: 10,
                screen_hits: 12,
                screen_fallbacks: 14,
                interval_hits: 16,
                interval_fallbacks: 18,
                zonotope_hits: 20,
                zonotope_fallbacks: 22,
                exact_decisions: 24,
                exact_fallbacks: 26,
                concrete_evals: 28,
                budget_exhausted: true,
                interval_ns: 30,
                zonotope_ns: 32,
                exact_ns: 34,
                // Max, not sum: disjoint subtrees share one deepest path.
                depth_high_water: 18,
            }
        );
        assert_eq!(a.interval_hit_rate(), Some(16.0 / 34.0));
        assert_eq!(a.zonotope_hit_rate(), Some(20.0 / 42.0));
        assert_eq!(a.screen_hit_rate(), Some(12.0 / 26.0));
    }

    #[test]
    fn empty_rates_are_none() {
        let s = SearchStats::default();
        assert_eq!(s.screen_hit_rate(), None);
        assert_eq!(s.interval_hit_rate(), None);
        assert_eq!(s.zonotope_hit_rate(), None);
        assert!(!s.budget_exhausted);
    }

    #[test]
    fn note_depth_keeps_the_maximum() {
        let mut s = SearchStats::default();
        s.note_depth(3);
        s.note_depth(1);
        assert_eq!(s.depth_high_water, 3);
    }

    #[test]
    fn wire_shape_excludes_timing_fields() {
        let stats = filled();
        let value = serde::ser::to_value(&stats).expect("stats serialize");
        let Value::Map(entries) = &value else {
            panic!("stats must serialize as a map");
        };
        let keys: Vec<&str> = entries.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, WIRE_FIELDS.to_vec(), "exactly the legacy fields");

        // Round trip: counters survive, timing fields reset to zero —
        // the bit-identity contract between timed and untimed runs.
        let back: SearchStats = serde::de::from_value(value).expect("stats deserialize");
        assert_eq!(
            back,
            SearchStats {
                interval_ns: 0,
                zonotope_ns: 0,
                exact_ns: 0,
                depth_high_water: 0,
                ..stats
            }
        );
    }

    #[test]
    fn deserialize_reports_missing_fields_like_the_derive() {
        let mut value = serde::ser::to_value(&filled()).expect("stats serialize");
        let Value::Map(entries) = &mut value else {
            panic!("stats must serialize as a map");
        };
        entries.retain(|(k, _)| k != "splits");
        let err = serde::de::from_value::<SearchStats>(value).unwrap_err();
        assert!(
            err.to_string()
                .contains("missing field `splits` in `SearchStats`"),
            "{err}"
        );
    }
}
