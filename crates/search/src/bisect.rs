//! The verdict-driven tolerance bisection, shared by the weight-fault
//! and joint checkers (and replayable through resident caches).

use fannet_numeric::Rational;
use serde::{Deserialize, Serialize};

/// The grid of a tolerance bisection: ε ranges over
/// `{0, 1/denom, …, max_numer/denom}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ToleranceSearch {
    /// Grid denominator.
    pub denom: i128,
    /// Largest numerator probed.
    pub max_numer: i128,
}

impl ToleranceSearch {
    /// A coarser/cheaper grid (`denom` steps up to `max_numer/denom`).
    ///
    /// # Panics
    ///
    /// Panics if `denom <= 0` or `max_numer < 0`.
    #[must_use]
    pub fn new(denom: i128, max_numer: i128) -> Self {
        assert!(denom > 0, "tolerance grid denominator must be positive");
        assert!(max_numer >= 0, "tolerance grid must be non-empty");
        ToleranceSearch { denom, max_numer }
    }

    /// The largest ε the grid can report.
    #[must_use]
    pub fn max_eps(&self) -> Rational {
        Rational::new(self.max_numer, self.denom)
    }
}

impl Default for ToleranceSearch {
    /// Per-mille resolution up to ε = 1/5.
    fn default() -> Self {
        ToleranceSearch {
            denom: 1000,
            max_numer: 200,
        }
    }
}

/// Result of a tolerance bisection.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ToleranceResult {
    /// The largest probed ε proven robust; `None` when even the ε = 0
    /// probe fails (the unperturbed system already misclassifies).
    pub robust_eps: Option<Rational>,
    /// The smallest probed ε **not** proven robust (vulnerable or
    /// undecided); `None` when robust through the whole grid.
    pub first_failure: Option<Rational>,
    /// Probes issued.
    pub probes: u32,
}

/// The bisection itself, parameterized over the probe so a resident
/// engine can replay it through its verdict cache **bit-identically**:
/// the probe sequence is a pure function of the verdicts, which cached
/// answers reproduce exactly.
///
/// `probe(ε)` must return `true` iff ε is *proven* robust — undecided
/// probes count as failures, so every reported value is backed by a
/// proof and the result is a sound lower bound on the true tolerance.
///
/// Probe order: ε = 0, ε = max, then classic bisection on the invariant
/// *lo robust / hi not robust*.
///
/// # Errors
///
/// Propagates the first probe error.
///
/// # Panics
///
/// Panics if the search grid is invalid (`denom <= 0`, `max_numer < 0`).
pub fn tolerance_search<E>(
    search: &ToleranceSearch,
    mut probe: impl FnMut(Rational) -> Result<bool, E>,
) -> Result<ToleranceResult, E> {
    assert!(
        search.denom > 0,
        "tolerance grid denominator must be positive"
    );
    assert!(search.max_numer >= 0, "tolerance grid must be non-empty");
    let mut probes = 0u32;
    let mut is_robust = |k: i128, probes: &mut u32| -> Result<bool, E> {
        *probes += 1;
        probe(Rational::new(k, search.denom))
    };

    if !is_robust(0, &mut probes)? {
        return Ok(ToleranceResult {
            robust_eps: None,
            first_failure: Some(Rational::ZERO),
            probes,
        });
    }
    if search.max_numer == 0 || is_robust(search.max_numer, &mut probes)? {
        return Ok(ToleranceResult {
            robust_eps: Some(Rational::new(search.max_numer, search.denom)),
            first_failure: None,
            probes,
        });
    }
    // Invariant: lo proven robust, hi not proven robust.
    let mut lo = 0i128;
    let mut hi = search.max_numer;
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if is_robust(mid, &mut probes)? {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok(ToleranceResult {
        robust_eps: Some(Rational::new(lo, search.denom)),
        first_failure: Some(Rational::new(hi, search.denom)),
        probes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A threshold oracle: ε is robust iff ε ≤ threshold.
    fn threshold_probe(numer: i128, denom: i128) -> impl FnMut(Rational) -> Result<bool, String> {
        move |eps| Ok(eps <= Rational::new(numer, denom))
    }

    #[test]
    fn bisection_lands_on_the_largest_grid_point_below_the_threshold() {
        for (numer, denom) in [(99, 1000), (1, 3), (17, 100)] {
            let search = ToleranceSearch::new(1000, 400);
            let result = tolerance_search(&search, threshold_probe(numer, denom)).unwrap();
            let robust = result.robust_eps.expect("zero is robust");
            assert!(robust <= Rational::new(numer, denom));
            let next = robust + Rational::new(1, 1000);
            assert!(next > Rational::new(numer, denom));
            assert_eq!(result.first_failure, Some(next));
            assert!(result.probes >= 2);
        }
    }

    #[test]
    fn degenerate_grids_and_immediate_failures() {
        // ε = 0 already fails.
        let result =
            tolerance_search(&ToleranceSearch::default(), |_| Ok::<_, String>(false)).unwrap();
        assert_eq!(result.robust_eps, None);
        assert_eq!(result.first_failure, Some(Rational::ZERO));
        assert_eq!(result.probes, 1);
        // Single-point grid.
        let result =
            tolerance_search(&ToleranceSearch::new(1000, 0), |_| Ok::<_, String>(true)).unwrap();
        assert_eq!(result.robust_eps, Some(Rational::ZERO));
        assert_eq!(result.first_failure, None);
        // Robust through the whole grid: two probes suffice.
        let result =
            tolerance_search(&ToleranceSearch::new(100, 20), |_| Ok::<_, String>(true)).unwrap();
        assert_eq!(result.robust_eps, Some(Rational::new(20, 100)));
        assert_eq!(result.first_failure, None);
        assert_eq!(result.probes, 2);
    }

    #[test]
    fn probe_errors_propagate() {
        let result = tolerance_search(&ToleranceSearch::default(), |_| {
            Err::<bool, _>("boom".to_string())
        });
        assert_eq!(result.unwrap_err(), "boom");
    }

    #[test]
    fn grid_constructors_validate() {
        assert_eq!(ToleranceSearch::default().denom, 1000);
        assert_eq!(
            ToleranceSearch::new(100, 25).max_eps(),
            Rational::new(25, 100)
        );
    }

    #[test]
    #[should_panic(expected = "denominator must be positive")]
    fn zero_denominator_rejected() {
        let _ = ToleranceSearch::new(0, 10);
    }
}
