//! Training-bias analysis (paper §V-C.3).
//!
//! The paper observes that with ≈70 % of training samples in class L1,
//! *every* extracted misclassification flows L0 → L1: noise pushes inputs
//! toward the over-represented class, never away from it. This module
//! quantifies that flow from an [`AdversarialReport`] and checks it against
//! the training-set composition.

use fannet_data::Dataset;
use serde::{Deserialize, Serialize};

use crate::adversarial::AdversarialReport;
use crate::tolerance::ToleranceReport;

/// Misclassification flow between classes, plus the training composition
/// that explains it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BiasReport {
    /// `flows[a][b]` counts extracted counterexamples with true label `a`
    /// misclassified as `b`.
    pub flows: Vec<Vec<usize>>,
    /// Per-class fractions of the *training* dataset.
    pub train_fractions: Vec<f64>,
    /// Per-class input fragility `(flippable, analysed)`: how many of the
    /// correctly classified inputs of each class have a counterexample
    /// within the extraction range — the paper's "inputs with Sx = L0 were
    /// observed as more likely to be misclassified".
    pub per_class_fragility: Vec<(usize, usize)>,
}

impl BiasReport {
    /// Total number of counterexamples aggregated.
    #[must_use]
    pub fn total(&self) -> usize {
        self.flows.iter().flatten().sum()
    }

    /// Counterexamples flowing from `a` to `b`.
    ///
    /// # Panics
    ///
    /// Panics if a label is out of range.
    #[must_use]
    pub fn flow(&self, a: usize, b: usize) -> usize {
        self.flows[a][b]
    }

    /// The class most misclassifications flow *into*, or `None` when no
    /// counterexamples were observed.
    #[must_use]
    pub fn dominant_target(&self) -> Option<usize> {
        let classes = self.flows.len();
        (0..classes)
            .map(|b| (b, (0..classes).map(|a| self.flows[a][b]).sum::<usize>()))
            .max_by_key(|&(_, n)| n)
            .filter(|&(_, n)| n > 0)
            .map(|(b, _)| b)
    }

    /// The majority class of the training set.
    #[must_use]
    pub fn majority_class(&self) -> usize {
        self.train_fractions
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("fractions are finite"))
            .map(|(i, _)| i)
            .expect("≥1 class")
    }

    /// The paper's training-bias finding: misclassifications flow
    /// predominantly *into the majority training class*. `None` when no
    /// counterexamples exist to judge from.
    #[must_use]
    pub fn bias_toward_majority(&self) -> Option<bool> {
        self.dominant_target().map(|t| t == self.majority_class())
    }

    /// Fraction of class-`c` inputs that are flippable within the
    /// extraction range; `0.0` when no inputs of that class were analysed.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range.
    #[must_use]
    pub fn fragility_rate(&self, c: usize) -> f64 {
        let (flippable, total) = self.per_class_fragility[c];
        if total == 0 {
            0.0
        } else {
            flippable as f64 / total as f64
        }
    }

    /// The class whose inputs flip most readily, or `None` if no class has
    /// analysed inputs.
    #[must_use]
    pub fn most_fragile_class(&self) -> Option<usize> {
        (0..self.per_class_fragility.len())
            .filter(|&c| self.per_class_fragility[c].1 > 0)
            .max_by(|&a, &b| {
                self.fragility_rate(a)
                    .partial_cmp(&self.fragility_rate(b))
                    .expect("rates are finite")
            })
    }

    /// Fraction of all flows that end in the majority class (1.0 in the
    /// paper's experiment: *all* misclassifications were L0 → L1).
    #[must_use]
    pub fn majority_flow_fraction(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let m = self.majority_class();
        let into_majority: usize = (0..self.flows.len()).map(|a| self.flows[a][m]).sum();
        into_majority as f64 / total as f64
    }
}

/// Aggregates misclassification flows from extracted counterexamples, the
/// per-class input fragility (from the tolerance radii, at the extraction
/// range), and the training-set composition.
///
/// # Panics
///
/// Panics if a counterexample's labels exceed `train.classes()`.
#[must_use]
pub fn analyze(
    report: &AdversarialReport,
    tolerance: &ToleranceReport,
    train: &Dataset,
) -> BiasReport {
    let classes = train.classes();
    let mut flows = vec![vec![0usize; classes]; classes];
    for (_, ce) in report.iter_all() {
        assert!(
            ce.expected < classes && ce.predicted < classes,
            "counterexample labels must fit the dataset's class count"
        );
        flows[ce.expected][ce.predicted] += 1;
    }
    let mut per_class_fragility = vec![(0usize, 0usize); classes];
    for r in &tolerance.per_input {
        let entry = &mut per_class_fragility[r.label];
        entry.1 += 1;
        if r.radius.is_some_and(|radius| radius <= report.delta) {
            entry.0 += 1;
        }
    }
    let train_fractions = (0..classes).map(|c| train.label_fraction(c)).collect();
    BiasReport {
        flows,
        train_fractions,
        per_class_fragility,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversarial::InputAdversaries;
    use fannet_numeric::Rational;
    use fannet_verify::exact::Counterexample;
    use fannet_verify::noise::NoiseVector;

    fn ce(expected: usize, predicted: usize) -> Counterexample {
        Counterexample {
            noise: NoiseVector::new(vec![1, -1]),
            noisy_input: vec![Rational::ONE, Rational::ONE],
            outputs: vec![Rational::ZERO, Rational::ONE],
            predicted,
            expected,
        }
    }

    fn report(flows: &[(usize, usize, usize)]) -> AdversarialReport {
        // flows: (expected, predicted, count)
        let mut per_input = Vec::new();
        for (i, &(a, b, n)) in flows.iter().enumerate() {
            per_input.push(InputAdversaries {
                index: i,
                label: a,
                counterexamples: (0..n).map(|_| ce(a, b)).collect(),
                exhausted: true,
            });
        }
        AdversarialReport {
            delta: 10,
            per_input,
        }
    }

    fn tol(rows: &[(usize, usize, Option<i64>)]) -> ToleranceReport {
        // rows: (index, label, radius)
        ToleranceReport {
            max_delta: 20,
            per_input: rows
                .iter()
                .map(|&(index, label, radius)| crate::tolerance::InputRadius {
                    index,
                    label,
                    radius,
                })
                .collect(),
        }
    }

    fn biased_train() -> Dataset {
        // 3 of 4 samples in class 1 (75 % majority).
        Dataset::new(
            vec![vec![0.0], vec![1.0], vec![2.0], vec![3.0]],
            vec![0, 1, 1, 1],
            2,
        )
        .unwrap()
    }

    #[test]
    fn flows_counted_per_direction() {
        let b = analyze(&report(&[(0, 1, 5), (1, 0, 2)]), &tol(&[]), &biased_train());
        assert_eq!(b.flow(0, 1), 5);
        assert_eq!(b.flow(1, 0), 2);
        assert_eq!(b.total(), 7);
    }

    #[test]
    fn paper_shape_all_flows_into_majority() {
        let b = analyze(
            &report(&[(0, 1, 9)]),
            &tol(&[(0, 0, Some(3)), (1, 1, None)]),
            &biased_train(),
        );
        assert_eq!(b.majority_class(), 1);
        assert_eq!(b.dominant_target(), Some(1));
        assert_eq!(b.bias_toward_majority(), Some(true));
        assert_eq!(b.majority_flow_fraction(), 1.0);
        assert!((b.train_fractions[1] - 0.75).abs() < 1e-12);
        // Fragility: the L0 input (radius 3 ≤ delta 10) flips, L1 does not.
        assert_eq!(b.per_class_fragility, vec![(1, 1), (0, 1)]);
        assert_eq!(b.fragility_rate(0), 1.0);
        assert_eq!(b.fragility_rate(1), 0.0);
        assert_eq!(b.most_fragile_class(), Some(0));
    }

    #[test]
    fn counter_shape_detected() {
        // Flows into the minority class: bias NOT toward majority.
        let b = analyze(&report(&[(1, 0, 4)]), &tol(&[]), &biased_train());
        assert_eq!(b.dominant_target(), Some(0));
        assert_eq!(b.bias_toward_majority(), Some(false));
        assert_eq!(b.majority_flow_fraction(), 0.0);
    }

    #[test]
    fn no_counterexamples_is_inconclusive() {
        let b = analyze(&report(&[]), &tol(&[(0, 0, None)]), &biased_train());
        assert_eq!(b.total(), 0);
        assert_eq!(b.dominant_target(), None);
        assert_eq!(b.bias_toward_majority(), None);
        assert_eq!(b.majority_flow_fraction(), 0.0);
    }

    #[test]
    fn balanced_training_fractions() {
        let balanced = Dataset::new(vec![vec![0.0], vec![1.0]], vec![0, 1], 2).unwrap();
        let b = analyze(&report(&[(0, 1, 1), (1, 0, 1)]), &tol(&[]), &balanced);
        assert!((b.train_fractions[0] - 0.5).abs() < 1e-12);
        // Tie in flows: dominant target is the max — with equal counts the
        // lower class wins via max_by_key order stability; either way the
        // fraction splits evenly.
        assert!((b.majority_flow_fraction() - 0.5).abs() < 1e-12);
    }
}
