//! The full FANNet analysis pipeline (paper Fig. 1/Fig. 2) and its
//! aggregated report.
//!
//! [`run`] chains every stage of the methodology over a trained exact
//! network and a test set:
//!
//! 1. **Behaviour extraction / P1** — validate the exact model against the
//!    float reference and the true labels; keep the correctly classified
//!    inputs.
//! 2. **Noise tolerance / P2** — per-input robustness radii, dataset
//!    tolerance, and the Fig. 4 misclassification sweep.
//! 3. **Adversarial extraction / P3** — unique noise vectors (the matrix
//!    `e`).
//! 4. **Training bias** — misclassification flow vs training composition.
//! 5. **Input-node sensitivity** — per-node noise-sign statistics.
//! 6. **Boundary analysis** — radius/margin view of boundary proximity.

use fannet_data::Dataset;
use fannet_nn::Network;
use fannet_numeric::Rational;
use fannet_obs::Span;
use fannet_verify::bab::{default_threads, CheckerConfig};

use crate::adversarial::{self, AdversarialReport};
use crate::behavior::{self, ValidationReport};
use crate::bias::{self, BiasReport};
use crate::boundary::{self, BoundaryReport};
use crate::faults::{self, FaultAnalysisConfig, FaultReport};
use crate::joint::{self, JointAnalysisConfig, JointFrontierReport};
use crate::sensitivity::{self, SensitivityReport};
use crate::tolerance::{self, SweepRow, ToleranceReport};

/// Knobs of the end-to-end analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalysisConfig {
    /// Largest noise range probed by the tolerance search.
    pub max_delta: i64,
    /// Ranges reported in the Fig. 4 sweep.
    pub sweep_deltas: Vec<i64>,
    /// Range used for adversarial extraction (bias/sensitivity analyses).
    /// `None` picks `tolerance + 5` automatically — just past the point
    /// where counterexamples start existing, where the bias signal is
    /// sharpest (at very large ranges every input flips and the flow
    /// statistics wash out).
    pub extraction_delta: Option<i64>,
    /// Cap on extracted vectors per input (the paper extracts *some*, not
    /// all, counterexamples).
    pub per_input_cap: usize,
    /// Radius at or below which an input counts as near the boundary.
    pub near_threshold: i64,
    /// Per-query checker tiers (screening on by default; results are
    /// identical across configurations, only wall clock changes).
    pub checker: CheckerConfig,
    /// Worker threads fanning the per-input P2/P3 queries
    /// (`FANNET_THREADS` overrides the default of all cores; `1` = serial).
    pub input_threads: usize,
    /// The weight-fault tolerance section (`fault_report`): ε grid and
    /// fault-checker budget of the per-input bisections.
    pub fault: FaultAnalysisConfig,
    /// The joint input×weight frontier section (`joint_frontier`): δ
    /// axis, ε grid and product-search budget.
    pub joint: JointAnalysisConfig,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        AnalysisConfig {
            max_delta: 50,
            sweep_deltas: vec![5, 10, 15, 20, 25, 30, 35, 40],
            extraction_delta: None,
            per_input_cap: 60,
            near_threshold: 15,
            // Per-input fan-out saturates the cores, so each individual
            // query stays single-threaded; the cascade routes each box
            // through the cheapest screen that can decide it (interval →
            // zonotope → exact), which is what keeps the wide-delta
            // sweep rows affordable.
            checker: CheckerConfig::cascade(),
            input_threads: default_threads(),
            fault: FaultAnalysisConfig::default(),
            joint: JointAnalysisConfig::default(),
        }
    }
}

/// Aggregated output of one FANNet run.
#[derive(Debug, Clone)]
pub struct FannetReport {
    /// P1 validation of the exact model.
    pub validation: ValidationReport,
    /// Per-input radii and the dataset noise tolerance.
    pub tolerance: ToleranceReport,
    /// Misclassified-inputs-per-range sweep (Fig. 4 main panel).
    pub sweep: Vec<SweepRow>,
    /// The extracted noise matrix `e`.
    pub adversarial: AdversarialReport,
    /// Training-bias flows.
    pub bias: BiasReport,
    /// Per-node sensitivities.
    pub sensitivity: SensitivityReport,
    /// Boundary-proximity view.
    pub boundary: BoundaryReport,
    /// Per-class weight-fault tolerance (DESIGN.md §11).
    pub fault: FaultReport,
    /// Per-class joint input×weight (δ, ε) frontier (DESIGN.md §12).
    pub joint: JointFrontierReport,
}

impl FannetReport {
    /// The headline number: the network's noise tolerance `±Δ%`.
    #[must_use]
    pub fn noise_tolerance(&self) -> i64 {
        self.tolerance.tolerance()
    }

    /// Renders the report as the text tables printed by the `repro`
    /// binary (one block per paper artifact).
    #[must_use]
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();

        let _ = writeln!(out, "== P1 validation (behaviour extraction) ==");
        let _ = writeln!(
            out,
            "accuracy {}/{} = {:.2}%  translation_faithful={}",
            self.validation.correct,
            self.validation.total,
            100.0 * self.validation.accuracy(),
            self.validation.translation_faithful()
        );

        let _ = writeln!(out, "\n== Noise tolerance (Fig. 4, §V-C.1) ==");
        let _ = writeln!(
            out,
            "noise tolerance: ±{}% (max probed ±{}%)",
            self.noise_tolerance(),
            self.tolerance.max_delta
        );
        let _ = writeln!(out, "range     misclassified inputs");
        for row in &self.sweep {
            let _ = writeln!(
                out,
                "[-{:2},+{:2}]  {:3} / {}",
                row.delta, row.delta, row.misclassified_inputs, row.total_inputs
            );
        }

        let _ = writeln!(out, "\n== Adversarial noise vectors (P3, §IV-C) ==");
        let _ = writeln!(
            out,
            "extracted {} unique vectors at ±{}% over {} inputs",
            self.adversarial.total_vectors(),
            self.adversarial.delta,
            self.adversarial.per_input.len()
        );

        let _ = writeln!(out, "\n== Training bias (§V-C.3) ==");
        for (a, row) in self.bias.flows.iter().enumerate() {
            for (b, &n) in row.iter().enumerate() {
                if a != b {
                    let _ = writeln!(out, "L{a} -> L{b}: {n}");
                }
            }
        }
        let _ = writeln!(
            out,
            "train fractions: {:?}  majority=L{}  bias_toward_majority={:?}  majority_flow={:.0}%",
            self.bias.train_fractions,
            self.bias.majority_class(),
            self.bias.bias_toward_majority(),
            100.0 * self.bias.majority_flow_fraction()
        );
        for (c, &(flippable, total)) in self.bias.per_class_fragility.iter().enumerate() {
            let _ = writeln!(
                out,
                "class L{c} fragility: {flippable}/{total} inputs flip within ±{}%",
                self.adversarial.delta
            );
        }

        let _ = writeln!(out, "\n== Input-node sensitivity (§V-C.4) ==");
        let _ = writeln!(out, "node  +noise  -noise  zero  asymmetry");
        for n in &self.sensitivity.nodes {
            let _ = writeln!(
                out,
                "i{}    {:5}  {:5}  {:5}  {:+.2}{}",
                n.node + 1,
                n.positive,
                n.negative,
                n.zero,
                n.sign_asymmetry(),
                if n.insensitive_to_positive() {
                    "  (insensitive to positive noise)"
                } else if n.insensitive_to_negative() {
                    "  (insensitive to negative noise)"
                } else {
                    ""
                }
            );
        }

        let _ = writeln!(out, "\n== Weight-fault tolerance (fannet-faults) ==");
        let _ = writeln!(
            out,
            "relative weight noise, certified on the grid eps = k/{}, k <= {}:",
            self.fault.search.denom, self.fault.search.max_numer
        );
        let fmt_eps = |eps: &Option<Rational>| match eps {
            Some(e) => format!("eps >= {e} (~{:.3})", e.to_f64()),
            None => "n/a (no analysed inputs)".to_string(),
        };
        for (class, eps) in self.fault.per_class_tolerance().iter().enumerate() {
            let _ = writeln!(out, "class L{class}: {}", fmt_eps(eps));
        }
        let _ = writeln!(
            out,
            "network fault tolerance: {}",
            fmt_eps(&self.fault.network_tolerance())
        );

        let _ = writeln!(
            out,
            "\n== Joint input × weight robustness (fannet-search) =="
        );
        let _ = writeln!(
            out,
            "largest certified weight-noise eps (grid k/{}, k <= {}) per input-noise radius:",
            self.joint.search.denom, self.joint.search.max_numer
        );
        let deltas: Vec<String> = self.joint.deltas.iter().map(|d| format!("±{d}%")).collect();
        let _ = writeln!(out, "class      {}", deltas.join("      "));
        let fmt_cell = |eps: &Option<Rational>| match eps {
            Some(e) => format!("{:.3}", e.to_f64()),
            None => "  -  ".to_string(),
        };
        for (class, row) in self.joint.per_class_frontier().iter().enumerate() {
            let cells: Vec<String> = row.iter().map(fmt_cell).collect();
            let _ = writeln!(out, "L{class}        {}", cells.join("     "));
        }
        let cells: Vec<String> = self.joint.network_frontier().iter().map(fmt_cell).collect();
        let _ = writeln!(out, "network   {}", cells.join("     "));

        let _ = writeln!(out, "\n== Boundary analysis (§V-C.2) ==");
        let _ = writeln!(
            out,
            "near boundary (radius <= {}): {:?}",
            self.boundary.near_threshold,
            self.boundary.near_boundary()
        );
        let _ = writeln!(
            out,
            "robust through ±{}%: {:?}",
            self.tolerance.max_delta,
            self.boundary.far_from_boundary()
        );
        let _ = writeln!(
            out,
            "margin/radius concordance: {:.2}",
            self.boundary.margin_radius_concordance()
        );
        out
    }
}

/// Runs the complete FANNet methodology.
///
/// `train` is used only for the bias analysis (training composition);
/// `test` is the analysed dataset, restricted to its correctly classified
/// samples as in the paper.
///
/// # Panics
///
/// Panics if network/dataset widths mismatch.
#[must_use]
pub fn run(
    exact: &Network<Rational>,
    reference: &Network<f64>,
    train: &Dataset,
    test: &Dataset,
    config: &AnalysisConfig,
) -> FannetReport {
    // Each stage runs under an obs span, so a full run populates the
    // process-global registry with one `pipeline::<stage>` histogram per
    // stage — surfaced through the `metrics` JSONL op (DESIGN.md §14).
    let validation = {
        let _span = Span::enter("pipeline::validate");
        behavior::validate(exact, reference, test)
    };
    let correct = behavior::correctly_classified(exact, test);

    let tolerance = {
        let _span = Span::enter("pipeline::tolerance");
        tolerance::par_analyze(
            exact,
            test,
            &correct,
            config.max_delta,
            &config.checker,
            config.input_threads,
        )
    };
    let sweep = tolerance.sweep(&config.sweep_deltas);

    let extraction_delta = config
        .extraction_delta
        .unwrap_or_else(|| (tolerance.tolerance() + 5).clamp(1, config.max_delta));
    let adversarial = {
        let _span = Span::enter("pipeline::adversarial");
        adversarial::par_extract(
            exact,
            test,
            &correct,
            extraction_delta,
            config.per_input_cap,
            &config.checker,
            config.input_threads,
        )
    };
    let bias = bias::analyze(&adversarial, &tolerance, train);
    let sensitivity = sensitivity::analyze(&adversarial);
    let boundary = {
        let _span = Span::enter("pipeline::boundary");
        boundary::analyze(exact, test, &tolerance, config.near_threshold)
    };
    let fault = {
        let _span = Span::enter("pipeline::faults");
        faults::analyze(exact, test, &correct, &config.fault)
    };
    let joint = {
        let _span = Span::enter("pipeline::joint");
        joint::analyze(exact, test, &correct, &config.joint)
    };

    FannetReport {
        validation,
        tolerance,
        sweep,
        adversarial,
        bias,
        sensitivity,
        boundary,
        fault,
        joint,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fannet_nn::{Activation, DenseLayer, Readout};
    use fannet_tensor::Matrix;

    fn r(n: i128) -> Rational {
        Rational::from_integer(n)
    }

    /// Hand-built comparator pair (exact + float) for fast pipeline tests.
    fn nets() -> (Network<Rational>, Network<f64>) {
        let exact = Network::new(
            vec![DenseLayer::new(
                Matrix::from_rows(vec![vec![r(1), r(0)], vec![r(0), r(1)]]).unwrap(),
                vec![r(0), r(0)],
                Activation::Identity,
            )
            .unwrap()],
            Readout::MaxPool,
        )
        .unwrap();
        let float = exact.map(|v| v.to_f64());
        (exact, float)
    }

    fn datasets() -> (Dataset, Dataset) {
        // Biased training set: 3 of 4 samples in class 1.
        let train = Dataset::new(
            vec![
                vec![100.0, 40.0],
                vec![40.0, 100.0],
                vec![30.0, 90.0],
                vec![20.0, 80.0],
            ],
            vec![0, 1, 1, 1],
            2,
        )
        .unwrap();
        // Test set with one near-boundary input per class plus one
        // misclassified sample (label 1 but x0 > x1).
        let test = Dataset::new(
            vec![
                vec![100.0, 96.0],
                vec![96.0, 100.0],
                vec![100.0, 40.0],
                vec![90.0, 80.0],
            ],
            vec![0, 1, 0, 1],
            2,
        )
        .unwrap();
        (train, test)
    }

    fn config() -> AnalysisConfig {
        AnalysisConfig {
            max_delta: 20,
            sweep_deltas: vec![1, 2, 5, 10, 20],
            extraction_delta: Some(5),
            per_input_cap: 50,
            near_threshold: 5,
            ..AnalysisConfig::default()
        }
    }

    #[test]
    fn pipeline_end_to_end() {
        let (exact, float) = nets();
        let (train, test) = datasets();
        let report = run(&exact, &float, &train, &test, &config());

        // Validation: 3 of 4 test samples correct.
        assert_eq!(report.validation.correct, 3);
        assert!(report.validation.translation_faithful());

        // Tolerance: the 2 % margins flip at small Δ.
        assert!(report.noise_tolerance() < 5, "{:?}", report.tolerance);
        assert_eq!(report.tolerance.per_input.len(), 3);

        // Sweep is monotone.
        let counts: Vec<usize> = report
            .sweep
            .iter()
            .map(|r| r.misclassified_inputs)
            .collect();
        for w in counts.windows(2) {
            assert!(w[1] >= w[0]);
        }

        // Adversarial vectors exist at ±5 for the near-boundary inputs.
        assert!(report.adversarial.total_vectors() > 0);

        // Bias flows recorded both ways for this symmetric comparator.
        assert_eq!(report.bias.total(), report.adversarial.total_vectors());

        // Sensitivity table covers both nodes.
        assert_eq!(report.sensitivity.nodes.len(), 2);

        // Boundary: the wide-margin input is robust through ±20.
        assert!(report.boundary.far_from_boundary().contains(&2));

        // Fault section: one entry per correctly classified input; the
        // near-boundary pair (ε* = 4/196 ≈ 0.0204) pins the network
        // tolerance to the 2/100 grid point, the wide-margin input
        // (ε* = 60/140) saturates the default grid at 25/100.
        assert_eq!(report.fault.per_input.len(), 3);
        assert_eq!(
            report.fault.network_tolerance(),
            Some(Rational::new(2, 100))
        );
        let per_class = report.fault.per_class_tolerance();
        assert_eq!(per_class[0], Some(Rational::new(2, 100)));
        assert_eq!(per_class[1], Some(Rational::new(2, 100)));
    }

    #[test]
    fn render_text_contains_all_sections() {
        let (exact, float) = nets();
        let (train, test) = datasets();
        let report = run(&exact, &float, &train, &test, &config());
        let text = report.render_text();
        for needle in [
            "P1 validation",
            "Noise tolerance",
            "Adversarial noise vectors",
            "Training bias",
            "Input-node sensitivity",
            "Weight-fault tolerance",
            "network fault tolerance: eps >=",
            "Joint input × weight robustness",
            "Boundary analysis",
            "noise tolerance: ±",
        ] {
            assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
        }
    }

    #[test]
    fn run_populates_the_pipeline_span_registry() {
        let (exact, float) = nets();
        let (train, test) = datasets();
        let counts_of = |name: &str| {
            fannet_obs::global_registry()
                .snapshot()
                .into_iter()
                .find(|(n, _)| *n == name)
                .map(|(_, h)| h.count())
                .unwrap_or(0)
        };
        let stages = [
            "pipeline::validate",
            "pipeline::tolerance",
            "pipeline::adversarial",
            "pipeline::boundary",
            "pipeline::faults",
            "pipeline::joint",
        ];
        let before: Vec<u64> = stages.iter().map(|s| counts_of(s)).collect();
        let _ = run(&exact, &float, &train, &test, &config());
        for (stage, before) in stages.iter().zip(before) {
            assert_eq!(counts_of(stage), before + 1, "stage {stage} unrecorded");
        }
    }

    #[test]
    fn default_config_is_paper_shaped() {
        let c = AnalysisConfig::default();
        assert_eq!(c.max_delta, 50);
        assert_eq!(c.sweep_deltas, vec![5, 10, 15, 20, 25, 30, 35, 40]);
    }
}
