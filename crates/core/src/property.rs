//! The paper's formal properties **P1**, **P2**, **P3** as first-class
//! objects.
//!
//! Fig. 2 of the paper drives the whole methodology off three temporal
//! properties:
//!
//! | id | formula | role |
//! |----|---------------------------|-------------------------------------|
//! | P1 | `AG (OC = Sx)`            | validate the translated model, no noise |
//! | P2 | `AG (OCn = Sx)`           | noise-tolerance query at range ±Δ   |
//! | P3 | `AG ((OCn = Sx) ∨ NV ∈ e)`| fresh-counterexample query          |
//!
//! A [`Property`] bundles the formula identity with its parameters (noise
//! region, exclusion set size) so reports can say exactly which query
//! produced which verdict, and so the SMV text of the property can be
//! emitted next to the translated model.

use std::fmt;

use fannet_verify::region::NoiseRegion;

/// Which of the paper's three properties a query instantiates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PropertyKind {
    /// `P1`: functional validation without noise.
    P1Validation,
    /// `P2`: classification invariance under a noise range.
    P2NoiseTolerance,
    /// `P3`: P2 weakened by an exclusion matrix `e`, forcing fresh
    /// counterexamples.
    P3FreshCounterexample,
}

/// A concrete property instance for one input sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Property {
    kind: PropertyKind,
    /// The noise region the query quantifies over (a point region for P1).
    region: NoiseRegion,
    /// Number of excluded vectors (0 unless P3).
    excluded: usize,
    /// The expected (true) label `Sx`.
    label: usize,
}

impl Property {
    /// The P1 validation property for a network with `nodes` inputs.
    #[must_use]
    pub fn p1(nodes: usize, label: usize) -> Self {
        Property {
            kind: PropertyKind::P1Validation,
            region: NoiseRegion::symmetric(0, nodes),
            excluded: 0,
            label,
        }
    }

    /// The P2 noise-tolerance property over `region`.
    #[must_use]
    pub fn p2(region: NoiseRegion, label: usize) -> Self {
        Property {
            kind: PropertyKind::P2NoiseTolerance,
            region,
            excluded: 0,
            label,
        }
    }

    /// The P3 fresh-counterexample property over `region` with `excluded`
    /// vectors already in the matrix `e`.
    #[must_use]
    pub fn p3(region: NoiseRegion, label: usize, excluded: usize) -> Self {
        Property {
            kind: PropertyKind::P3FreshCounterexample,
            region,
            excluded,
            label,
        }
    }

    /// Which paper property this is.
    #[must_use]
    pub fn kind(&self) -> PropertyKind {
        self.kind
    }

    /// The noise region quantified over.
    #[must_use]
    pub fn region(&self) -> &NoiseRegion {
        &self.region
    }

    /// The expected label `Sx`.
    #[must_use]
    pub fn label(&self) -> usize {
        self.label
    }

    /// Size of the exclusion matrix `e`.
    #[must_use]
    pub fn excluded(&self) -> usize {
        self.excluded
    }

    /// The property formula in SMV `INVARSPEC` syntax.
    #[must_use]
    pub fn smv_formula(&self) -> String {
        match self.kind {
            PropertyKind::P1Validation => format!("oc = {}", self.label),
            PropertyKind::P2NoiseTolerance => format!("oc_n = {}", self.label),
            PropertyKind::P3FreshCounterexample => {
                format!("oc_n = {} | nv_in_e", self.label)
            }
        }
    }
}

impl fmt::Display for Property {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            PropertyKind::P1Validation => {
                write!(f, "P1: AG (OC = L{}) [no noise]", self.label)
            }
            PropertyKind::P2NoiseTolerance => {
                write!(f, "P2: AG (OCn = L{}) over {}", self.label, self.region)
            }
            PropertyKind::P3FreshCounterexample => write!(
                f,
                "P3: AG ((OCn = L{}) | NV in e) over {}, |e| = {}",
                self.label, self.region, self.excluded
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_kind() {
        assert_eq!(Property::p1(5, 0).kind(), PropertyKind::P1Validation);
        let region = NoiseRegion::symmetric(5, 5);
        assert_eq!(
            Property::p2(region.clone(), 1).kind(),
            PropertyKind::P2NoiseTolerance
        );
        assert_eq!(
            Property::p3(region, 1, 7).kind(),
            PropertyKind::P3FreshCounterexample
        );
    }

    #[test]
    fn p1_region_is_zero_noise_point() {
        let p = Property::p1(3, 0);
        assert!(p.region().is_point());
        assert_eq!(p.region().nodes(), 3);
        assert_eq!(p.excluded(), 0);
    }

    #[test]
    fn display_and_formula() {
        let region = NoiseRegion::symmetric(11, 5);
        let p2 = Property::p2(region.clone(), 1);
        let s = p2.to_string();
        assert!(s.starts_with("P2:"));
        assert!(s.contains("[-11, 11]"));
        assert_eq!(p2.smv_formula(), "oc_n = 1");
        let p3 = Property::p3(region, 0, 3);
        assert!(p3.to_string().contains("|e| = 3"));
        assert!(p3.smv_formula().contains("nv_in_e"));
        assert_eq!(Property::p1(5, 1).smv_formula(), "oc = 1");
    }
}
