//! The paper's leukemia case study, end to end (paper §V-A/V-B).
//!
//! [`build`] reproduces the full experimental setup:
//!
//! 1. generate the synthetic Golub dataset (7129 genes, 38/34 split,
//!    ≈70 % ALL in training — see `fannet_data::golub` for the
//!    substitution argument);
//! 2. select the top five genes with mRMR;
//! 3. z-score-normalize, train the 5–20(ReLU)–2 network full-batch with
//!    the paper's two-phase learning-rate schedule (0.5 × 40 epochs,
//!    0.2 × 40 epochs);
//! 4. fold the normalization back into the first layer so the deployed
//!    network consumes **raw integer gene expressions** (the domain the
//!    paper's relative noise model lives in);
//! 5. quantize exactly to rationals for verification.
//!
//! Everything is deterministic in the configuration (dataset seed +
//! training seed), so reports and benches are reproducible run to run.

use fannet_data::discretize::Discretizer;
use fannet_data::golub::{self, GolubConfig, GolubLeukemia};
use fannet_data::mrmr::{self, MrmrScheme, Selection};
use fannet_data::normalize::Affine;
use fannet_data::Dataset;
use fannet_nn::train::{TrainConfig, TrainReport};
use fannet_nn::{fold, init, quantize, train, Activation, Network};
use fannet_numeric::Rational;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration of the case study.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseStudyConfig {
    /// Dataset generator settings.
    pub golub: GolubConfig,
    /// Number of genes to keep (paper: 5).
    pub selected_features: usize,
    /// Hidden-layer width (paper: 20).
    pub hidden: usize,
    /// mRMR scoring scheme.
    pub mrmr: MrmrScheme,
    /// Training settings (paper schedule by default).
    pub train: TrainConfig,
    /// Weight-initialization seed.
    pub init_seed: u64,
    /// Quantization precision in denominator bits.
    pub denom_bits: u32,
}

impl CaseStudyConfig {
    /// The paper's configuration at full dataset size.
    #[must_use]
    pub fn paper() -> Self {
        CaseStudyConfig {
            golub: GolubConfig::paper(),
            selected_features: 5,
            hidden: 20,
            mrmr: MrmrScheme::Difference,
            train: TrainConfig::paper(),
            init_seed: 0xFA_77E7,
            denom_bits: quantize::DEFAULT_DENOM_BITS,
        }
    }

    /// A reduced configuration (500 genes) for fast tests.
    #[must_use]
    pub fn small() -> Self {
        CaseStudyConfig {
            golub: GolubConfig::small(),
            ..Self::paper()
        }
    }
}

/// All artifacts of the trained-and-quantized case study.
#[derive(Debug, Clone)]
pub struct CaseStudy {
    /// The generated dataset (full gene width).
    pub data: GolubLeukemia,
    /// The mRMR gene selection.
    pub selection: Selection,
    /// Training split projected to the selected genes (raw integers).
    pub train5: Dataset,
    /// Test split projected to the selected genes (raw integers).
    pub test5: Dataset,
    /// Trained float network consuming *raw* inputs (normalization folded).
    pub float_net: Network<f64>,
    /// Exactly-quantized verification network.
    pub exact_net: Network<Rational>,
    /// Per-epoch training history.
    pub train_report: TrainReport,
    /// The normalization that was folded into the first layer.
    pub normalization: Affine,
}

impl CaseStudy {
    /// Training accuracy after the final epoch (paper: 100 %).
    #[must_use]
    pub fn train_accuracy(&self) -> f64 {
        self.train_report.final_accuracy()
    }

    /// Test accuracy of the folded float network on raw inputs
    /// (paper: 94.12 %).
    #[must_use]
    pub fn test_accuracy(&self) -> f64 {
        train::accuracy(&self.float_net, self.test5.samples(), self.test5.labels())
            .expect("shapes fixed by construction")
    }
}

/// Builds the complete case study from a configuration. Deterministic.
///
/// # Panics
///
/// Panics if the configuration is internally inconsistent (e.g. more
/// selected features than genes).
#[must_use]
pub fn build(config: &CaseStudyConfig) -> CaseStudy {
    let data = golub::generate(&config.golub);

    // mRMR on the training columns only (no test leakage).
    let selection = mrmr::select_mrmr(
        &data.train.columns(),
        data.train.labels(),
        config.selected_features,
        config.mrmr,
        Discretizer::SigmaBands,
    );
    let train5 = data.train.select_features(&selection.features);
    let test5 = data.test.select_features(&selection.features);

    // Normalize for training, then fold the affine into the first layer.
    // Scale-only (no mean subtraction): the folded network keeps the
    // approximate scale-equivariance of the paper's raw-integer-input
    // network (see `Affine::fit_max_abs`).
    let normalization = Affine::fit_max_abs(&train5);
    let train_norm = normalization.apply_dataset(&train5);

    let mut net = init::fresh_network(
        &mut StdRng::seed_from_u64(config.init_seed),
        &[config.selected_features, config.hidden, 2],
        Activation::ReLU,
        init::Init::XavierUniform,
    );
    let train_report = train::train(
        &mut net,
        train_norm.samples(),
        train_norm.labels(),
        &config.train,
    )
    .expect("shapes fixed by construction");

    let float_net = fold::fold_input_affine(&net, normalization.scale(), normalization.offset())
        .expect("affine fitted on the same width");
    let exact_net = quantize::to_rational(&float_net, config.denom_bits);

    CaseStudy {
        data,
        selection,
        train5,
        test5,
        float_net,
        exact_net,
        train_report,
        normalization,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavior;

    fn study() -> CaseStudy {
        build(&CaseStudyConfig::small())
    }

    #[test]
    fn shapes_match_the_paper() {
        let cs = study();
        assert_eq!(cs.train5.len(), 38);
        assert_eq!(cs.test5.len(), 34);
        assert_eq!(cs.train5.features(), 5);
        assert_eq!(cs.float_net.topology(), vec![5, 20, 2]);
        assert_eq!(cs.exact_net.topology(), vec![5, 20, 2]);
        assert_eq!(cs.selection.features.len(), 5);
    }

    #[test]
    fn training_reaches_paper_accuracy_shape() {
        let cs = study();
        // Paper: 100 % train accuracy; ≥ 94 % test accuracy (exact value
        // depends on the synthetic draw — EXPERIMENTS.md records both).
        assert_eq!(
            cs.train_accuracy(),
            1.0,
            "losses: {:?}",
            cs.train_report.epoch_loss
        );
        assert!(
            cs.test_accuracy() >= 0.85,
            "test accuracy {:.3} collapsed",
            cs.test_accuracy()
        );
        assert!(
            cs.test_accuracy() < 1.0,
            "hard test samples should make the test set imperfect, as in the paper"
        );
    }

    #[test]
    fn folded_network_consumes_raw_integers() {
        let cs = study();
        // Raw gene-expression inputs: integers, magnitudes in the hundreds
        // to thousands.
        let (sample, _) = cs.test5.iter().next().unwrap();
        assert!(sample.iter().all(|v| v.fract() == 0.0));
        // The exact net classifies the raw sample identically to float.
        let report = behavior::validate(&cs.exact_net, &cs.float_net, &cs.test5);
        assert!(report.translation_faithful(), "{report:?}");
    }

    #[test]
    fn deterministic_build() {
        let a = study();
        let b = study();
        assert_eq!(a.float_net, b.float_net);
        assert_eq!(a.selection, b.selection);
        assert_eq!(a.test_accuracy(), b.test_accuracy());
    }

    #[test]
    fn train_bias_is_present() {
        let cs = study();
        // ~70 % of training samples in class L1 (ALL).
        let frac = cs.train5.label_fraction(golub::L1_ALL);
        assert!((frac - 27.0 / 38.0).abs() < 1e-12);
    }
}
