//! Adversarial noise-vector extraction (paper §IV-C, property **P3**).
//!
//! For every analysed input, the P3 loop extracts *unique* misclassifying
//! noise vectors until either the region is exhausted or a per-input cap is
//! reached. The union of the extracted vectors is the paper's noise matrix
//! `e`; the bias and sensitivity analyses are computed over it.

use fannet_data::Dataset;
use fannet_nn::Network;
use fannet_numeric::Rational;
use fannet_verify::bab::{CheckerConfig, RegionChecker};
use fannet_verify::exact::Counterexample;
use fannet_verify::region::NoiseRegion;

use crate::behavior::rational_input;
use crate::par;

/// All counterexamples extracted for one input.
#[derive(Debug, Clone, PartialEq)]
pub struct InputAdversaries {
    /// Index of the input in the analysed dataset.
    pub index: usize,
    /// The input's true label `Sx`.
    pub label: usize,
    /// Extracted counterexamples (unique noise vectors, extraction order).
    pub counterexamples: Vec<Counterexample>,
    /// `true` if the region was exhausted (every misclassifying vector
    /// extracted); `false` if extraction stopped at the cap.
    pub exhausted: bool,
}

/// The noise matrix `e` for a dataset: per-input unique adversarial
/// vectors.
#[derive(Debug, Clone, PartialEq)]
pub struct AdversarialReport {
    /// The symmetric range the vectors were drawn from.
    pub delta: i64,
    /// Per-input extraction results.
    pub per_input: Vec<InputAdversaries>,
}

impl AdversarialReport {
    /// Total number of extracted vectors across all inputs.
    #[must_use]
    pub fn total_vectors(&self) -> usize {
        self.per_input.iter().map(|i| i.counterexamples.len()).sum()
    }

    /// Iterates over every extracted counterexample with its input index.
    pub fn iter_all(&self) -> impl Iterator<Item = (usize, &Counterexample)> {
        self.per_input
            .iter()
            .flat_map(|i| i.counterexamples.iter().map(move |ce| (i.index, ce)))
    }
}

/// Runs the P3 extraction loop for each selected input over `±delta`,
/// collecting at most `per_input_cap` vectors per input.
///
/// The paper stresses that the objective "is not to exhaustively search for
/// counterexamples, but rather to explore network properties on the basis
/// of obtained counterexamples" — the cap implements exactly that
/// trade-off.
///
/// # Panics
///
/// Panics if an index is out of range, widths mismatch, or
/// `per_input_cap == 0`.
#[must_use]
pub fn extract(
    net: &Network<Rational>,
    data: &Dataset,
    indices: &[usize],
    delta: i64,
    per_input_cap: usize,
) -> AdversarialReport {
    par_extract(
        net,
        data,
        indices,
        delta,
        per_input_cap,
        &CheckerConfig::serial_exact(),
        1,
    )
}

/// [`extract`] with the per-input P3 loops fanned across `input_threads`
/// workers, each collection running under `config`.
///
/// Extraction order within an input is the serial DFS order under every
/// configuration, and inputs stay in `indices` order, so the report is
/// identical to the serial one.
///
/// # Panics
///
/// Panics if an index is out of range, widths mismatch, or
/// `per_input_cap == 0`.
#[must_use]
pub fn par_extract(
    net: &Network<Rational>,
    data: &Dataset,
    indices: &[usize],
    delta: i64,
    per_input_cap: usize,
    config: &CheckerConfig,
    input_threads: usize,
) -> AdversarialReport {
    assert!(per_input_cap > 0, "need a positive per-input cap");
    // One shadow build per network, shared by every worker.
    let checker = RegionChecker::new(net, config.clone());
    let per_input = par::ordered_map(indices, input_threads, |&i| {
        let (sample, label) = (data.samples()[i].as_slice(), data.labels()[i]);
        let x = rational_input(sample);
        let region = NoiseRegion::symmetric(delta, x.len());
        // Single-pass collection: semantically the P3 restart loop
        // (each vector is unique), but each safe box is pruned once.
        let (counterexamples, exhausted, _) = checker
            .collect_region_counterexamples(&x, label, &region, per_input_cap)
            .expect("widths validated upstream");
        InputAdversaries {
            index: i,
            label,
            exhausted,
            counterexamples,
        }
    });
    AdversarialReport { delta, per_input }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fannet_nn::{Activation, DenseLayer, Readout};
    use fannet_tensor::Matrix;
    use fannet_verify::exact::classify_noisy;
    use std::collections::HashSet;

    fn r(n: i128) -> Rational {
        Rational::from_integer(n)
    }

    fn comparator() -> Network<Rational> {
        Network::new(
            vec![DenseLayer::new(
                Matrix::from_rows(vec![vec![r(1), r(0)], vec![r(0), r(1)]]).unwrap(),
                vec![r(0), r(0)],
                Activation::Identity,
            )
            .unwrap()],
            Readout::MaxPool,
        )
        .unwrap()
    }

    fn data() -> Dataset {
        Dataset::new(vec![vec![100.0, 97.0], vec![100.0, 40.0]], vec![0, 0], 2).unwrap()
    }

    #[test]
    fn extraction_is_unique_and_correct() {
        let net = comparator();
        let report = extract(&net, &data(), &[0, 1], 4, 100);
        assert_eq!(report.delta, 4);
        assert_eq!(report.per_input.len(), 2);

        // Input 0 (margin 3 %) has counterexamples at ±4; input 1 none.
        let first = &report.per_input[0];
        assert!(!first.counterexamples.is_empty());
        assert!(first.exhausted, "cap of 100 should exhaust a ±4 region");
        let unique: HashSet<_> = first
            .counterexamples
            .iter()
            .map(|ce| ce.noise.percents().to_vec())
            .collect();
        assert_eq!(unique.len(), first.counterexamples.len(), "vectors unique");
        // Every extracted vector truly misclassifies.
        let x = rational_input(&data().samples()[0]);
        for ce in &first.counterexamples {
            assert_ne!(classify_noisy(&net, &x, &ce.noise).unwrap(), 0);
        }

        let second = &report.per_input[1];
        assert!(second.counterexamples.is_empty());
        assert!(second.exhausted);
    }

    #[test]
    fn cap_limits_extraction() {
        let net = comparator();
        let report = extract(&net, &data(), &[0], 6, 3);
        let first = &report.per_input[0];
        assert_eq!(first.counterexamples.len(), 3);
        assert!(!first.exhausted, "cap reached before exhaustion");
    }

    #[test]
    fn totals_and_iteration() {
        let net = comparator();
        let report = extract(&net, &data(), &[0, 1], 4, 10);
        assert_eq!(
            report.total_vectors(),
            report.per_input[0].counterexamples.len()
        );
        let all: Vec<_> = report.iter_all().collect();
        assert_eq!(all.len(), report.total_vectors());
        assert!(all.iter().all(|(idx, _)| *idx == 0));
    }

    #[test]
    fn extraction_count_matches_brute_force() {
        let net = comparator();
        let report = extract(&net, &data(), &[0], 3, 1000);
        let x = rational_input(&data().samples()[0]);
        let brute = NoiseRegion::symmetric(3, 2)
            .iter_points()
            .filter(|nv| classify_noisy(&net, &x, nv).unwrap() != 0)
            .count();
        assert_eq!(report.per_input[0].counterexamples.len(), brute);
    }

    #[test]
    #[should_panic(expected = "positive per-input cap")]
    fn zero_cap_panics() {
        let net = comparator();
        let _ = extract(&net, &data(), &[0], 2, 0);
    }
}
