//! Noise-tolerance analysis (paper §IV-B, §V-C.1 and the Fig. 4 sweep).
//!
//! The paper starts from a large noise range and iteratively reduces it
//! until the model checker proves the absence of counterexamples; the last
//! counterexample-free range is the network's **noise tolerance** (±11 %
//! for the paper's trained network). Because counterexample existence is
//! monotone in the range (`±Δ ⊆ ±(Δ+1)`), this reproduction computes the
//! same quantity with a binary search per input — each probe being one
//! sound-and-complete branch-and-bound query (property P2).

use fannet_data::Dataset;
use fannet_engine::Engine;
use fannet_nn::Network;
use fannet_numeric::Rational;
use fannet_verify::bab::{CheckerConfig, RegionChecker};
use fannet_verify::noise::ExclusionSet;
use fannet_verify::region::NoiseRegion;
use serde::{Deserialize, Serialize};

use crate::behavior::rational_input;
use crate::par;

/// Robustness radius of one input: the smallest `Δ` whose `±Δ` region
/// contains a misclassifying noise vector.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InputRadius {
    /// Index of the input in the analysed dataset.
    pub index: usize,
    /// The input's true label.
    pub label: usize,
    /// Smallest flipping `Δ` in `[1, max_delta]`, or `None` if the input
    /// is robust throughout `±max_delta`.
    pub radius: Option<i64>,
}

/// Dataset-level noise-tolerance report.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ToleranceReport {
    /// The largest range probed.
    pub max_delta: i64,
    /// Per-input radii (correctly classified inputs only).
    pub per_input: Vec<InputRadius>,
}

/// One row of the Fig. 4 sweep: how many inputs have at least one
/// misclassifying vector within `±delta`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SweepRow {
    /// Symmetric noise range.
    pub delta: i64,
    /// Inputs misclassifiable within the range.
    pub misclassified_inputs: usize,
    /// Inputs analysed.
    pub total_inputs: usize,
}

impl ToleranceReport {
    /// The network's noise tolerance: the largest `Δ` at which *no*
    /// analysed input can be misclassified. Equals `max_delta` when every
    /// input is robust throughout.
    #[must_use]
    pub fn tolerance(&self) -> i64 {
        self.per_input
            .iter()
            .filter_map(|r| r.radius)
            .min()
            .map_or(self.max_delta, |min_radius| min_radius - 1)
    }

    /// Tabulates the Fig. 4 sweep from the per-input radii (no further
    /// verification queries needed).
    #[must_use]
    pub fn sweep(&self, deltas: &[i64]) -> Vec<SweepRow> {
        deltas
            .iter()
            .map(|&delta| SweepRow {
                delta,
                misclassified_inputs: self
                    .per_input
                    .iter()
                    .filter(|r| r.radius.is_some_and(|radius| radius <= delta))
                    .count(),
                total_inputs: self.per_input.len(),
            })
            .collect()
    }

    /// Inputs robust throughout `±max_delta` (the paper's "noise even as
    /// large as 50 % did not trigger misclassification" population).
    #[must_use]
    pub fn fully_robust(&self) -> Vec<usize> {
        self.per_input
            .iter()
            .filter(|r| r.radius.is_none())
            .map(|r| r.index)
            .collect()
    }
}

/// Computes the robustness radius of one input by binary search over `Δ`.
///
/// Probes are P2 queries; the result is exact thanks to monotonicity of
/// counterexample existence in `Δ`.
///
/// # Panics
///
/// Panics if `max_delta` is outside `[1, 100]` or widths mismatch (the
/// underlying query validates them).
#[must_use]
pub fn robustness_radius(
    net: &Network<Rational>,
    x: &[Rational],
    label: usize,
    max_delta: i64,
) -> Option<i64> {
    robustness_radius_with(net, x, label, max_delta, &CheckerConfig::serial_exact())
}

/// [`robustness_radius`] under an explicit [`CheckerConfig`] — every probe
/// of the binary search runs through the configured tiers, with the same
/// exact result.
///
/// # Panics
///
/// Panics if `max_delta` is outside `[1, 100]` or widths mismatch.
#[must_use]
pub fn robustness_radius_with(
    net: &Network<Rational>,
    x: &[Rational],
    label: usize,
    max_delta: i64,
    config: &CheckerConfig,
) -> Option<i64> {
    let checker = RegionChecker::new(net, config.clone());
    robustness_radius_on(&checker, x, label, max_delta)
}

/// [`robustness_radius_with`] against a prebuilt [`RegionChecker`] — the
/// form the per-input fan-out uses so the float shadow is built once per
/// network, not once per probe.
///
/// # Panics
///
/// Panics if `max_delta` is outside `[1, 100]` or widths mismatch.
#[must_use]
pub fn robustness_radius_on(
    checker: &RegionChecker<'_>,
    x: &[Rational],
    label: usize,
    max_delta: i64,
) -> Option<i64> {
    assert!(
        (1..=100).contains(&max_delta),
        "max_delta must be in [1, 100]"
    );
    let no_exclusions = ExclusionSet::new();
    let has_ce = |delta: i64| -> bool {
        let region = NoiseRegion::symmetric(delta, x.len());
        let (outcome, _) = checker
            .check_region(x, label, &region, &no_exclusions)
            .expect("widths validated by caller");
        !outcome.is_robust()
    };
    if !has_ce(max_delta) {
        return None;
    }
    // Invariant: lo has no CE (or is 0), hi has a CE.
    let mut lo = 0i64;
    let mut hi = max_delta;
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if has_ce(mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Some(hi)
}

/// [`robustness_radius`] answered by a resident [`Engine`] — the
/// incremental form of the binary search (DESIGN.md §8).
///
/// The engine's verdict cache warm-starts the bracket from any earlier
/// traffic on the same `(x, label)` (prior radius searches, `check`
/// queries, nested analyses) and serves probes that cached verdicts
/// subsume; a re-search after the cache is warm issues **zero** solver
/// runs. The returned radius is identical to the cold search's — every
/// cache rule is sound, so the minimum flipping `δ` cannot move.
///
/// # Panics
///
/// Panics if `max_delta` is outside `[1, 100]`, `label` is out of range,
/// or widths mismatch.
#[must_use]
pub fn robustness_radius_engine(
    engine: &Engine,
    x: &[Rational],
    label: usize,
    max_delta: i64,
) -> Option<i64> {
    engine
        .tolerance(x, label, max_delta)
        .expect("widths validated by caller")
}

/// Runs the tolerance analysis over the correctly classified samples of
/// `data` (by the paper's convention, misclassified samples are skipped).
///
/// `indices` selects which samples to analyse (typically
/// [`crate::behavior::correctly_classified`]).
///
/// # Panics
///
/// Panics if an index is out of range or widths mismatch.
#[must_use]
pub fn analyze(
    net: &Network<Rational>,
    data: &Dataset,
    indices: &[usize],
    max_delta: i64,
) -> ToleranceReport {
    par_analyze(
        net,
        data,
        indices,
        max_delta,
        &CheckerConfig::serial_exact(),
        1,
    )
}

/// [`analyze`] with the per-input binary searches fanned across
/// `input_threads` workers, each probe running under `config`.
///
/// The report is identical to the serial one (probes are exact under every
/// configuration and inputs are independent); only wall-clock changes.
/// Per-input parallelism composes with — but usually replaces — per-query
/// parallelism: with many inputs, one serial screened probe per worker
/// saturates all cores without oversubscription, so the typical call is
/// `par_analyze(.., &CheckerConfig::screened(), default_threads())`.
///
/// # Panics
///
/// Panics if an index is out of range or widths mismatch.
#[must_use]
pub fn par_analyze(
    net: &Network<Rational>,
    data: &Dataset,
    indices: &[usize],
    max_delta: i64,
    config: &CheckerConfig,
    input_threads: usize,
) -> ToleranceReport {
    let checker = RegionChecker::new(net, config.clone());
    let per_input = par::ordered_map(indices, input_threads, |&i| {
        let (sample, label) = (data.samples()[i].as_slice(), data.labels()[i]);
        let x = rational_input(sample);
        InputRadius {
            index: i,
            label,
            radius: robustness_radius_on(&checker, &x, label, max_delta),
        }
    });
    ToleranceReport {
        max_delta,
        per_input,
    }
}

/// [`par_analyze`] against a resident [`Engine`]: the per-input binary
/// searches fan across `input_threads` workers, every probe flows
/// through the engine's verdict cache, and the report is byte-identical
/// to [`analyze`]'s.
///
/// This replaces the cold re-verification pattern for sweep-style
/// workloads: successive analyses against the same engine (larger
/// `max_delta`, refreshed subsets, the Fig. 4 sweep rebuilt after new
/// traffic) reuse every verdict the cache still holds instead of
/// restarting each branch-and-bound from scratch.
///
/// # Panics
///
/// Panics if an index is out of range, widths mismatch, or `max_delta`
/// is outside `[1, 100]`.
#[must_use]
pub fn engine_analyze(
    engine: &Engine,
    data: &Dataset,
    indices: &[usize],
    max_delta: i64,
    input_threads: usize,
) -> ToleranceReport {
    let per_input = par::ordered_map(indices, input_threads, |&i| {
        let (sample, label) = (data.samples()[i].as_slice(), data.labels()[i]);
        let x = rational_input(sample);
        InputRadius {
            index: i,
            label,
            radius: robustness_radius_engine(engine, &x, label, max_delta),
        }
    });
    ToleranceReport {
        max_delta,
        per_input,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fannet_nn::{Activation, DenseLayer, Readout};
    use fannet_tensor::Matrix;

    fn r(n: i128) -> Rational {
        Rational::from_integer(n)
    }

    /// label 0 iff x0 ≥ x1: radius has the closed form
    /// min Δ such that x0(100−Δ) < x1(100+Δ).
    fn comparator() -> Network<Rational> {
        Network::new(
            vec![DenseLayer::new(
                Matrix::from_rows(vec![vec![r(1), r(0)], vec![r(0), r(1)]]).unwrap(),
                vec![r(0), r(0)],
                Activation::Identity,
            )
            .unwrap()],
            Readout::MaxPool,
        )
        .unwrap()
    }

    fn analytic_radius(x0: i64, x1: i64, max: i64) -> Option<i64> {
        (1..=max).find(|&d| x0 * (100 - d) < x1 * (100 + d))
    }

    #[test]
    fn radius_matches_closed_form() {
        let net = comparator();
        for (x0, x1) in [(100i64, 82), (100, 95), (100, 99), (200, 100), (1000, 998)] {
            let x = [r(i128::from(x0)), r(i128::from(x1))];
            let got = robustness_radius(&net, &x, 0, 50);
            let want = analytic_radius(x0, x1, 50);
            assert_eq!(got, want, "radius mismatch for ({x0}, {x1})");
        }
    }

    #[test]
    fn robust_input_returns_none() {
        let net = comparator();
        let x = [r(100), r(10)];
        assert_eq!(robustness_radius(&net, &x, 0, 20), None);
    }

    #[test]
    fn dataset_tolerance_and_sweep() {
        let net = comparator();
        // Radii: (100, 95) → Δ=3; (100, 82) → Δ=10; (100, 50) → None @ 20.
        let data = Dataset::new(
            vec![vec![100.0, 95.0], vec![100.0, 82.0], vec![100.0, 50.0]],
            vec![0, 0, 0],
            2,
        )
        .unwrap();
        let report = analyze(&net, &data, &[0, 1, 2], 20);
        assert_eq!(report.per_input[0].radius, Some(3));
        assert_eq!(report.per_input[1].radius, Some(10));
        assert_eq!(report.per_input[2].radius, None);
        // Tolerance is min radius − 1.
        assert_eq!(report.tolerance(), 2);
        assert_eq!(report.fully_robust(), vec![2]);
        let sweep = report.sweep(&[2, 3, 9, 10, 20]);
        let counts: Vec<usize> = sweep.iter().map(|row| row.misclassified_inputs).collect();
        assert_eq!(counts, vec![0, 1, 1, 2, 2]);
        assert!(sweep.iter().all(|row| row.total_inputs == 3));
        // Monotone non-decreasing, as in Fig. 4.
        for w in counts.windows(2) {
            assert!(w[1] >= w[0]);
        }
    }

    #[test]
    fn tolerance_equals_max_when_all_robust() {
        let net = comparator();
        let data = Dataset::new(vec![vec![100.0, 10.0]], vec![0], 2).unwrap();
        let report = analyze(&net, &data, &[0], 15);
        assert_eq!(report.tolerance(), 15);
        assert!(report
            .sweep(&[15])
            .iter()
            .all(|row| row.misclassified_inputs == 0));
    }

    #[test]
    fn subset_indices_respected() {
        let net = comparator();
        let data = Dataset::new(vec![vec![100.0, 95.0], vec![100.0, 82.0]], vec![0, 0], 2).unwrap();
        let report = analyze(&net, &data, &[1], 20);
        assert_eq!(report.per_input.len(), 1);
        assert_eq!(report.per_input[0].index, 1);
    }

    #[test]
    #[should_panic(expected = "max_delta must be in")]
    fn zero_max_delta_panics() {
        let net = comparator();
        let _ = robustness_radius(&net, &[r(1), r(1)], 0, 0);
    }

    #[test]
    fn engine_analyze_matches_cold_analyze() {
        use fannet_engine::EngineConfig;
        let net = comparator();
        let data = Dataset::new(
            vec![vec![100.0, 95.0], vec![100.0, 82.0], vec![100.0, 50.0]],
            vec![0, 0, 0],
            2,
        )
        .unwrap();
        let cold = analyze(&net, &data, &[0, 1, 2], 20);
        let engine = Engine::new(net, EngineConfig::serving());
        // Cold engine pass, warm engine pass, and a parallel warm pass
        // must all equal the engine-less report byte for byte.
        for threads in [1, 1, 4] {
            let report = engine_analyze(&engine, &data, &[0, 1, 2], 20, threads);
            assert_eq!(report, cold);
        }
        assert!(engine.stats().exact_hits + engine.stats().subsumption_hits > 0);
        // The warm re-analyses above must not have re-run the solver.
        let misses = engine.stats().misses;
        let _ = engine_analyze(&engine, &data, &[0, 1, 2], 20, 1);
        assert_eq!(engine.stats().misses, misses);
    }

    #[test]
    fn engine_radius_matches_closed_form() {
        use fannet_engine::EngineConfig;
        let net = comparator();
        let engine = Engine::new(net, EngineConfig::serving());
        for (x0, x1) in [(100i64, 82), (100, 95), (100, 99), (200, 100), (1000, 998)] {
            let x = [r(i128::from(x0)), r(i128::from(x1))];
            assert_eq!(
                robustness_radius_engine(&engine, &x, 0, 50),
                analytic_radius(x0, x1, 50),
                "radius mismatch for ({x0}, {x1})"
            );
        }
    }
}
