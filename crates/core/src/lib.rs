//! # fannet-core
//!
//! The FANNet methodology itself — the primary contribution of
//! *"FANNet: Formal Analysis of Noise Tolerance, Training Bias and Input
//! Sensitivity in Neural Networks"* (DATE 2020) — implemented on top of the
//! substrate crates (`fannet-nn`, `fannet-data`, `fannet-smv`,
//! `fannet-verify`).
//!
//! * [`property`] — the paper's formal properties P1/P2/P3.
//! * [`behavior`] — behaviour extraction and P1 model validation.
//! * [`tolerance`] — noise-tolerance computation (the ±11 % headline).
//! * [`adversarial`] — P3 extraction of the unique noise-vector matrix `e`.
//! * [`bias`] — training-bias analysis of misclassification flows.
//! * [`sensitivity`] — per-input-node noise-sign statistics.
//! * [`boundary`] — classification-boundary proximity estimation.
//! * [`faults`] — per-class weight-fault tolerance (the `fannet-faults`
//!   workload as a pipeline section).
//! * [`joint`] — the per-class joint input×weight (δ, ε) frontier
//!   (the `fannet-search` product domain as a pipeline section).
//! * [`casestudy`] — the leukemia case study, dataset to quantized network.
//! * [`pipeline`] — the full methodology as a single [`pipeline::run`].
//!
//! ## Example: a miniature FANNet run
//!
//! ```
//! use fannet_core::pipeline::{self, AnalysisConfig};
//! use fannet_data::Dataset;
//! use fannet_numeric::Rational;
//! use fannet_nn::{Activation, DenseLayer, Network, Readout};
//! use fannet_tensor::Matrix;
//!
//! let r = |n: i128| Rational::from_integer(n);
//! let exact = Network::new(vec![DenseLayer::new(
//!     Matrix::from_rows(vec![vec![r(1), r(0)], vec![r(0), r(1)]])?,
//!     vec![r(0), r(0)],
//!     Activation::Identity,
//! )?], Readout::MaxPool)?;
//! let float = exact.map(|v| v.to_f64());
//!
//! let train = Dataset::new(vec![vec![100.0, 40.0], vec![40.0, 100.0]], vec![0, 1], 2)?;
//! let test = Dataset::new(vec![vec![100.0, 90.0]], vec![0], 2)?;
//!
//! let config = AnalysisConfig {
//!     max_delta: 10,
//!     sweep_deltas: vec![2, 5, 10],
//!     extraction_delta: Some(8),
//!     per_input_cap: 20,
//!     near_threshold: 3,
//!     ..AnalysisConfig::default()
//! };
//! let report = pipeline::run(&exact, &float, &train, &test, &config);
//! assert_eq!(report.validation.correct, 1);
//! // 100 vs 90 flips once the 10 % relative gap closes: radius 6 ⇒ tolerance 5.
//! assert_eq!(report.noise_tolerance(), 5);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod adversarial;
pub mod behavior;
pub mod bias;
pub mod boundary;
pub mod casestudy;
pub mod faults;
pub mod joint;
pub mod par;
pub mod pipeline;
pub mod property;
pub mod sensitivity;
pub mod tolerance;

pub use casestudy::{CaseStudy, CaseStudyConfig};
pub use pipeline::{AnalysisConfig, FannetReport};
pub use property::{Property, PropertyKind};
