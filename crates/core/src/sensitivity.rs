//! Input-node sensitivity analysis (paper §V-C.4).
//!
//! The paper inspects the extracted adversarial noise vectors per input
//! node: for their network, *no* counterexample carried positive noise at
//! node `i5`, while node `i2` appeared with positive noise far more often
//! than with negative — knowledge that could drive variable-precision data
//! acquisition. This module computes those per-node sign statistics from
//! an [`AdversarialReport`].

use serde::{Deserialize, Serialize};

use crate::adversarial::AdversarialReport;

/// Sign statistics of one input node across all extracted noise vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeSensitivity {
    /// Input-node index (0-based; the paper's `i1`…`i5` are 1-based).
    pub node: usize,
    /// Vectors with strictly positive noise at this node.
    pub positive: usize,
    /// Vectors with strictly negative noise at this node.
    pub negative: usize,
    /// Vectors with zero noise at this node.
    pub zero: usize,
    /// Largest positive percent observed at this node.
    pub max_positive: i64,
    /// Most negative percent observed at this node.
    pub min_negative: i64,
}

impl NodeSensitivity {
    /// Total vectors inspected.
    #[must_use]
    pub fn total(&self) -> usize {
        self.positive + self.negative + self.zero
    }

    /// `true` if the node never appears with positive noise although
    /// counterexamples exist — the paper's "insensitive to positive noise"
    /// finding for node i5.
    #[must_use]
    pub fn insensitive_to_positive(&self) -> bool {
        self.total() > 0 && self.positive == 0
    }

    /// `true` if the node never appears with negative noise although
    /// counterexamples exist.
    #[must_use]
    pub fn insensitive_to_negative(&self) -> bool {
        self.total() > 0 && self.negative == 0
    }

    /// Signed asymmetry in `[-1, 1]`: `(positive − negative) / (positive +
    /// negative)`; positive values mean the node is more often attacked
    /// with positive noise (the paper's node-i2 shape). `0.0` when the node
    /// never carries nonzero noise.
    #[must_use]
    pub fn sign_asymmetry(&self) -> f64 {
        let nonzero = self.positive + self.negative;
        if nonzero == 0 {
            0.0
        } else {
            (self.positive as f64 - self.negative as f64) / nonzero as f64
        }
    }
}

/// Per-node sensitivity table for a whole extraction run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SensitivityReport {
    /// One entry per input node.
    pub nodes: Vec<NodeSensitivity>,
}

impl SensitivityReport {
    /// Nodes that never carry positive noise in any counterexample.
    #[must_use]
    pub fn positive_insensitive_nodes(&self) -> Vec<usize> {
        self.nodes
            .iter()
            .filter(|n| n.insensitive_to_positive())
            .map(|n| n.node)
            .collect()
    }

    /// The node with the strongest positive-sign asymmetry, if any vectors
    /// were observed.
    #[must_use]
    pub fn most_positive_skewed(&self) -> Option<usize> {
        self.nodes
            .iter()
            .filter(|n| n.positive + n.negative > 0)
            .max_by(|a, b| {
                a.sign_asymmetry()
                    .partial_cmp(&b.sign_asymmetry())
                    .expect("asymmetry is finite")
            })
            .map(|n| n.node)
    }
}

/// Computes per-node sign statistics over every extracted noise vector.
///
/// # Panics
///
/// Panics if the report contains vectors of inconsistent width.
#[must_use]
pub fn analyze(report: &AdversarialReport) -> SensitivityReport {
    let width = report.iter_all().next().map_or(0, |(_, ce)| ce.noise.len());
    let mut nodes: Vec<NodeSensitivity> = (0..width)
        .map(|node| NodeSensitivity {
            node,
            positive: 0,
            negative: 0,
            zero: 0,
            max_positive: 0,
            min_negative: 0,
        })
        .collect();
    for (_, ce) in report.iter_all() {
        assert_eq!(ce.noise.len(), width, "noise vectors must share a width");
        for (node, &p) in ce.noise.percents().iter().enumerate() {
            let entry = &mut nodes[node];
            if p > 0 {
                entry.positive += 1;
                entry.max_positive = entry.max_positive.max(p);
            } else if p < 0 {
                entry.negative += 1;
                entry.min_negative = entry.min_negative.min(p);
            } else {
                entry.zero += 1;
            }
        }
    }
    SensitivityReport { nodes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversarial::InputAdversaries;
    use fannet_numeric::Rational;
    use fannet_verify::exact::Counterexample;
    use fannet_verify::noise::NoiseVector;

    fn report_from_vectors(vectors: Vec<Vec<i64>>) -> AdversarialReport {
        let counterexamples = vectors
            .into_iter()
            .map(|v| Counterexample {
                noise: NoiseVector::new(v),
                noisy_input: vec![Rational::ONE],
                outputs: vec![Rational::ZERO, Rational::ONE],
                predicted: 1,
                expected: 0,
            })
            .collect();
        AdversarialReport {
            delta: 10,
            per_input: vec![InputAdversaries {
                index: 0,
                label: 0,
                counterexamples,
                exhausted: true,
            }],
        }
    }

    #[test]
    fn sign_counts_per_node() {
        let r = report_from_vectors(vec![vec![5, -3, 0], vec![2, -7, 0], vec![-1, -2, 0]]);
        let s = analyze(&r);
        assert_eq!(s.nodes.len(), 3);
        let n0 = &s.nodes[0];
        assert_eq!((n0.positive, n0.negative, n0.zero), (2, 1, 0));
        assert_eq!(n0.max_positive, 5);
        assert_eq!(n0.min_negative, -1);
        let n1 = &s.nodes[1];
        assert_eq!((n1.positive, n1.negative, n1.zero), (0, 3, 0));
        let n2 = &s.nodes[2];
        assert_eq!(n2.zero, 3);
    }

    #[test]
    fn paper_shape_positive_insensitive_node() {
        // Node 1 never positive (the paper's i5 shape); node 0 skews
        // positive (the i2 shape).
        let r = report_from_vectors(vec![vec![6, -2], vec![4, 0], vec![3, -5], vec![-1, -1]]);
        let s = analyze(&r);
        assert_eq!(s.positive_insensitive_nodes(), vec![1]);
        assert!(s.nodes[1].insensitive_to_positive());
        assert!(!s.nodes[1].insensitive_to_negative());
        assert_eq!(s.most_positive_skewed(), Some(0));
        assert!(s.nodes[0].sign_asymmetry() > 0.0);
        assert!(s.nodes[1].sign_asymmetry() < 0.0);
    }

    #[test]
    fn empty_report_yields_empty_table() {
        let r = AdversarialReport {
            delta: 5,
            per_input: vec![],
        };
        let s = analyze(&r);
        assert!(s.nodes.is_empty());
        assert!(s.positive_insensitive_nodes().is_empty());
        assert_eq!(s.most_positive_skewed(), None);
    }

    #[test]
    fn asymmetry_bounds() {
        let r = report_from_vectors(vec![vec![1], vec![2], vec![3]]);
        let s = analyze(&r);
        assert_eq!(s.nodes[0].sign_asymmetry(), 1.0);
        let r2 = report_from_vectors(vec![vec![-1], vec![-2]]);
        let s2 = analyze(&r2);
        assert_eq!(s2.nodes[0].sign_asymmetry(), -1.0);
        let r3 = report_from_vectors(vec![vec![0]]);
        assert_eq!(analyze(&r3).nodes[0].sign_asymmetry(), 0.0);
    }
}

/// A per-node data-acquisition recommendation derived from sensitivities —
/// the application the paper sketches in §V-C.4: "the knowledge of the
/// input node sensitivity … could be exploited in the design of
/// variable-precision data acquisition methodologies, where the
/// resource-greedy measurements could be reserved for obtaining the
/// sensitive inputs."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AcquisitionTier {
    /// The node appears in many counterexamples with both signs: acquire
    /// with high-precision (resource-greedy) measurement.
    HighPrecision,
    /// The node is attacked predominantly from one side: precision matters
    /// for that sign only (e.g. guard against under-measurement).
    OneSidedGuard,
    /// The node rarely carries nonzero noise in counterexamples: a cheap,
    /// low-precision measurement suffices.
    LowPrecision,
}

/// Per-node acquisition plan.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AcquisitionPlan {
    /// One `(node, tier)` entry per input node.
    pub tiers: Vec<(usize, AcquisitionTier)>,
}

impl AcquisitionPlan {
    /// The tier assigned to `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[must_use]
    pub fn tier(&self, node: usize) -> AcquisitionTier {
        self.tiers[node].1
    }

    /// Nodes in a given tier.
    #[must_use]
    pub fn nodes_in(&self, tier: AcquisitionTier) -> Vec<usize> {
        self.tiers
            .iter()
            .filter(|(_, t)| *t == tier)
            .map(|(n, _)| *n)
            .collect()
    }
}

/// Derives the acquisition plan from a sensitivity report.
///
/// A node whose nonzero-noise participation is below `low_participation`
/// (fraction of all vectors) is [`AcquisitionTier::LowPrecision`]; a node
/// with `|sign asymmetry| ≥ one_sided_threshold` is
/// [`AcquisitionTier::OneSidedGuard`]; everything else is
/// [`AcquisitionTier::HighPrecision`].
///
/// # Panics
///
/// Panics if thresholds are outside `[0, 1]`.
#[must_use]
pub fn acquisition_plan(
    report: &SensitivityReport,
    low_participation: f64,
    one_sided_threshold: f64,
) -> AcquisitionPlan {
    assert!(
        (0.0..=1.0).contains(&low_participation),
        "fraction in [0,1]"
    );
    assert!(
        (0.0..=1.0).contains(&one_sided_threshold),
        "threshold in [0,1]"
    );
    let tiers = report
        .nodes
        .iter()
        .map(|n| {
            let total = n.total();
            let participation = if total == 0 {
                0.0
            } else {
                (n.positive + n.negative) as f64 / total as f64
            };
            let tier = if participation < low_participation {
                AcquisitionTier::LowPrecision
            } else if n.sign_asymmetry().abs() >= one_sided_threshold {
                AcquisitionTier::OneSidedGuard
            } else {
                AcquisitionTier::HighPrecision
            };
            (n.node, tier)
        })
        .collect();
    AcquisitionPlan { tiers }
}

#[cfg(test)]
mod acquisition_tests {
    use super::*;
    use crate::adversarial::{AdversarialReport, InputAdversaries};
    use fannet_numeric::Rational;
    use fannet_verify::exact::Counterexample;
    use fannet_verify::noise::NoiseVector;

    fn report_from(vectors: Vec<Vec<i64>>) -> SensitivityReport {
        let counterexamples = vectors
            .into_iter()
            .map(|v| Counterexample {
                noise: NoiseVector::new(v),
                noisy_input: vec![Rational::ONE],
                outputs: vec![Rational::ZERO, Rational::ONE],
                predicted: 1,
                expected: 0,
            })
            .collect();
        analyze(&AdversarialReport {
            delta: 10,
            per_input: vec![InputAdversaries {
                index: 0,
                label: 0,
                counterexamples,
                exhausted: true,
            }],
        })
    }

    #[test]
    fn tiers_follow_participation_and_asymmetry() {
        // node 0: both signs (high precision)
        // node 1: only negative (one-sided)
        // node 2: almost always zero (low precision)
        let s = report_from(vec![
            vec![5, -1, 0],
            vec![-5, -2, 0],
            vec![4, -3, 0],
            vec![-4, -4, 1],
        ]);
        let plan = acquisition_plan(&s, 0.5, 0.9);
        assert_eq!(plan.tier(0), AcquisitionTier::HighPrecision);
        assert_eq!(plan.tier(1), AcquisitionTier::OneSidedGuard);
        assert_eq!(plan.tier(2), AcquisitionTier::LowPrecision);
        assert_eq!(plan.nodes_in(AcquisitionTier::OneSidedGuard), vec![1]);
    }

    #[test]
    fn empty_report_gives_empty_plan() {
        let s = analyze(&AdversarialReport {
            delta: 5,
            per_input: vec![],
        });
        let plan = acquisition_plan(&s, 0.5, 0.9);
        assert!(plan.tiers.is_empty());
    }

    #[test]
    fn all_zero_nodes_are_low_precision() {
        let s = report_from(vec![vec![0, 0], vec![0, 0]]);
        let plan = acquisition_plan(&s, 0.1, 0.9);
        assert_eq!(plan.tier(0), AcquisitionTier::LowPrecision);
        assert_eq!(plan.tier(1), AcquisitionTier::LowPrecision);
    }

    #[test]
    #[should_panic(expected = "fraction in [0,1]")]
    fn invalid_threshold_panics() {
        let s = report_from(vec![vec![1]]);
        let _ = acquisition_plan(&s, 1.5, 0.5);
    }
}
