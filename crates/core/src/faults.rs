//! Weight-fault tolerance analysis — the `fault_report` section of the
//! pipeline (DESIGN.md §11).
//!
//! The input-noise analyses ask how much the *environment* may perturb
//! an input before the verdict flips; this section asks the symmetric
//! question about the *hardware*: how much relative weight drift
//! (`FaultModel::WeightNoise`) each correctly-classified input provably
//! survives, aggregated per class — the fault-space counterpart of the
//! per-class fragility table. Every reported ε is **certified** by the
//! fault checker ([`fannet_faults::FaultChecker::tolerance`]): probes the
//! budgeted search cannot decide count as failures, so per-input values
//! are sound lower bounds.

use fannet_data::Dataset;
use fannet_faults::{FaultChecker, FaultCheckerConfig, FaultModel, ToleranceSearch};
use fannet_nn::Network;
use fannet_numeric::Rational;
use fannet_verify::bab::default_threads;
use serde::{Deserialize, Serialize};

use crate::behavior::rational_input;
use crate::par;

/// Knobs of the fault-tolerance analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultAnalysisConfig {
    /// The ε bisection grid per input.
    pub search: ToleranceSearch,
    /// Per-probe checker configuration. The default keeps the
    /// fault-space box budget small: on realistic networks the cascade
    /// decides at the root or not at all (splitting a 100+-dimensional
    /// fault box converges too slowly to chase), so a deep search only
    /// burns time on probes that end `Unknown` anyway.
    pub checker: FaultCheckerConfig,
    /// Worker threads fanning the per-input bisections.
    pub input_threads: usize,
}

impl Default for FaultAnalysisConfig {
    /// Percent-resolution grid up to ε = 1/4, 32-box fault search, all
    /// cores.
    fn default() -> Self {
        FaultAnalysisConfig {
            search: ToleranceSearch::new(100, 25),
            checker: FaultCheckerConfig::default().with_max_boxes(32),
            input_threads: default_threads(),
        }
    }
}

/// Certified weight-noise tolerance of one input.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InputFaultTolerance {
    /// Index of the input in the analysed dataset.
    pub index: usize,
    /// The input's true label.
    pub label: usize,
    /// The largest grid ε proven robust (`None` iff the fault-free
    /// network already misclassifies — excluded by construction when the
    /// analysis runs over correctly classified inputs).
    pub robust_eps: Option<Rational>,
    /// The smallest grid ε not proven robust (`None` when robust through
    /// the whole grid).
    pub first_failure: Option<Rational>,
}

/// Dataset-level fault-tolerance report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultReport {
    /// The bisection grid used.
    pub search: ToleranceSearch,
    /// Number of classes of the analysed dataset.
    pub classes: usize,
    /// Per-input certified tolerances.
    pub per_input: Vec<InputFaultTolerance>,
}

impl FaultReport {
    /// Per-class fault tolerance: the smallest certified ε over the
    /// class's analysed inputs (`None` for classes with no analysed
    /// inputs). This is the per-class number `fannet faults` and the
    /// repro report print.
    #[must_use]
    pub fn per_class_tolerance(&self) -> Vec<Option<Rational>> {
        (0..self.classes)
            .map(|class| {
                self.per_input
                    .iter()
                    .filter(|t| t.label == class)
                    .map(|t| t.robust_eps.unwrap_or(Rational::ZERO))
                    .min()
            })
            .collect()
    }

    /// The network's fault tolerance: the smallest certified ε over
    /// every analysed input (`None` when nothing was analysed).
    #[must_use]
    pub fn network_tolerance(&self) -> Option<Rational> {
        self.per_input
            .iter()
            .map(|t| t.robust_eps.unwrap_or(Rational::ZERO))
            .min()
    }
}

/// Runs the per-input weight-noise bisection over `indices` (typically
/// the correctly classified samples), fanned across
/// `config.input_threads` workers. The report is identical at any thread
/// count — each bisection is deterministic and inputs are independent.
///
/// # Panics
///
/// Panics if an index is out of range or widths mismatch.
#[must_use]
pub fn analyze(
    net: &Network<Rational>,
    data: &Dataset,
    indices: &[usize],
    config: &FaultAnalysisConfig,
) -> FaultReport {
    let checker = FaultChecker::new(net.clone(), config.checker.clone());
    let per_input = par::ordered_map(indices, config.input_threads, |&i| {
        let (sample, label) = (data.samples()[i].as_slice(), data.labels()[i]);
        let x = rational_input(sample);
        let (tolerance, _) = checker
            .tolerance(&x, label, &config.search)
            .expect("widths validated by caller");
        InputFaultTolerance {
            index: i,
            label,
            robust_eps: tolerance.robust_eps,
            first_failure: tolerance.first_failure,
        }
    });
    FaultReport {
        search: config.search,
        classes: data.class_counts().len(),
        per_input,
    }
}

/// One-off robustness verdicts of every indexed input under a fixed
/// fault model, as per-class `(robust, vulnerable, unknown)` counts —
/// the `--eps` spot check of `fannet faults`.
///
/// # Panics
///
/// Panics if an index is out of range or widths mismatch.
#[must_use]
pub fn class_verdicts(
    net: &Network<Rational>,
    data: &Dataset,
    indices: &[usize],
    model: &FaultModel,
    config: &FaultAnalysisConfig,
) -> Vec<(usize, usize, usize)> {
    let checker = FaultChecker::new(net.clone(), config.checker.clone());
    let verdicts = par::ordered_map(indices, config.input_threads, |&i| {
        let x = rational_input(data.samples()[i].as_slice());
        let (outcome, _) = checker
            .check(&x, data.labels()[i], model)
            .expect("widths validated by caller");
        (data.labels()[i], outcome)
    });
    let classes = data.class_counts().len();
    let mut counts = vec![(0, 0, 0); classes];
    for (label, outcome) in verdicts {
        let entry = &mut counts[label];
        match outcome {
            fannet_faults::FaultOutcome::Robust => entry.0 += 1,
            fannet_faults::FaultOutcome::Vulnerable(_) => entry.1 += 1,
            fannet_faults::FaultOutcome::Unknown => entry.2 += 1,
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use fannet_nn::{Activation, DenseLayer, Readout};
    use fannet_tensor::Matrix;

    fn r(n: i128) -> Rational {
        Rational::from_integer(n)
    }

    /// label 0 iff x0 ≥ x1 — fault tolerance has the closed form
    /// ε* = (x0 − x1)/(x0 + x1).
    fn comparator() -> Network<Rational> {
        Network::new(
            vec![DenseLayer::new(
                Matrix::from_rows(vec![vec![r(1), r(0)], vec![r(0), r(1)]]).unwrap(),
                vec![r(0), r(0)],
                Activation::Identity,
            )
            .unwrap()],
            Readout::MaxPool,
        )
        .unwrap()
    }

    fn dataset() -> Dataset {
        // Radii: (100, 82) → ε* ≈ 0.099; (100, 95) → ε* ≈ 0.0256;
        // (40, 100) label 1 → ε* = 60/140 ≈ 0.43 (beyond the grid).
        Dataset::new(
            vec![vec![100.0, 82.0], vec![100.0, 95.0], vec![40.0, 100.0]],
            vec![0, 0, 1],
            2,
        )
        .unwrap()
    }

    fn config() -> FaultAnalysisConfig {
        FaultAnalysisConfig {
            search: ToleranceSearch::new(1000, 200),
            input_threads: 1,
            ..FaultAnalysisConfig::default()
        }
    }

    #[test]
    fn per_input_values_match_the_closed_form() {
        let report = analyze(&comparator(), &dataset(), &[0, 1, 2], &config());
        assert_eq!(report.per_input.len(), 3);
        // Largest k/1000 ≤ (x0−x1)/(x0+x1): 98/1000 and 25/1000.
        assert_eq!(
            report.per_input[0].robust_eps,
            Some(Rational::new(98, 1000))
        );
        assert_eq!(
            report.per_input[1].robust_eps,
            Some(Rational::new(25, 1000))
        );
        // Label-1 input is robust through the whole grid (ε* ≈ 0.43).
        assert_eq!(
            report.per_input[2].robust_eps,
            Some(Rational::new(200, 1000))
        );
        assert_eq!(report.per_input[2].first_failure, None);
    }

    #[test]
    fn per_class_and_network_aggregation() {
        let report = analyze(&comparator(), &dataset(), &[0, 1, 2], &config());
        let per_class = report.per_class_tolerance();
        assert_eq!(per_class.len(), 2);
        assert_eq!(
            per_class[0],
            Some(Rational::new(25, 1000)),
            "min of class 0"
        );
        assert_eq!(per_class[1], Some(Rational::new(200, 1000)));
        assert_eq!(report.network_tolerance(), Some(Rational::new(25, 1000)));
    }

    #[test]
    fn report_is_thread_count_invariant() {
        let net = comparator();
        let data = dataset();
        let serial = analyze(&net, &data, &[0, 1, 2], &config());
        let parallel = analyze(
            &net,
            &data,
            &[0, 1, 2],
            &FaultAnalysisConfig {
                input_threads: 4,
                ..config()
            },
        );
        assert_eq!(serial, parallel);
    }

    #[test]
    fn class_verdict_counts() {
        let counts = class_verdicts(
            &comparator(),
            &dataset(),
            &[0, 1, 2],
            &FaultModel::WeightNoise {
                rel_eps: Rational::new(5, 100),
            },
            &config(),
        );
        // ε = 0.05: (100, 82) robust, (100, 95) vulnerable, label-1 robust.
        assert_eq!(counts, vec![(1, 1, 0), (1, 0, 0)]);
    }

    #[test]
    fn empty_classes_report_none() {
        let report = analyze(&comparator(), &dataset(), &[0], &config());
        assert_eq!(report.per_class_tolerance()[1], None);
    }
}
