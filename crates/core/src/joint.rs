//! Joint input×weight robustness analysis — the `joint_frontier`
//! section of the pipeline (DESIGN.md §12).
//!
//! The noise-tolerance analysis asks how much the *environment* may
//! perturb an input; the fault analysis asks how much the *hardware*
//! may drift. This section asks both at once: for each noise radius δ
//! of a fixed axis, the largest relative weight noise ε the joint
//! checker **certifies** every correctly-classified input of a class to
//! survive — the per-class (δ, ε) frontier. Probes the budgeted search
//! cannot decide count as failures, so every reported ε is a sound
//! lower bound, and the δ = 0 column reproduces the plain weight-fault
//! tolerance.

use fannet_data::Dataset;
use fannet_faults::{FaultCheckerConfig, JointChecker, ToleranceSearch};
use fannet_nn::Network;
use fannet_numeric::Rational;
use fannet_verify::bab::default_threads;
use serde::{Deserialize, Serialize};

use crate::behavior::rational_input;
use crate::par;

/// Knobs of the joint-frontier analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JointAnalysisConfig {
    /// The δ axis of the frontier (symmetric input-noise radii, %).
    pub deltas: Vec<i64>,
    /// The ε bisection grid per (input, δ) pair.
    pub search: ToleranceSearch,
    /// Per-probe checker configuration. The joint default deepens the
    /// split budget relative to the fault section's: splitting the
    /// input box *does* converge (it bottoms out at grid points), so
    /// the product search profits from depth the pure fault search
    /// would waste.
    pub checker: FaultCheckerConfig,
    /// Worker threads fanning the per-input bisections.
    pub input_threads: usize,
}

impl Default for JointAnalysisConfig {
    /// δ ∈ {0, 2, 5}, percent-resolution ε grid up to 1/4, 16-box /
    /// 24-deep joint searches, all cores.
    ///
    /// The box budget is deliberately small: on realistic networks the
    /// cascade's zonotope tier decides a joint probe at the root or the
    /// product space is too high-dimensional to converge within any
    /// affordable budget, so a deep search mostly burns time on probes
    /// that end `Unknown` anyway (the same trade the fault section
    /// makes). Raise `checker.max_boxes` for small networks where
    /// refinement genuinely closes queries.
    fn default() -> Self {
        JointAnalysisConfig {
            deltas: vec![0, 2, 5],
            search: ToleranceSearch::new(100, 25),
            checker: FaultCheckerConfig::default()
                .with_max_boxes(16)
                .with_max_depth(24),
            input_threads: default_threads(),
        }
    }
}

/// Certified joint frontier of one input: one ε per δ of the axis.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InputJointFrontier {
    /// Index of the input in the analysed dataset.
    pub index: usize,
    /// The input's true label.
    pub label: usize,
    /// Per-δ certified ε (aligned with the config's `deltas`); `None`
    /// when even ε = 0 is not certified at that δ (the input noise
    /// alone flips the label, or the search could not decide).
    pub per_delta: Vec<Option<Rational>>,
}

/// Dataset-level joint-frontier report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JointFrontierReport {
    /// The δ axis.
    pub deltas: Vec<i64>,
    /// The ε bisection grid used.
    pub search: ToleranceSearch,
    /// Number of classes of the analysed dataset.
    pub classes: usize,
    /// Per-input certified frontiers.
    pub per_input: Vec<InputJointFrontier>,
}

impl JointFrontierReport {
    /// Per-class frontier: for each class, the per-δ minimum certified
    /// ε over the class's analysed inputs (`None` at a δ where any
    /// input of the class failed at ε = 0, or for classes with no
    /// analysed inputs). This is the table `fannet joint` prints.
    #[must_use]
    pub fn per_class_frontier(&self) -> Vec<Vec<Option<Rational>>> {
        (0..self.classes)
            .map(|class| {
                (0..self.deltas.len())
                    .map(|d| {
                        let mut worst: Option<Option<Rational>> = None;
                        for input in self.per_input.iter().filter(|t| t.label == class) {
                            let eps = input.per_delta[d];
                            worst = Some(match worst {
                                None => eps,
                                Some(None) => None,
                                Some(Some(w)) => eps.map(|e| e.min(w)),
                            });
                        }
                        worst.flatten()
                    })
                    .collect()
            })
            .collect()
    }

    /// The network-level frontier: the per-δ minimum certified ε over
    /// every analysed input.
    #[must_use]
    pub fn network_frontier(&self) -> Vec<Option<Rational>> {
        (0..self.deltas.len())
            .map(|d| {
                let mut worst: Option<Option<Rational>> = None;
                for input in &self.per_input {
                    let eps = input.per_delta[d];
                    worst = Some(match worst {
                        None => eps,
                        Some(None) => None,
                        Some(Some(w)) => eps.map(|e| e.min(w)),
                    });
                }
                worst.flatten()
            })
            .collect()
    }
}

/// Runs the per-input joint bisections over `indices` (typically the
/// correctly classified samples), fanned across `config.input_threads`
/// workers. The report is identical at any thread count — each
/// bisection is deterministic and inputs are independent.
///
/// # Panics
///
/// Panics if an index is out of range, widths mismatch, or a δ is
/// outside `[0, 100]`.
#[must_use]
pub fn analyze(
    net: &Network<Rational>,
    data: &Dataset,
    indices: &[usize],
    config: &JointAnalysisConfig,
) -> JointFrontierReport {
    let checker = JointChecker::new(net.clone(), config.checker.clone());
    let per_input = par::ordered_map(indices, config.input_threads, |&i| {
        let (sample, label) = (data.samples()[i].as_slice(), data.labels()[i]);
        let x = rational_input(sample);
        let per_delta = config
            .deltas
            .iter()
            .map(|&delta| {
                let (tolerance, _) = checker
                    .tolerance(&x, label, delta, &config.search)
                    .expect("widths validated by caller");
                tolerance.robust_eps
            })
            .collect();
        InputJointFrontier {
            index: i,
            label,
            per_delta,
        }
    });
    JointFrontierReport {
        deltas: config.deltas.clone(),
        search: config.search,
        classes: data.class_counts().len(),
        per_input,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fannet_nn::{Activation, DenseLayer, Readout};
    use fannet_tensor::Matrix;

    fn r(n: i128) -> Rational {
        Rational::from_integer(n)
    }

    /// label 0 iff x0 ≥ x1 — the joint frontier has the closed form
    /// ε*(δ) from x0(1−d)(1−ε) ≥ x1(1+d)(1+ε).
    fn comparator() -> Network<Rational> {
        Network::new(
            vec![DenseLayer::new(
                Matrix::from_rows(vec![vec![r(1), r(0)], vec![r(0), r(1)]]).unwrap(),
                vec![r(0), r(0)],
                Activation::Identity,
            )
            .unwrap()],
            Readout::MaxPool,
        )
        .unwrap()
    }

    fn dataset() -> Dataset {
        Dataset::new(vec![vec![100.0, 82.0], vec![40.0, 100.0]], vec![0, 1], 2).unwrap()
    }

    fn config() -> JointAnalysisConfig {
        JointAnalysisConfig {
            input_threads: 1,
            ..JointAnalysisConfig::default()
        }
    }

    #[test]
    fn frontier_is_monotone_and_anchored_at_delta_zero() {
        let report = analyze(&comparator(), &dataset(), &[0, 1], &config());
        assert_eq!(report.per_input.len(), 2);
        for input in &report.per_input {
            assert_eq!(input.per_delta.len(), 3);
            // Monotone in δ: more input noise never certifies more ε.
            for w in input.per_delta.windows(2) {
                match (&w[0], &w[1]) {
                    (Some(a), Some(b)) => assert!(b <= a, "{report:?}"),
                    (None, Some(_)) => panic!("frontier must not recover: {report:?}"),
                    _ => {}
                }
            }
        }
        // δ = 0 column equals the plain fault tolerance (closed form:
        // ε* = 18/182 ≈ 0.0989 → certified 9/100 on the /100 grid).
        assert_eq!(
            report.per_input[0].per_delta[0],
            Some(Rational::new(9, 100))
        );
        // The wide-margin input saturates the grid at every δ.
        assert_eq!(
            report.per_input[1].per_delta[2],
            Some(Rational::new(25, 100))
        );
    }

    #[test]
    fn per_class_and_network_aggregation() {
        let report = analyze(&comparator(), &dataset(), &[0, 1], &config());
        let per_class = report.per_class_frontier();
        assert_eq!(per_class.len(), 2);
        assert_eq!(per_class[0], report.per_input[0].per_delta);
        assert_eq!(per_class[1], report.per_input[1].per_delta);
        let network = report.network_frontier();
        for (d, eps) in network.iter().enumerate() {
            assert_eq!(
                *eps,
                per_class[0][d].min(per_class[1][d]),
                "network = per-δ min over classes"
            );
        }
    }

    #[test]
    fn empty_classes_report_none_and_results_are_thread_invariant() {
        let net = comparator();
        let data = dataset();
        let serial = analyze(&net, &data, &[0], &config());
        assert!(serial.per_class_frontier()[1].iter().all(Option::is_none));
        let parallel = analyze(
            &net,
            &data,
            &[0],
            &JointAnalysisConfig {
                input_threads: 4,
                ..config()
            },
        );
        assert_eq!(serial, parallel);
    }
}
