//! Behaviour extraction and model validation (property **P1**).
//!
//! Before any noise analysis, FANNet validates that the translated model
//! reproduces the trained network's behaviour: the model's computed output
//! class `OC` must equal the true label `Sx` on the functional test set
//! (paper Fig. 2, "Validation of Translated SMV Model"). In this
//! reproduction the "translated model" is the exactly-quantized rational
//! network, so P1 additionally certifies that quantization did not move any
//! test sample across the decision boundary.

use fannet_data::Dataset;
use fannet_nn::Network;
use fannet_numeric::Rational;
use serde::{Deserialize, Serialize};

/// Converts an `f64` feature vector (integer-valued gene expressions) to
/// exact rationals.
///
/// # Panics
///
/// Panics if a value is not finite.
#[must_use]
pub fn rational_input(sample: &[f64]) -> Vec<Rational> {
    sample
        .iter()
        .map(|&v| {
            Rational::from_f64_exact(v).unwrap_or_else(|| panic!("non-finite feature value {v}"))
        })
        .collect()
}

/// Outcome of the P1 validation pass over a labelled dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ValidationReport {
    /// Samples checked.
    pub total: usize,
    /// Samples whose computed class equals the true label.
    pub correct: usize,
    /// Indices (into the dataset) of misclassified samples.
    pub misclassified: Vec<usize>,
    /// Samples where the exact model disagrees with the `f64` reference
    /// network (must be 0 for a faithful translation).
    pub float_disagreements: usize,
}

impl ValidationReport {
    /// Classification accuracy in `[0, 1]`.
    #[must_use]
    pub fn accuracy(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.correct as f64 / self.total as f64
        }
    }

    /// `true` if the exact model matched the float reference everywhere —
    /// the P1 pass/fail criterion for the *translation* (independent of
    /// the network's own test accuracy).
    #[must_use]
    pub fn translation_faithful(&self) -> bool {
        self.float_disagreements == 0
    }
}

/// Runs P1: classifies every sample with the exact rational model, compares
/// against the true labels and against the `f64` reference network.
///
/// # Panics
///
/// Panics if dataset width differs from the networks' input width, or the
/// two networks have different shapes.
#[must_use]
pub fn validate(
    exact: &Network<Rational>,
    reference: &Network<f64>,
    data: &Dataset,
) -> ValidationReport {
    assert_eq!(
        exact.inputs(),
        data.features(),
        "dataset width must match the network"
    );
    assert_eq!(
        exact.topology(),
        reference.topology(),
        "exact and reference networks must share a topology"
    );
    let mut report = ValidationReport {
        total: data.len(),
        correct: 0,
        misclassified: Vec::new(),
        float_disagreements: 0,
    };
    for (i, (sample, label)) in data.iter().enumerate() {
        let qx = rational_input(sample);
        let predicted = exact.classify(&qx).expect("width checked above");
        let float_predicted = reference.classify(sample).expect("width checked above");
        if predicted != float_predicted {
            report.float_disagreements += 1;
        }
        if predicted == label {
            report.correct += 1;
        } else {
            report.misclassified.push(i);
        }
    }
    report
}

/// The indices of correctly classified samples — the inputs the paper's
/// noise analysis quantifies over ("for fair analysis of the impact of
/// noise, only the correctly classified inputs are considered", Fig. 4).
#[must_use]
pub fn correctly_classified(exact: &Network<Rational>, data: &Dataset) -> Vec<usize> {
    data.iter()
        .enumerate()
        .filter(|(_, (sample, label))| {
            let qx = rational_input(sample);
            exact.classify(&qx).expect("widths validated upstream") == *label
        })
        .map(|(i, _)| i)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fannet_nn::quantize;
    use fannet_nn::{init, train, Activation};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn trained_pair() -> (Network<Rational>, Network<f64>, Dataset) {
        let xs = vec![
            vec![10.0, 1.0],
            vec![12.0, 0.0],
            vec![9.0, 2.0],
            vec![1.0, 11.0],
            vec![0.0, 10.0],
            vec![2.0, 12.0],
        ];
        let ys = vec![0, 0, 0, 1, 1, 1];
        let mut net = init::fresh_network(
            &mut StdRng::seed_from_u64(21),
            &[2, 6, 2],
            Activation::ReLU,
            init::Init::XavierUniform,
        );
        train::train(&mut net, &xs, &ys, &train::TrainConfig::paper()).unwrap();
        let exact = quantize::to_rational_default(&net);
        let data = Dataset::new(xs, ys, 2).unwrap();
        (exact, net, data)
    }

    #[test]
    fn p1_passes_on_training_data() {
        let (exact, reference, data) = trained_pair();
        let report = validate(&exact, &reference, &data);
        assert_eq!(report.total, 6);
        assert_eq!(
            report.correct, 6,
            "misclassified: {:?}",
            report.misclassified
        );
        assert_eq!(report.accuracy(), 1.0);
        assert!(report.translation_faithful());
        assert!(report.misclassified.is_empty());
    }

    #[test]
    fn misclassifications_are_indexed() {
        let (exact, reference, _) = trained_pair();
        // Deliberately wrong labels: everything flips.
        let flipped = Dataset::new(vec![vec![10.0, 1.0], vec![1.0, 11.0]], vec![1, 0], 2).unwrap();
        let report = validate(&exact, &reference, &flipped);
        assert_eq!(report.correct, 0);
        assert_eq!(report.misclassified, vec![0, 1]);
        assert_eq!(report.accuracy(), 0.0);
        // Translation is still faithful even though labels are wrong.
        assert!(report.translation_faithful());
    }

    #[test]
    fn correctly_classified_filters() {
        let (exact, _, data) = trained_pair();
        let ok = correctly_classified(&exact, &data);
        assert_eq!(ok, vec![0, 1, 2, 3, 4, 5]);
        let mixed = Dataset::new(
            vec![vec![10.0, 1.0], vec![12.0, 0.0]],
            vec![0, 1], // second label wrong
            2,
        )
        .unwrap();
        assert_eq!(correctly_classified(&exact, &mixed), vec![0]);
    }

    #[test]
    fn rational_input_is_exact() {
        let q = rational_input(&[3.0, -0.5]);
        assert_eq!(q[0], Rational::from_integer(3));
        assert_eq!(q[1], Rational::new(-1, 2));
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn rational_input_rejects_nan() {
        let _ = rational_input(&[f64::NAN]);
    }
}
