//! Classification-boundary estimation (paper §V-C.2).
//!
//! Fig. 4 of the paper observes that "a few inputs among the dataset (i.e.
//! inputs closer to the classification boundary) were observed to be highly
//! susceptible to input noise", while other inputs survive even ±50 %: the
//! per-input robustness radius is a proxy for distance to the decision
//! boundary in the input hyperspace. This module joins the radii from the
//! tolerance analysis with the exact zero-noise output margin, giving two
//! independent boundary-proximity measures whose agreement the tests (and
//! EXPERIMENTS.md) check.

use fannet_data::Dataset;
use fannet_nn::Network;
use fannet_numeric::{Rational, Scalar};
use serde::{Deserialize, Serialize};

use crate::behavior::rational_input;
use crate::tolerance::ToleranceReport;

/// Boundary-proximity record for one input.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BoundaryPoint {
    /// Index of the input in the analysed dataset.
    pub index: usize,
    /// True label.
    pub label: usize,
    /// Robustness radius (`None` = robust through the probed range).
    pub radius: Option<i64>,
    /// Exact output margin at zero noise (as `f64` for reporting; the sign
    /// is decided exactly before conversion).
    pub margin: f64,
}

/// The boundary-analysis report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BoundaryReport {
    /// One record per analysed input, in the tolerance report's order.
    pub points: Vec<BoundaryPoint>,
    /// Radius at or below which an input counts as "near the boundary".
    pub near_threshold: i64,
}

impl BoundaryReport {
    /// Inputs near the boundary (radius ≤ threshold).
    #[must_use]
    pub fn near_boundary(&self) -> Vec<usize> {
        self.points
            .iter()
            .filter(|p| p.radius.is_some_and(|r| r <= self.near_threshold))
            .map(|p| p.index)
            .collect()
    }

    /// Inputs far from the boundary (no counterexample in the whole probed
    /// range).
    #[must_use]
    pub fn far_from_boundary(&self) -> Vec<usize> {
        self.points
            .iter()
            .filter(|p| p.radius.is_none())
            .map(|p| p.index)
            .collect()
    }

    /// Spearman-like rank agreement between margin and radius: fraction of
    /// comparable input pairs where the larger margin also has the larger
    /// radius (robust inputs count as radius `+∞`). `1.0` means the two
    /// boundary-proximity measures order the inputs identically.
    #[must_use]
    pub fn margin_radius_concordance(&self) -> f64 {
        let mut agree = 0usize;
        let mut total = 0usize;
        for (i, a) in self.points.iter().enumerate() {
            for b in &self.points[i + 1..] {
                let ra = a.radius.unwrap_or(i64::MAX);
                let rb = b.radius.unwrap_or(i64::MAX);
                if ra == rb || a.margin == b.margin {
                    continue;
                }
                total += 1;
                if (a.margin > b.margin) == (ra > rb) {
                    agree += 1;
                }
            }
        }
        if total == 0 {
            1.0
        } else {
            agree as f64 / total as f64
        }
    }
}

/// Exact zero-noise margin of one input: `out[label] − max(out[other])`,
/// computed in rational arithmetic and converted to `f64` for reporting.
///
/// # Panics
///
/// Panics if widths mismatch or `label` is out of range.
#[must_use]
pub fn exact_margin(net: &Network<Rational>, x: &[Rational], label: usize) -> f64 {
    net.margin(x, label)
        .expect("width validated by caller")
        .to_f64()
}

/// Builds the boundary report by joining a [`ToleranceReport`] with exact
/// zero-noise margins.
///
/// # Panics
///
/// Panics if the tolerance report's indices fall outside `data`.
#[must_use]
pub fn analyze(
    net: &Network<Rational>,
    data: &Dataset,
    tolerance: &ToleranceReport,
    near_threshold: i64,
) -> BoundaryReport {
    let points = tolerance
        .per_input
        .iter()
        .map(|r| {
            let x = rational_input(&data.samples()[r.index]);
            BoundaryPoint {
                index: r.index,
                label: r.label,
                radius: r.radius,
                margin: exact_margin(net, &x, r.label),
            }
        })
        .collect();
    BoundaryReport {
        points,
        near_threshold,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tolerance;
    use fannet_nn::{Activation, DenseLayer, Readout};
    use fannet_tensor::Matrix;

    fn r(n: i128) -> Rational {
        Rational::from_integer(n)
    }

    fn comparator() -> Network<Rational> {
        Network::new(
            vec![DenseLayer::new(
                Matrix::from_rows(vec![vec![r(1), r(0)], vec![r(0), r(1)]]).unwrap(),
                vec![r(0), r(0)],
                Activation::Identity,
            )
            .unwrap()],
            Readout::MaxPool,
        )
        .unwrap()
    }

    fn dataset() -> Dataset {
        // Margins: 2, 18, 60 — increasing distance from the boundary.
        Dataset::new(
            vec![vec![100.0, 98.0], vec![100.0, 82.0], vec![100.0, 40.0]],
            vec![0, 0, 0],
            2,
        )
        .unwrap()
    }

    #[test]
    fn margins_are_exact() {
        let net = comparator();
        assert_eq!(exact_margin(&net, &[r(100), r(98)], 0), 2.0);
        assert_eq!(exact_margin(&net, &[r(100), r(98)], 1), -2.0);
    }

    #[test]
    fn near_and_far_partition() {
        let net = comparator();
        let data = dataset();
        let tol = tolerance::analyze(&net, &data, &[0, 1, 2], 20);
        let report = analyze(&net, &data, &tol, 5);
        assert_eq!(report.near_boundary(), vec![0], "margin-2 input is near");
        assert_eq!(
            report.far_from_boundary(),
            vec![2],
            "margin-60 input never flips at ±20"
        );
        assert_eq!(report.points.len(), 3);
    }

    #[test]
    fn margin_and_radius_agree_for_linear_net() {
        // For this comparator the radius is a monotone function of the
        // margin, so concordance must be perfect.
        let net = comparator();
        let data = dataset();
        let tol = tolerance::analyze(&net, &data, &[0, 1, 2], 20);
        let report = analyze(&net, &data, &tol, 5);
        assert_eq!(report.margin_radius_concordance(), 1.0);
    }

    #[test]
    fn empty_report_concordance_is_one() {
        let report = BoundaryReport {
            points: vec![],
            near_threshold: 5,
        };
        assert_eq!(report.margin_radius_concordance(), 1.0);
        assert!(report.near_boundary().is_empty());
        assert!(report.far_from_boundary().is_empty());
    }
}
