//! Per-input fan-out: the dataset-level parallel layer (DESIGN.md §7).
//!
//! The analyses in this crate are embarrassingly parallel across inputs —
//! every tolerance binary search and every P3 extraction touches one input
//! only. [`ordered_map`] fans such per-input work across scoped worker
//! threads while keeping results in input order, so parallel reports are
//! byte-identical to serial ones.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Maps `f` over `items` with `threads` workers, preserving order.
///
/// Work is claimed item-by-item from an atomic cursor (dynamic load
/// balancing: robustness radii vary wildly between near-boundary and
/// robust inputs). With `threads <= 1` this degenerates to a plain map
/// with no thread or lock overhead.
///
/// # Panics
///
/// Propagates panics from `f` (the scope joins all workers first).
pub fn ordered_map<T: Sync, R: Send>(
    items: &[T],
    threads: usize,
    f: impl Fn(&T) -> R + Sync,
) -> Vec<R> {
    if threads <= 1 || items.len() <= 1 {
        return items.iter().map(f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    let workers = threads.min(items.len());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                *slots[i].lock().expect("slot mutex poisoned") = Some(f(item));
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("slot mutex poisoned")
                .expect("every index was claimed exactly once")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_and_content() {
        let items: Vec<usize> = (0..97).collect();
        let serial = ordered_map(&items, 1, |&v| v * v);
        let parallel = ordered_map(&items, 8, |&v| v * v);
        assert_eq!(serial, parallel);
        assert_eq!(parallel[10], 100);
    }

    #[test]
    fn handles_edge_sizes() {
        assert_eq!(ordered_map(&[] as &[u32], 4, |&v| v), Vec::<u32>::new());
        assert_eq!(ordered_map(&[7u32], 4, |&v| v + 1), vec![8]);
        // More threads than items.
        assert_eq!(ordered_map(&[1u32, 2], 16, |&v| v), vec![1, 2]);
    }

    #[test]
    fn uneven_work_is_balanced() {
        // Slow items early, fast late: dynamic claiming must finish them all.
        let items: Vec<u64> = (0..32).collect();
        let out = ordered_map(&items, 4, |&v| {
            if v < 4 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            v * 2
        });
        assert_eq!(out, items.iter().map(|v| v * 2).collect::<Vec<_>>());
    }
}
