//! Interval-lane matrices: the batched activation layout of the float
//! screening tier (DESIGN.md §16).
//!
//! A [`LaneMatrix`] stores one row per neuron and one *lane* per box of
//! a batch, as two contiguous row-major `f64` planes (`lo` and `hi`
//! endpoints). A batched layer pass then sweeps each weight row once,
//! streaming `lanes` accumulators through the cache instead of
//! re-walking the weight matrix once per box — the memory-layout win
//! behind `BatchFloatShadow`. Every lane applies the exact scalar
//! [`FloatInterval`] operation sequence (see
//! [`fannet_numeric::lanes`]), so batched results are bitwise equal to
//! the scalar tier's.

use fannet_numeric::{lanes, FloatInterval};

/// A `rows × lanes` matrix of `f64` intervals stored as two contiguous
/// row-major endpoint planes.
///
/// Row `r` holds the interval of quantity `r` (e.g. activation `r` of a
/// layer) for every box of the batch; lane `k` holds box `k`'s value.
#[derive(Debug, Clone, Default)]
pub struct LaneMatrix {
    lo: Vec<f64>,
    hi: Vec<f64>,
    rows: usize,
    lanes: usize,
}

impl LaneMatrix {
    /// Reshapes to `rows × lanes`, reusing the existing allocation when
    /// it is large enough. Contents are unspecified until written.
    pub fn resize(&mut self, rows: usize, lanes: usize) {
        let len = rows * lanes;
        self.lo.resize(len, 0.0);
        self.hi.resize(len, 0.0);
        self.rows = rows;
        self.lanes = lanes;
    }

    /// Number of rows (quantities).
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of lanes (boxes in the batch).
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// The lower-endpoint lanes of row `r`.
    #[must_use]
    pub fn row_lo(&self, r: usize) -> &[f64] {
        &self.lo[r * self.lanes..(r + 1) * self.lanes]
    }

    /// The upper-endpoint lanes of row `r`.
    #[must_use]
    pub fn row_hi(&self, r: usize) -> &[f64] {
        &self.hi[r * self.lanes..(r + 1) * self.lanes]
    }

    /// Mutable access to both endpoint planes of row `r`.
    pub fn row_mut(&mut self, r: usize) -> (&mut [f64], &mut [f64]) {
        let range = r * self.lanes..(r + 1) * self.lanes;
        (&mut self.lo[range.clone()], &mut self.hi[range])
    }

    /// The interval at row `r`, lane `k`.
    #[must_use]
    pub fn get(&self, r: usize, k: usize) -> FloatInterval {
        FloatInterval::new(self.lo[r * self.lanes + k], self.hi[r * self.lanes + k])
    }

    /// Writes the interval at row `r`, lane `k`.
    pub fn set(&mut self, r: usize, k: usize, v: FloatInterval) {
        self.lo[r * self.lanes + k] = v.lo();
        self.hi[r * self.lanes + k] = v.hi();
    }

    /// Swaps contents with `other` (the double-buffer idiom of layer
    /// propagation).
    pub fn swap(&mut self, other: &mut LaneMatrix) {
        std::mem::swap(self, other);
    }
}

/// One batched affine layer pass: for every output row `r`,
/// `out[r] = bias[r] + Σ_c weights[r·cols + c] · acts[c]`, each lane
/// running the scalar `z = z.add(&a.mul_interval(&w))` chain bit for
/// bit. `weights` is row-major `rows × acts.rows()`.
///
/// # Panics
///
/// Panics if `weights.len() != biases.len() * acts.rows()` or `out` was
/// not resized to `biases.len() × acts.lanes()`.
pub fn affine_lane_pass(
    weights: &[FloatInterval],
    biases: &[FloatInterval],
    acts: &LaneMatrix,
    out: &mut LaneMatrix,
) {
    let cols = acts.rows();
    let rows = biases.len();
    assert_eq!(weights.len(), rows * cols, "weight matrix shape mismatch");
    assert_eq!(
        (out.rows, out.lanes),
        (rows, acts.lanes),
        "output lane matrix shape mismatch"
    );
    for r in 0..rows {
        let (z_lo, z_hi) = out.row_mut(r);
        lanes::fill_broadcast(z_lo, z_hi, biases[r]);
        for c in 0..cols {
            let a_lo = &acts.lo[c * acts.lanes..(c + 1) * acts.lanes];
            let a_hi = &acts.hi[c * acts.lanes..(c + 1) * acts.lanes];
            lanes::mul_add_accumulate(z_lo, z_hi, a_lo, a_hi, weights[r * cols + c]);
        }
    }
}

/// Lane-wise ReLU over every row of `m`, bitwise identical to
/// [`FloatInterval::relu`] per entry.
pub fn relu_lane_pass(m: &mut LaneMatrix) {
    lanes::relu_lanes(&mut m.lo, &mut m.hi);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits(v: FloatInterval) -> (u64, u64) {
        (v.lo().to_bits(), v.hi().to_bits())
    }

    #[test]
    fn affine_lane_pass_matches_per_lane_scalar_chain() {
        // 3 outputs × 2 inputs, 4 lanes of assorted boxes.
        let weights = vec![
            FloatInterval::new(0.5, 0.5),
            FloatInterval::new(-1.0, -1.0),
            FloatInterval::new(2.0, 2.5),
            FloatInterval::ZERO,
            FloatInterval::new(-0.125, 0.25),
            FloatInterval::EVERYTHING,
        ];
        let biases = vec![
            FloatInterval::new(0.1, 0.1),
            FloatInterval::new(-3.0, 3.0),
            FloatInterval::ZERO,
        ];
        let inputs = [
            [FloatInterval::new(1.0, 2.0), FloatInterval::new(-0.5, 0.5)],
            [FloatInterval::new(-4.0, -3.0), FloatInterval::ZERO],
            [FloatInterval::EVERYTHING, FloatInterval::new(0.3, 0.7)],
            [
                FloatInterval::new(f64::MAX / 2.0, f64::MAX),
                FloatInterval::new(1e-300, 2e-300),
            ],
        ];

        let mut acts = LaneMatrix::default();
        acts.resize(2, inputs.len());
        for (k, lanes) in inputs.iter().enumerate() {
            for (c, v) in lanes.iter().enumerate() {
                acts.set(c, k, *v);
            }
        }
        let mut out = LaneMatrix::default();
        out.resize(3, inputs.len());
        affine_lane_pass(&weights, &biases, &acts, &mut out);
        relu_lane_pass(&mut out);

        for (k, lanes) in inputs.iter().enumerate() {
            for r in 0..3 {
                let mut z = biases[r];
                for (c, a) in lanes.iter().enumerate() {
                    z = z.add(&a.mul_interval(&weights[r * 2 + c]));
                }
                z = z.relu();
                assert_eq!(bits(out.get(r, k)), bits(z), "row {r}, lane {k}");
            }
        }
    }

    #[test]
    fn resize_reuses_and_reshapes() {
        let mut m = LaneMatrix::default();
        m.resize(4, 3);
        assert_eq!((m.rows(), m.lanes()), (4, 3));
        m.set(3, 2, FloatInterval::new(-1.0, 1.0));
        assert_eq!(m.get(3, 2), FloatInterval::new(-1.0, 1.0));
        m.resize(2, 2);
        assert_eq!((m.rows(), m.lanes()), (2, 2));
        assert_eq!(m.row_lo(1).len(), 2);
        assert_eq!(m.row_hi(1).len(), 2);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn wrong_weight_shape_panics() {
        let acts = {
            let mut m = LaneMatrix::default();
            m.resize(2, 1);
            m
        };
        let mut out = LaneMatrix::default();
        out.resize(1, 1);
        affine_lane_pass(
            &[FloatInterval::ZERO],
            &[FloatInterval::ZERO],
            &acts,
            &mut out,
        );
    }
}
