//! Dense row-major matrices generic over [`Scalar`].
//!
//! The FANNet case-study networks are tiny (5–20–2), so this module favours
//! clarity and checked shapes over cache blocking. Everything is generic
//! over the scalar type so the same code path serves `f64` training,
//! exact-`Rational` verification and `Fixed` deployment simulation.

use std::fmt;

use fannet_numeric::Scalar;
use serde::{Deserialize, Serialize};

/// Error returned when two shapes are incompatible for an operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    /// Human-readable description of the mismatch.
    message: String,
}

impl ShapeError {
    /// Creates a shape error with a human-readable description.
    ///
    /// Public so that downstream crates (layers, networks) can report their
    /// own shape mismatches through the same error type.
    #[must_use]
    pub fn new(message: impl Into<String>) -> Self {
        ShapeError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shape mismatch: {}", self.message)
    }
}

impl std::error::Error for ShapeError {}

/// A dense `rows × cols` matrix stored row-major.
///
/// # Examples
///
/// ```
/// use fannet_tensor::Matrix;
/// let m = Matrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]])?;
/// assert_eq!(m.rows(), 2);
/// assert_eq!(m[(1, 0)], 3.0);
/// let v = m.matvec(&[1.0, 1.0])?;
/// assert_eq!(v, vec![3.0, 7.0]);
/// # Ok::<(), fannet_tensor::ShapeError>(())
/// ```
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix<S> {
    rows: usize,
    cols: usize,
    data: Vec<S>,
}

impl<S: Scalar> Matrix<S> {
    /// Creates a matrix of zeros.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![S::zero(); rows * cols],
        }
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<S>) -> Result<Self, ShapeError> {
        if data.len() != rows * cols {
            return Err(ShapeError::new(format!(
                "buffer of length {} cannot form a {rows}x{cols} matrix",
                data.len()
            )));
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Creates a matrix from nested rows.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the rows are ragged or empty.
    pub fn from_rows(rows: Vec<Vec<S>>) -> Result<Self, ShapeError> {
        let nrows = rows.len();
        if nrows == 0 {
            return Err(ShapeError::new("matrix must have at least one row"));
        }
        let ncols = rows[0].len();
        if ncols == 0 {
            return Err(ShapeError::new("matrix must have at least one column"));
        }
        let mut data = Vec::with_capacity(nrows * ncols);
        for (i, row) in rows.into_iter().enumerate() {
            if row.len() != ncols {
                return Err(ShapeError::new(format!(
                    "row {i} has {} entries, expected {ncols}",
                    row.len()
                )));
            }
            data.extend(row);
        }
        Ok(Matrix {
            rows: nrows,
            cols: ncols,
            data,
        })
    }

    /// The identity matrix of size `n × n`.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = S::one();
        }
        m
    }

    /// Number of rows.
    #[must_use]
    pub const fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub const fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[must_use]
    pub const fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Borrow of the flat row-major buffer.
    #[must_use]
    pub fn as_slice(&self) -> &[S] {
        &self.data
    }

    /// A borrowed view of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    #[must_use]
    pub fn row(&self, r: usize) -> &[S] {
        assert!(
            r < self.rows,
            "row index {r} out of bounds for {} rows",
            self.rows
        );
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Element access returning `None` when out of bounds.
    #[must_use]
    pub fn get(&self, r: usize, c: usize) -> Option<&S> {
        if r < self.rows && c < self.cols {
            Some(&self.data[r * self.cols + c])
        } else {
            None
        }
    }

    /// Matrix–vector product `self · x`.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `x.len() != self.cols()`.
    pub fn matvec(&self, x: &[S]) -> Result<Vec<S>, ShapeError> {
        if x.len() != self.cols {
            return Err(ShapeError::new(format!(
                "matvec: vector of length {} against {}x{} matrix",
                x.len(),
                self.rows,
                self.cols
            )));
        }
        Ok((0..self.rows)
            .map(|r| {
                self.row(r)
                    .iter()
                    .zip(x)
                    .fold(S::zero(), |acc, (a, b)| acc + *a * *b)
            })
            .collect())
    }

    /// Matrix product `self · rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &Matrix<S>) -> Result<Matrix<S>, ShapeError> {
        if self.cols != rhs.rows {
            return Err(ShapeError::new(format!(
                "matmul: {}x{} by {}x{}",
                self.rows, self.cols, rhs.rows, rhs.cols
            )));
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self.data[i * self.cols + k];
                for j in 0..rhs.cols {
                    out.data[i * rhs.cols + j] =
                        out.data[i * rhs.cols + j] + aik * rhs.data[k * rhs.cols + j];
                }
            }
        }
        Ok(out)
    }

    /// The transpose.
    #[must_use]
    pub fn transpose(&self) -> Matrix<S> {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Applies `f` elementwise, producing a matrix over a possibly different
    /// scalar type (used e.g. to quantize an `f64` weight matrix to
    /// `Rational`).
    #[must_use]
    pub fn map<T: Scalar>(&self, mut f: impl FnMut(&S) -> T) -> Matrix<T> {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(&mut f).collect(),
        }
    }

    /// Elementwise addition.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if shapes differ.
    pub fn add(&self, rhs: &Matrix<S>) -> Result<Matrix<S>, ShapeError> {
        if self.shape() != rhs.shape() {
            return Err(ShapeError::new(format!(
                "add: {}x{} by {}x{}",
                self.rows, self.cols, rhs.rows, rhs.cols
            )));
        }
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| *a + *b)
                .collect(),
        })
    }

    /// Multiplies every element by `k`.
    #[must_use]
    pub fn scale(&self, k: S) -> Matrix<S> {
        self.map(|v| *v * k)
    }

    /// Outer product `a ⊗ b` of two vectors, an `a.len() × b.len()` matrix.
    #[must_use]
    pub fn outer(a: &[S], b: &[S]) -> Matrix<S> {
        let mut out = Matrix::zeros(a.len(), b.len());
        for (i, &ai) in a.iter().enumerate() {
            for (j, &bj) in b.iter().enumerate() {
                out.data[i * b.len() + j] = ai * bj;
            }
        }
        out
    }

    /// Frobenius norm as `f64` (reporting only).
    #[must_use]
    pub fn frobenius_norm(&self) -> f64 {
        self.data
            .iter()
            .map(|v| {
                let f = v.to_f64();
                f * f
            })
            .sum::<f64>()
            .sqrt()
    }
}

impl<S: Scalar> std::ops::Index<(usize, usize)> for Matrix<S> {
    type Output = S;
    fn index(&self, (r, c): (usize, usize)) -> &S {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r}, {c}) out of bounds for {}x{} matrix",
            self.rows,
            self.cols
        );
        &self.data[r * self.cols + c]
    }
}

impl<S: Scalar> std::ops::IndexMut<(usize, usize)> for Matrix<S> {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut S {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r}, {c}) out of bounds for {}x{} matrix",
            self.rows,
            self.cols
        );
        &mut self.data[r * self.cols + c]
    }
}

impl<S: fmt::Debug> fmt::Debug for Matrix<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows {
            write!(f, "  [")?;
            for c in 0..self.cols {
                if c > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:?}", self.data[r * self.cols + c])?;
            }
            writeln!(f, "]")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fannet_numeric::Rational;

    fn m2x2() -> Matrix<f64> {
        Matrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap()
    }

    #[test]
    fn construction_shapes() {
        let m = m2x2();
        assert_eq!(m.shape(), (2, 2));
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 2);
        assert_eq!(m.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let err = Matrix::from_rows(vec![vec![1.0, 2.0], vec![3.0]]).unwrap_err();
        assert!(err.to_string().contains("row 1"));
        assert!(Matrix::<f64>::from_rows(vec![]).is_err());
        assert!(Matrix::<f64>::from_rows(vec![vec![]]).is_err());
    }

    #[test]
    fn indexing() {
        let mut m = m2x2();
        assert_eq!(m[(0, 1)], 2.0);
        m[(0, 1)] = 9.0;
        assert_eq!(m[(0, 1)], 9.0);
        assert_eq!(m.get(5, 5), None);
        assert_eq!(m.get(1, 1), Some(&4.0));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn index_out_of_bounds_panics() {
        let _ = m2x2()[(2, 0)];
    }

    #[test]
    fn matvec_matches_hand() {
        let m = m2x2();
        assert_eq!(m.matvec(&[1.0, 1.0]).unwrap(), vec![3.0, 7.0]);
        assert_eq!(m.matvec(&[2.0, -1.0]).unwrap(), vec![0.0, 2.0]);
        assert!(m.matvec(&[1.0]).is_err());
    }

    #[test]
    fn matmul_matches_hand() {
        let a = m2x2();
        let b = Matrix::from_rows(vec![vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        let ab = a.matmul(&b).unwrap();
        assert_eq!(ab.as_slice(), &[2.0, 1.0, 4.0, 3.0]);
        let i = Matrix::identity(2);
        assert_eq!(a.matmul(&i).unwrap(), a);
        assert_eq!(i.matmul(&a).unwrap(), a);
        let bad = Matrix::<f64>::zeros(3, 3);
        assert!(a.matmul(&bad).is_err());
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_rows(vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t[(0, 1)], 4.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn map_changes_scalar_type() {
        let m = m2x2();
        let q: Matrix<Rational> = m.map(|v| Rational::from_f64_exact(*v).unwrap());
        assert_eq!(q[(1, 1)], Rational::from_integer(4));
        let back: Matrix<f64> = q.map(|v| v.to_f64());
        assert_eq!(back, m);
    }

    #[test]
    fn add_and_scale() {
        let m = m2x2();
        let s = m.add(&m).unwrap();
        assert_eq!(s.as_slice(), &[2.0, 4.0, 6.0, 8.0]);
        assert_eq!(m.scale(2.0), s);
        assert!(m.add(&Matrix::zeros(3, 3)).is_err());
    }

    #[test]
    fn outer_product() {
        let o = Matrix::outer(&[1.0, 2.0], &[3.0, 4.0, 5.0]);
        assert_eq!(o.shape(), (2, 3));
        assert_eq!(o.as_slice(), &[3.0, 4.0, 5.0, 6.0, 8.0, 10.0]);
    }

    #[test]
    fn frobenius() {
        let m = Matrix::from_rows(vec![vec![3.0, 4.0]]).unwrap();
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn exact_rational_matvec() {
        let m = Matrix::from_rows(vec![
            vec![Rational::new(1, 2), Rational::new(1, 3)],
            vec![Rational::new(-1, 4), Rational::new(2, 5)],
        ])
        .unwrap();
        let y = m
            .matvec(&[Rational::from_integer(6), Rational::from_integer(15)])
            .unwrap();
        assert_eq!(y, vec![Rational::from_integer(8), Rational::new(9, 2)]);
    }

    #[test]
    fn serde_round_trip() {
        let m = m2x2();
        let json = serde_json::to_string(&m).unwrap();
        let back: Matrix<f64> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn debug_is_readable() {
        let s = format!("{:?}", m2x2());
        assert!(s.contains("Matrix 2x2"));
        assert!(s.contains("[1.0, 2.0]"));
    }
}
