//! Free functions on vectors (`&[S]`) generic over [`Scalar`].
//!
//! Kept as plain-slice helpers rather than a newtype so call sites can use
//! ordinary `Vec<S>` buffers; the network code composes these with
//! [`Matrix`](crate::Matrix) operations.

use fannet_numeric::Scalar;

use crate::matrix::ShapeError;

/// Dot product of two equal-length vectors.
///
/// # Errors
///
/// Returns [`ShapeError`] if the lengths differ.
///
/// # Examples
///
/// ```
/// use fannet_tensor::vector::dot;
/// assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0])?, 11.0);
/// # Ok::<(), fannet_tensor::ShapeError>(())
/// ```
pub fn dot<S: Scalar>(a: &[S], b: &[S]) -> Result<S, ShapeError> {
    if a.len() != b.len() {
        return Err(ShapeError::new(format!(
            "dot: lengths {} and {}",
            a.len(),
            b.len()
        )));
    }
    Ok(a.iter().zip(b).fold(S::zero(), |acc, (x, y)| acc + *x * *y))
}

/// Elementwise sum.
///
/// # Errors
///
/// Returns [`ShapeError`] if the lengths differ.
pub fn add<S: Scalar>(a: &[S], b: &[S]) -> Result<Vec<S>, ShapeError> {
    if a.len() != b.len() {
        return Err(ShapeError::new(format!(
            "add: lengths {} and {}",
            a.len(),
            b.len()
        )));
    }
    Ok(a.iter().zip(b).map(|(x, y)| *x + *y).collect())
}

/// Elementwise difference `a - b`.
///
/// # Errors
///
/// Returns [`ShapeError`] if the lengths differ.
pub fn sub<S: Scalar>(a: &[S], b: &[S]) -> Result<Vec<S>, ShapeError> {
    if a.len() != b.len() {
        return Err(ShapeError::new(format!(
            "sub: lengths {} and {}",
            a.len(),
            b.len()
        )));
    }
    Ok(a.iter().zip(b).map(|(x, y)| *x - *y).collect())
}

/// Scales every element by `k`.
#[must_use]
pub fn scale<S: Scalar>(a: &[S], k: S) -> Vec<S> {
    a.iter().map(|x| *x * k).collect()
}

/// Elementwise ReLU.
#[must_use]
pub fn relu<S: Scalar>(a: &[S]) -> Vec<S> {
    a.iter().map(|x| x.relu()).collect()
}

/// Index of the maximum element; ties break toward the *lower* index, the
/// convention used by the paper's maxpool output readout (and by `argmax` in
/// most ML frameworks).
///
/// Returns `None` for an empty slice.
///
/// # Examples
///
/// ```
/// use fannet_tensor::vector::argmax;
/// assert_eq!(argmax(&[1.0, 3.0, 2.0]), Some(1));
/// assert_eq!(argmax(&[5.0, 5.0]), Some(0)); // tie → lower index
/// assert_eq!(argmax::<f64>(&[]), None);
/// ```
#[must_use]
pub fn argmax<S: Scalar>(a: &[S]) -> Option<usize> {
    let mut best: Option<(usize, S)> = None;
    for (i, &v) in a.iter().enumerate() {
        match best {
            None => best = Some((i, v)),
            Some((_, bv)) if v > bv => best = Some((i, v)),
            _ => {}
        }
    }
    best.map(|(i, _)| i)
}

/// The maximum element (maxpool over the whole vector).
///
/// Returns `None` for an empty slice.
#[must_use]
pub fn max<S: Scalar>(a: &[S]) -> Option<S> {
    a.iter().copied().reduce(|x, y| x.max_val(y))
}

/// Squared Euclidean norm as the scalar type.
#[must_use]
pub fn norm_sq<S: Scalar>(a: &[S]) -> S {
    a.iter().fold(S::zero(), |acc, x| acc + *x * *x)
}

/// Sum of all elements.
#[must_use]
pub fn sum<S: Scalar>(a: &[S]) -> S {
    a.iter().fold(S::zero(), |acc, x| acc + *x)
}

/// Converts a slice between scalar types via `f64` (training → deployment
/// paths; exact quantization uses dedicated functions in `fannet-nn`).
#[must_use]
pub fn convert<A: Scalar, B: Scalar>(a: &[A]) -> Vec<B> {
    a.iter().map(|x| B::from_f64(x.to_f64())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fannet_numeric::Rational;

    #[test]
    fn dot_products() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]).unwrap(), 32.0);
        assert!(dot(&[1.0], &[1.0, 2.0]).is_err());
        let a = [Rational::new(1, 2), Rational::new(1, 3)];
        let b = [Rational::from_integer(4), Rational::from_integer(9)];
        assert_eq!(dot(&a, &b).unwrap(), Rational::from_integer(5));
    }

    #[test]
    fn add_sub_scale() {
        assert_eq!(add(&[1.0, 2.0], &[3.0, 4.0]).unwrap(), vec![4.0, 6.0]);
        assert_eq!(sub(&[1.0, 2.0], &[3.0, 4.0]).unwrap(), vec![-2.0, -2.0]);
        assert_eq!(scale(&[1.0, -2.0], 3.0), vec![3.0, -6.0]);
        assert!(add(&[1.0], &[1.0, 2.0]).is_err());
        assert!(sub(&[1.0], &[1.0, 2.0]).is_err());
    }

    #[test]
    fn relu_elementwise() {
        assert_eq!(relu(&[-1.0, 0.0, 2.0]), vec![0.0, 0.0, 2.0]);
    }

    #[test]
    fn argmax_and_max() {
        assert_eq!(argmax(&[0.1, 0.9, 0.5]), Some(1));
        assert_eq!(argmax(&[2.0, 2.0, 1.0]), Some(0));
        assert_eq!(argmax::<f64>(&[]), None);
        assert_eq!(max(&[3.0, -1.0, 2.0]), Some(3.0));
        assert_eq!(max::<f64>(&[]), None);
        let r = [Rational::new(1, 3), Rational::new(1, 2)];
        assert_eq!(argmax(&r), Some(1));
    }

    #[test]
    fn norms_and_sums() {
        assert_eq!(norm_sq(&[3.0, 4.0]), 25.0);
        assert_eq!(sum(&[1.0, 2.0, 3.0]), 6.0);
        assert_eq!(sum::<f64>(&[]), 0.0);
    }

    #[test]
    fn conversion() {
        let f: Vec<f64> = vec![0.5, -1.25];
        let r: Vec<Rational> = convert(&f);
        assert_eq!(r, vec![Rational::new(1, 2), Rational::new(-5, 4)]);
        let back: Vec<f64> = convert(&r);
        assert_eq!(back, f);
    }
}
