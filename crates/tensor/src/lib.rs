//! # fannet-tensor
//!
//! Minimal dense linear algebra for the FANNet (DATE 2020) reproduction:
//! row-major [`Matrix`] and slice-based [`vector`] helpers, generic over the
//! [`fannet_numeric::Scalar`] abstraction so that the same network code runs
//! with `f64` (training), `Rational` (exact verification) and `Fixed`
//! (deployment simulation) elements.
//!
//! The case-study networks are tiny, so the implementation optimizes for
//! checked shapes and auditability rather than BLAS-level throughput.
//!
//! ## Example
//!
//! ```
//! use fannet_tensor::{Matrix, vector};
//!
//! let w = Matrix::from_rows(vec![vec![0.5, -1.0], vec![2.0, 0.0]])?;
//! let x = [2.0, 1.0];
//! let y = w.matvec(&x)?;
//! assert_eq!(vector::argmax(&y), Some(1));
//! # Ok::<(), fannet_tensor::ShapeError>(())
//! ```

pub mod lanes;
pub mod matrix;
pub mod vector;

pub use lanes::LaneMatrix;
pub use matrix::{Matrix, ShapeError};
